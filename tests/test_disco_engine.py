"""DISCO engine and arbitrator unit tests (direct router manipulation)."""

import pytest

from repro.compression.registry import get_algorithm
from repro.core import DiscoConfig
from repro.core.disco_router import make_disco_router_factory
from repro.core.engine import JOB_COMPRESS, JOB_DECOMPRESS
from repro.noc import Network, NocConfig
from repro.noc.flit import Packet, PacketType
from repro.noc.router import VC_ACTIVE
from repro.noc.topology import PORT_EAST, PORT_WEST


def make_disco_network(**disco_kwargs):
    disco = DiscoConfig(**disco_kwargs)
    network = Network(
        NocConfig(), router_factory=make_disco_router_factory(disco)
    )
    return network


def stage_packet(router, packet, port=PORT_WEST, vc_index=1, flits=None,
                 out_port=PORT_EAST, state=VC_ACTIVE):
    """Place a packet into an input VC as if it had (partially) arrived."""
    vc = router.inputs[port][vc_index]
    vc.packet = packet
    vc.state = state
    vc.out_port = out_port
    received = packet.size_flits if flits is None else flits
    vc.flits_received = received
    vc.flits_present = received
    if state == VC_ACTIVE and out_port != 0:
        neighbor = router.mesh.neighbor[router.node][out_port]
        vc.out_vc = router.network.routers[neighbor].inputs[PORT_WEST][vc_index]
    return vc


def data_packet(line=None, compressible=True, **kwargs):
    line = line if line is not None else b"\x05" * 64
    return Packet(
        PacketType.RESPONSE, 0, 3, line=line, compressible=compressible,
        **kwargs,
    )


class TestEngineAdmission:
    def test_accepts_streaming_candidate(self):
        network = make_disco_network()
        router = network.routers[5]
        vc = stage_packet(router, data_packet(), flits=3)
        assert router.engine.can_accept(vc, JOB_COMPRESS)

    def test_rejects_partially_sent(self):
        network = make_disco_network()
        router = network.routers[5]
        vc = stage_packet(router, data_packet())
        vc.flits_sent = 1
        assert not router.engine.can_accept(vc, JOB_COMPRESS)

    def test_rejects_single_flit_received(self):
        network = make_disco_network()
        router = network.routers[5]
        vc = stage_packet(router, data_packet(), flits=1)
        assert not router.engine.can_accept(vc, JOB_COMPRESS)

    def test_rejects_incompressible_flag(self):
        network = make_disco_network()
        router = network.routers[5]
        vc = stage_packet(router, data_packet(compressible=False))
        assert not router.engine.can_accept(vc, JOB_COMPRESS)

    def test_decompress_needs_whole_packet(self):
        network = make_disco_network()
        router = network.routers[5]
        algo = get_algorithm("delta")
        line = b"\x05" * 64
        packet = Packet(
            PacketType.RESPONSE, 0, 3, line=line,
            compressed=algo.compress(line), is_compressed=True,
            decompress_at_dst=True,
        )
        vc = stage_packet(router, packet, flits=1)
        assert not router.engine.can_accept(vc, JOB_DECOMPRESS)
        vc.flits_received = packet.size_flits
        vc.flits_present = packet.size_flits
        assert router.engine.can_accept(vc, JOB_DECOMPRESS)

    def test_capacity_limit(self):
        network = make_disco_network(engines_per_router=1)
        router = network.routers[5]
        vc_a = stage_packet(router, data_packet(), port=PORT_WEST, flits=4)
        vc_b = stage_packet(router, data_packet(), port=PORT_EAST, flits=4,
                            out_port=PORT_WEST)
        router.engine.start(vc_a, JOB_COMPRESS, cycle=0)
        assert not router.engine.can_accept(vc_b, JOB_COMPRESS)


class TestStreamingCompression:
    def test_streaming_job_completes_and_shrinks(self):
        network = make_disco_network()
        router = network.routers[5]
        packet = data_packet()
        vc = stage_packet(router, packet, flits=3)
        job = router.engine.start(vc, JOB_COMPRESS, cycle=0)
        assert job.separate
        # Stream in the remaining flits over a few engine ticks, the way
        # accept_flit would (one increment per arriving flit).
        cycle = 1
        while not packet.is_compressed and cycle < 20:
            if vc.flits_received < 9:
                vc.flits_received += 1
                vc.flits_present += 1
            router.engine.tick(cycle)
            cycle += 1
        assert packet.is_compressed
        assert packet.size_flits < 9
        assert vc.flits_present == packet.size_flits
        assert vc.flits_received == packet.size_flits
        assert network.stats.compressions == 1
        assert network.stats.separate_compressions == 1

    def test_committed_job_locks_scheduling(self):
        network = make_disco_network()
        router = network.routers[5]
        packet = data_packet()
        vc = stage_packet(router, packet, flits=4)
        job = router.engine.start(vc, JOB_COMPRESS, cycle=0)
        router.engine.tick(1)  # consumes flits -> committed
        assert job.committed
        assert not router._can_send(vc)
        with pytest.raises(RuntimeError):
            router.engine.abort(vc)

    def test_incompressible_streaming_restores_buffer(self):
        import random

        network = make_disco_network()
        router = network.routers[5]
        line = random.Random(3).getrandbits(512).to_bytes(64, "little")
        packet = data_packet(line=line)
        vc = stage_packet(router, packet, flits=9)
        # whole packet present but force separate path via partial receive
        vc.flits_received = 4
        vc.flits_present = 4
        router.engine.start(vc, JOB_COMPRESS, cycle=0)
        vc.flits_received = 9
        vc.flits_present = 9 - 0  # remaining arrive
        for cycle in range(1, 6):
            router.engine.tick(cycle)
        assert not packet.is_compressed
        assert not packet.compressible  # never retried
        assert vc.flits_present == 9
        assert network.stats.incompressible == 1


class TestWholePacketJobs:
    def test_whole_compression_with_shadow_abort(self):
        network = make_disco_network()
        router = network.routers[5]
        packet = data_packet()
        vc = stage_packet(router, packet)  # fully buffered
        job = router.engine.start(vc, JOB_COMPRESS, cycle=0)
        assert not job.separate
        # The shadow is schedulable: the first flit leaving aborts the job.
        router._on_first_flit_sent(vc)
        assert vc.engine_job is None
        router.engine.tick(5)
        assert not packet.is_compressed
        assert network.stats.aborted_jobs == 1

    def test_decompression_inflates(self):
        network = make_disco_network()
        router = network.routers[5]
        algo = get_algorithm("delta")
        line = b"\x09" * 64
        compressed = algo.compress(line)
        packet = Packet(
            PacketType.RESPONSE, 0, 3, line=line, compressed=compressed,
            is_compressed=True, decompress_at_dst=True,
        )
        vc = stage_packet(router, packet)
        router.engine.start(vc, JOB_DECOMPRESS, cycle=0)
        for cycle in range(1, 6):
            router.engine.tick(cycle)
        assert not packet.is_compressed
        assert packet.size_flits == 9
        assert vc.flits_present == 9
        assert not packet.compressible  # no recompression ping-pong
        assert network.stats.decompressions == 1

    def test_blocking_mode_locks_all_jobs(self):
        network = make_disco_network(non_blocking=False)
        router = network.routers[5]
        vc = stage_packet(router, data_packet())
        router.engine.start(vc, JOB_COMPRESS, cycle=0)
        assert not router._can_send(vc)


class TestArbitrator:
    def test_confidence_equation_compress(self):
        network = make_disco_network(gamma=0.5)
        router = network.routers[5]
        vc = stage_packet(router, data_packet(), flits=4)
        # Pump up downstream occupancy.
        neighbor = network.routers[6]
        n_vc = neighbor.inputs[PORT_WEST][1]
        n_vc.flits_present = 5
        conf = router.arbitrator.confidence(vc, JOB_COMPRESS)
        assert conf == pytest.approx(5 + 0.5 * 0)

    def test_confidence_equation_decompress_hop_penalty(self):
        network = make_disco_network(alpha=0.5, beta=1.0)
        router = network.routers[5]
        algo = get_algorithm("delta")
        line = b"\x09" * 64
        packet = Packet(
            PacketType.RESPONSE, 0, 3, line=line,
            compressed=algo.compress(line), is_compressed=True,
            decompress_at_dst=True,
        )
        vc = stage_packet(router, packet)
        conf = router.arbitrator.confidence(vc, JOB_DECOMPRESS)
        # node 5 -> node 3: hop distance 2+1? (1,1)->(3,0): 2+1=3
        assert conf == pytest.approx(0 + 0 - 3.0)

    def test_threshold_gates_dispatch(self):
        network = make_disco_network(cc_threshold=100.0)
        router = network.routers[5]
        vc = stage_packet(router, data_packet(), flits=4)
        dispatched = router.arbitrator.consider([vc], cycle=0)
        assert dispatched == 0
        network2 = make_disco_network(cc_threshold=-1.0)
        router2 = network2.routers[5]
        vc2 = stage_packet(router2, data_packet(), flits=4)
        assert router2.arbitrator.consider([vc2], cycle=0) == 1
        assert vc2.engine_job is not None

    def test_control_packets_never_candidates(self):
        network = make_disco_network(cc_threshold=-1.0)
        router = network.routers[5]
        packet = Packet(PacketType.REQUEST, 0, 3)
        vc = stage_packet(router, packet)
        assert router.arbitrator.consider([vc], cycle=0) == 0
