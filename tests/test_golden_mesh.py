"""Golden determinism: the default Table 2 mesh is bit-identical.

The digests below were captured on the pre-fabric-refactor tree (fixed
5-port mesh, module-level XY routing) over the fig5/fig6 quick specs.
Every refactor of the NoC must leave the default ``NocConfig()`` mesh
producing byte-for-byte identical ``CounterSnapshot``s — any change to
arbitration order, VC allocation, routing, or placement shows up here as
a digest mismatch.

If a PR *intentionally* changes default-mesh semantics (a new stat, a
fixed bug), re-capture the digests and say so in the PR; this file
failing on an "invisible" refactor means the refactor is not invisible.
"""

import hashlib
import json

import pytest

from repro.experiments.runner import QUICK_ACCESSES, RunSpec, run_spec

#: scheme -> sha256 over (full snapshot, measured snapshot, cycles,
#: avg miss latency) for the quick blackscholes spec.
GOLDEN_DIGESTS = {
    "baseline": "1f3195721da8a4fa50ab5d2ab0310849f0566faa9cf78dc86da7cf8ffbbf6bd9",
    "cc": "2152aacebe9bc32634a77afe938d84e526cc91399a1a3ccb5ebe028091d80ec1",
    "cnc": "21d962814a8ce770618f207bb7898816ce454e74fd84023baf345d946bd82e4f",
    "disco": "67d36c7911db5853835846dd3ffd69537b02ecb992b20e1e6d6d2c7c62cf375b",
    "ideal": "169456c1d86868bf7da1dff964dab521fb273e4df4ce4a583575d319201585cc",
}


def result_digest(result) -> str:
    payload = {
        "full": sorted(result.snapshot_full.flat().items()),
        "measured": sorted(result.snapshot_measured.flat().items()),
        "cycles": result.cycles,
        "avg_miss_latency": result.avg_miss_latency,
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()


@pytest.mark.parametrize("scheme", sorted(GOLDEN_DIGESTS))
def test_default_mesh_counter_snapshots_are_golden(scheme):
    spec = RunSpec(
        scheme=scheme, workload="blackscholes",
        accesses_per_core=QUICK_ACCESSES,
    )
    # The default spec must still be the Table 2 mesh.
    assert spec.topology == "mesh"
    assert spec.noc_config().vcs_per_vnet == 1
    result = run_spec(spec)
    assert result_digest(result) == GOLDEN_DIGESTS[scheme], (
        f"default-mesh {scheme} run diverged from the pre-refactor golden "
        f"digest — the Table 2 fabric is no longer bit-identical"
    )


@pytest.mark.parametrize("scheme", sorted(GOLDEN_DIGESTS))
def test_tick_all_kernel_reproduces_the_goldens(scheme, monkeypatch):
    """Event-vs-tick invariance: the legacy poll-everything scheduler must
    hit the same five digests as the wakeup scheduler.

    The runner keys its memo and disk caches on the kernel mode, so this
    is a genuinely independent tick-all run, not a cache readback.
    """
    monkeypatch.setenv("REPRO_KERNEL_MODE", "tick")
    spec = RunSpec(
        scheme=scheme, workload="blackscholes",
        accesses_per_core=QUICK_ACCESSES,
    )
    result = run_spec(spec)
    assert result_digest(result) == GOLDEN_DIGESTS[scheme], (
        f"tick-all {scheme} run diverged from the golden digest — the "
        f"event-driven scheduler is not behaviour-preserving"
    )


@pytest.mark.parametrize("scheme", sorted(GOLDEN_DIGESTS))
def test_batch_kernel_reproduces_the_goldens(scheme, monkeypatch):
    """Event-vs-batch invariance: the batched dataplane sweep
    (``REPRO_KERNEL_MODE=batch``, the fabric-array fast path of
    :mod:`repro.noc.batch`) must hit the same five digests.

    The runner keys its memo and disk caches on the kernel mode, so this
    is a genuinely independent batched run, not a cache readback.  The
    disco scheme exercises the per-router fallback (DiscoRouter is not
    batch-eligible); the other four run the fast path.
    """
    monkeypatch.setenv("REPRO_KERNEL_MODE", "batch")
    spec = RunSpec(
        scheme=scheme, workload="blackscholes",
        accesses_per_core=QUICK_ACCESSES,
    )
    result = run_spec(spec)
    assert result_digest(result) == GOLDEN_DIGESTS[scheme], (
        f"batched {scheme} run diverged from the golden digest — the "
        f"batch sweep is not behaviour-preserving"
    )


@pytest.mark.parametrize("vector_min", ["0", "999999999"])
def test_batch_vector_regimes_reproduce_the_goldens(vector_min, monkeypatch):
    """Both batch regimes — forced-vectorized (min 0) and forced
    fused-scalar (min huge) — hit the golden digest.

    ``REPRO_BATCH_VECTOR_MIN`` is not part of the runner's cache key (it
    cannot change results, only which partition code runs), so this goes
    through ``runner._simulate`` directly to guarantee a fresh run.
    Without numpy the forced-vectorized leg silently degrades to the
    fused-scalar sweep, which is exactly the fallback being promised.
    """
    from repro.experiments import runner

    monkeypatch.setenv("REPRO_KERNEL_MODE", "batch")
    monkeypatch.setenv("REPRO_BATCH_VECTOR_MIN", vector_min)
    spec = RunSpec(
        scheme="cc", workload="blackscholes",
        accesses_per_core=QUICK_ACCESSES,
    )
    result = runner._simulate(spec)
    assert result_digest(result) == GOLDEN_DIGESTS["cc"]


def test_kernels_agree_under_telemetry(monkeypatch):
    """Mode invariance with the telemetry layer attached (sampler interval
    = a timed wakeup every 64 cycles, plus per-packet tracing).

    The ``kernel`` stat group (idle-efficiency counters) measures the
    scheduler itself, so it is popped before comparing; everything else
    must match field for field.
    """
    spec = RunSpec(
        scheme="disco", workload="blackscholes",
        accesses_per_core=QUICK_ACCESSES,
        stats_interval=64, trace_packets=True,
    )
    results = {}
    for mode in ("event", "tick"):
        monkeypatch.setenv("REPRO_KERNEL_MODE", mode)
        results[mode] = run_spec(spec)

    def strip(snapshot):
        return {g: snapshot[g] for g in snapshot if g != "kernel"}

    event, tick = results["event"], results["tick"]
    assert strip(event.snapshot_full) == strip(tick.snapshot_full)
    assert strip(event.snapshot_measured) == strip(tick.snapshot_measured)
    assert event.cycles == tick.cycles
    assert event.avg_miss_latency == tick.avg_miss_latency
