"""Fault injection, end-to-end integrity, graceful degradation.

The load-bearing claim: across hundreds of injected faults of all five
kinds, every single one is either *detected* (integrity violation with a
replay capsule, or a watchdog with wedge diagnostics) or *degraded*
(absorbed by an explicit fallback path and counted) — never silent.

``REPRO_FAULT_SEED`` re-runs the campaign under a different fault seed
(the CI fault-matrix job sweeps several); ``REPRO_FAULT_TOPOLOGY`` runs
the campaign-level tests on a different fabric (the CI matrix adds a
torus entry), since the zero-silent contract must hold on any topology.
"""

import dataclasses
import os
import re

import pytest

from repro.faults import (
    FAULT_KINDS,
    PERMANENT,
    CampaignSpec,
    FaultController,
    FaultPlan,
    IntegrityChecker,
    IntegrityError,
    ScheduledFault,
    build_campaign_network,
    payload_digest,
    run_fault_campaign,
)
from repro.noc import Network, NocConfig
from repro.noc.flit import Packet, PacketType
from repro.noc.traffic import SyntheticTraffic, TrafficConfig

FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", "3"))
FAULT_TOPOLOGY = os.environ.get("REPRO_FAULT_TOPOLOGY", "mesh")

LINE = bytes(range(64))


def campaign_spec(**kwargs) -> CampaignSpec:
    """A CampaignSpec on the fabric under test (REPRO_FAULT_TOPOLOGY)."""
    kwargs.setdefault("topology", FAULT_TOPOLOGY)
    return CampaignSpec(**kwargs)


def data_packet(src=0, dst=3, line=LINE):
    return Packet(
        PacketType.RESPONSE, src, dst, line=line,
        compressible=True, decompress_at_dst=True,
    )


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(payload_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(drop_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(engine_stall_rate=0.6, engine_bitflip_rate=0.6)
        with pytest.raises(ValueError):
            FaultPlan(stall_cycles=0)

    def test_scheduled_kind_validated(self):
        with pytest.raises(ValueError):
            ScheduledFault(cycle=0, kind="gremlin")
        with pytest.raises(ValueError):
            ScheduledFault(cycle=0, kind="engine", flavor="melt")

    def test_is_zero_and_window(self):
        assert FaultPlan(seed=9).is_zero()
        assert not FaultPlan(payload_rate=0.1).is_zero()
        assert not FaultPlan(
            scheduled=(ScheduledFault(cycle=5, kind="drop"),)
        ).is_zero()
        plan = FaultPlan(start_cycle=10, end_cycle=20)
        assert not plan.in_window(9)
        assert plan.in_window(10) and plan.in_window(19)
        assert not plan.in_window(20)


class TestIntegrityChecker:
    def test_matching_payload_verifies(self):
        checker = IntegrityChecker()
        packet = data_packet()
        checker.record(0, packet)
        assert checker.verify(10, 3, packet) is None
        assert checker.verified == 1 and not checker.violations

    def test_corruption_detected_with_capsule(self):
        checker = IntegrityChecker(spec="unit", seed=42)
        packet = data_packet()
        checker.record(0, packet)
        packet.line = b"\xaa" + packet.line[1:]
        violation = checker.verify(17, 3, packet)
        assert violation is not None and violation.reason == "corrupt"
        capsule = violation.capsule
        assert capsule.pid == packet.pid
        assert (capsule.src, capsule.dst) == (0, 3)
        assert capsule.detected_cycle == 17
        assert capsule.spec == "unit" and capsule.seed == 42
        assert "seed 42" in capsule.describe()

    def test_finalize_reports_losses(self):
        checker = IntegrityChecker()
        kept, lost = data_packet(), data_packet(dst=5)
        checker.record(0, kept)
        checker.record(0, lost)
        checker.verify(5, 3, kept)
        new = checker.finalize(100)
        assert [v.reason for v in new] == ["lost"]
        assert new[0].pid == lost.pid
        assert checker.lost == 1
        assert not checker.outstanding()

    def test_integrity_error_carries_capsule(self):
        checker = IntegrityChecker(spec="unit", seed=7)
        packet = data_packet()
        checker.record(0, packet)
        packet.line = packet.line[:-1] + b"\xff"
        violation = checker.verify(9, 3, packet)
        error = IntegrityError(violation)
        assert error.capsule is violation.capsule
        assert f"#{packet.pid}" in str(error)

    def test_payload_digest_differs_on_any_byte(self):
        a = data_packet()
        b = data_packet(line=LINE[:-1] + b"\x00")
        assert payload_digest(a) != payload_digest(b)


def _baseline_network():
    network = Network(NocConfig())
    delivered = []
    network.set_delivery_handler(lambda node, p: delivered.append(p))
    return network, delivered


class TestScheduledFaults:
    """One targeted fault per kind, on an otherwise healthy network."""

    def test_payload_corruption_raises_integrity_error(self):
        network, _ = _baseline_network()
        controller = FaultController(
            FaultPlan(seed=1, scheduled=(
                ScheduledFault(cycle=1, kind="payload"),
            ))
        )
        network.attach_faults(controller)
        packet = data_packet()
        network.send(packet)
        with pytest.raises(IntegrityError) as excinfo:
            network.run_until_quiescent(max_cycles=500)
        assert excinfo.value.capsule.pid == packet.pid
        assert controller.by_kind == {"payload": 1}

    def test_ni_drop_is_reconciled_as_loss(self):
        network, delivered = _baseline_network()
        controller = FaultController(
            FaultPlan(seed=1, scheduled=(
                ScheduledFault(cycle=1, kind="drop"),
            )),
            raise_on_violation=False,
        )
        network.attach_faults(controller)
        for _ in range(3):
            network.tick()  # arm the scheduled drop
        packet = data_packet()
        network.send(packet)
        network.run_until_quiescent(max_cycles=500)
        assert delivered == []  # the NI swallowed it
        assert network.degraded.packets_dropped == 1
        counts = controller.reconcile(network.cycle)
        assert counts == {
            "detected": 1, "degraded": 0, "recovered": 0, "silent": 0,
        }
        assert controller.checker.violations[0].reason == "lost"
        assert controller.checker.violations[0].pid == packet.pid

    def test_credit_theft_resyncs(self):
        network, delivered = _baseline_network()
        plan = FaultPlan(seed=1, credit_duration=20, credit_loss=3,
                         scheduled=(
                             ScheduledFault(cycle=2, kind="credit", node=5),
                         ))
        controller = FaultController(plan)
        network.attach_faults(controller)
        router = network.routers[5]
        for _ in range(5):
            network.tick()
        assert sum(vc.credit_debt for vc in router.all_vcs) == 3
        for _ in range(25):
            network.tick()
        assert sum(vc.credit_debt for vc in router.all_vcs) == 0
        assert network.degraded.credit_resyncs == 1
        assert controller.reconcile(network.cycle)["degraded"] == 1

    def test_transient_wedge_recovers_and_delivers(self):
        network, delivered = _baseline_network()
        controller = FaultController(
            FaultPlan(seed=1, scheduled=(
                ScheduledFault(cycle=3, kind="wedge", node=0, duration=12),
            ))
        )
        network.attach_faults(controller)
        packet = data_packet()
        network.send(packet)
        network.run_until_quiescent(max_cycles=500)
        assert controller.by_kind == {"wedge": 1}
        assert [p.pid for p in delivered] == [packet.pid]
        assert delivered[0].line == LINE  # intact end to end
        assert network.degraded.wedge_recoveries == 1
        assert controller.reconcile(network.cycle)["degraded"] == 1

    def test_permanent_wedge_trips_watchdog_with_diagnostics(self):
        plan = FaultPlan(seed=FAULT_SEED, scheduled=(
            ScheduledFault(cycle=40, kind="wedge", duration=PERMANENT),
        ))
        report = run_fault_campaign(
            campaign_spec(cycles=200, drain_limit=2_000), plan
        )
        assert report.watchdog is not None
        # The wedge snapshot names the stuck VC and its wedge bound.
        assert "wedged_until" in report.watchdog
        assert "wedge snapshot" in report.watchdog
        assert report.silent == 0
        wedges = [e for e in report.events if e.kind == "wedge"]
        assert wedges and wedges[0].outcome == "detected"
        assert wedges[0].flavor == "permanent"


class TestEngineFaults:
    def _run(self, plan):
        network = build_campaign_network(campaign_spec())
        controller = FaultController(plan, raise_on_violation=False)
        network.attach_faults(controller)
        traffic = SyntheticTraffic(
            network, TrafficConfig(injection_rate=0.06, seed=3)
        )
        traffic.run(400)
        return network, controller, traffic

    def test_stalls_are_absorbed(self):
        network, controller, traffic = self._run(
            FaultPlan(seed=FAULT_SEED, engine_stall_rate=1.0,
                      end_cycle=400)
        )
        assert network.degraded.engine_stalls_absorbed > 0
        counts = controller.reconcile(network.cycle)
        assert counts["silent"] == 0
        assert len(traffic.delivered) == traffic.generated
        assert controller.checker.mismatches == 0

    def test_bitflips_poison_onto_uncompressed_fallback(self):
        network, controller, traffic = self._run(
            FaultPlan(seed=FAULT_SEED, engine_bitflip_rate=1.0,
                      end_cycle=400)
        )
        degraded = network.degraded
        assert degraded.poisoned_packets > 0
        assert degraded.degraded_transmissions >= degraded.poisoned_packets
        poisoned = [p for p in traffic.delivered if p.poisoned]
        assert len(poisoned) == degraded.poisoned_packets
        for packet in poisoned:
            assert len(packet.line) == 64  # raw line delivered intact
        counts = controller.reconcile(network.cycle)
        assert counts["silent"] == 0
        assert controller.checker.mismatches == 0  # fallback is lossless


class TestZeroFaultBitIdentity:
    def test_attached_zero_plan_changes_nothing(self):
        def run(attach):
            network = build_campaign_network(campaign_spec())
            if attach:
                network.attach_faults(
                    FaultController(FaultPlan(seed=123456))
                )
            traffic = SyntheticTraffic(
                network, TrafficConfig(injection_rate=0.06, seed=3)
            )
            traffic.run(500)
            return (
                network.kernel.stats.snapshot().flat(),
                dataclasses.asdict(network.stats),
                [(p.pid, p.line) for p in traffic.delivered],
            )

        bare = run(attach=False)
        inert = run(attach=True)
        assert bare[0] == inert[0], "kernel counter snapshot diverged"
        assert bare[1] == inert[1], "network stats diverged"
        # Same packets, same payloads, same order — bit-identical runs
        # modulo the globally monotonic packet-id counter.
        assert len(bare[2]) == len(inert[2])
        offset = inert[2][0][0] - bare[2][0][0]
        for (pid_a, line_a), (pid_b, line_b) in zip(bare[2], inert[2]):
            assert pid_b - pid_a == offset
            assert line_a == line_b


class TestWedgeDiagnostics:
    """The wedge snapshot stays machine-parseable under every fault kind.

    Recovery tooling is only as good as its diagnostics: these tests
    regex-parse the snapshot line formats (header, flight counts, router
    occupancy with held-packet details, NI backlogs) so a format drift
    that would break triage scripts fails here, not in an incident.
    """

    HEADER = re.compile(r"--- wedge snapshot @ cycle \d+ ---")
    FLIGHT = re.compile(
        r"link flits in flight: \d+; local deliveries pending: \d+"
    )
    ROUTER = re.compile(
        r"router (\d+): (\d+) flits buffered, (\d+) incoming; (.+)"
    )
    NI = re.compile(
        r"NI (\d+): (\d+) packets queued, (\d+) streams open, "
        r"(\d+) ejections pending"
    )
    HELD = re.compile(
        r"[a-z]\w*/vc\d+:(?:REQUEST|RESPONSE|COHERENCE|ACK)"
        r"\(\d+->\d+, \d+/\d+ sent, state=\d+"
        r"(?:, wedged_until=\d+)?(?:, credit_debt=\d+)?\)"
    )
    CREDIT_DETAIL = re.compile(
        r"port\d+/vc\d+ -\d+ credits until cycle \d+"
    )
    WEDGE_DETAIL = re.compile(
        r"port\d+/vc\d+ held (?:forever|until cycle \d+)"
    )

    SCENARIOS = {
        "payload": ScheduledFault(cycle=5, kind="payload"),
        "credit": ScheduledFault(cycle=40, kind="credit", node=5,
                                 duration=10_000),
        "engine": ScheduledFault(cycle=10, kind="engine", flavor="stall"),
        "drop": ScheduledFault(cycle=5, kind="drop"),
        "wedge": ScheduledFault(cycle=40, kind="wedge", duration=PERMANENT),
    }

    def _assert_parses(self, snapshot: str) -> None:
        lines = snapshot.splitlines()
        assert self.HEADER.fullmatch(lines[0]), lines[0]
        assert self.FLIGHT.fullmatch(lines[1]), lines[1]
        for line in lines[2:]:
            if line.startswith("router "):
                match = self.ROUTER.fullmatch(line)
                assert match, line
                held = match.group(4)
                if held != "no packet bound":
                    # Every held-packet entry matches the VC grammar; no
                    # unparseable residue besides the separators.
                    assert self.HELD.search(held), held
                    assert self.HELD.sub("", held).strip(", ") == "", held
            elif line.startswith("NI "):
                assert self.NI.fullmatch(line), line
            else:
                assert line == (
                    "(no component holds state - clean quiescence)"
                ), line

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_snapshot_parseable_under_each_fault_kind(self, kind):
        network = build_campaign_network(campaign_spec())
        controller = FaultController(
            FaultPlan(seed=FAULT_SEED, scheduled=(self.SCENARIOS[kind],)),
            raise_on_violation=False,
        )
        network.attach_faults(controller)
        traffic = SyntheticTraffic(
            network, TrafficConfig(injection_rate=0.06, seed=1)
        )
        traffic.run(200, drain=False)
        assert controller.by_kind.get(kind), (
            f"{kind} fault never fired: {controller.by_kind}"
        )
        snapshot = network.wedge_snapshot()  # mid-flight, fabric busy
        self._assert_parses(snapshot)
        assert "router " in snapshot or "NI " in snapshot
        if kind == "wedge":
            assert "wedged_until=" in snapshot
            assert self.WEDGE_DETAIL.search(controller.events[0].detail)
        if kind == "credit":
            assert self.CREDIT_DETAIL.fullmatch(controller.events[0].detail)

    def test_ni_backlog_renders_before_first_tick(self):
        network, _ = _baseline_network()
        for _ in range(6):
            network.send(data_packet(src=0, dst=15))
        snapshot = network.wedge_snapshot()
        self._assert_parses(snapshot)
        assert re.search(r"NI 0: 6 packets queued", snapshot)

    def test_credit_debt_renders_on_a_held_vc(self):
        network, _ = _baseline_network()
        packet = data_packet(src=0, dst=15)
        network.send(packet)
        for _ in range(4):
            network.tick()
        vc = next(
            vc
            for router in network.routers
            for vc in router.all_vcs
            if vc.packet is packet
        )
        vc.credit_debt += 2
        snapshot = network.wedge_snapshot()
        self._assert_parses(snapshot)
        assert "credit_debt=2" in snapshot
        vc.credit_debt -= 2
        network.run_until_quiescent(max_cycles=500)


class TestFaultCampaign:
    """The acceptance bar: a big mixed campaign with zero silent faults."""

    PLAN = FaultPlan(
        seed=FAULT_SEED,
        payload_rate=0.006,
        drop_rate=0.03,
        credit_rate=0.006,
        wedge_rate=0.003,
        engine_stall_rate=0.15,
        engine_bitflip_rate=0.15,
    )
    SPEC = campaign_spec(cycles=1800, injection_rate=0.06)

    def test_mixed_campaign_no_silent_corruption(self):
        report = run_fault_campaign(self.SPEC, self.PLAN)
        assert report.faults_injected >= 500, report.summary()
        # ... across all five kinds, each with a meaningful population.
        assert set(report.by_kind) == {
            "payload", "credit", "engine", "drop", "wedge"
        }
        for kind, count in report.by_kind.items():
            assert count >= 10, f"{kind} underrepresented: {report.by_kind}"
        assert report.detected > 0
        assert report.degraded > 0
        assert report.silent == 0, report.summary()
        assert report.clean
        # Every event got an outcome; the ledger adds up.
        assert report.detected + report.degraded == report.faults_injected
        # Detection is real: corrupted/lost payloads carry capsules.
        assert report.violations
        for violation in report.violations:
            assert violation.capsule.seed == FAULT_SEED

    def test_report_summary_is_self_describing(self):
        report = run_fault_campaign(
            campaign_spec(cycles=300),
            FaultPlan(seed=FAULT_SEED, drop_rate=0.05),
        )
        text = report.summary()
        assert "fault campaign" in text
        assert f"plan seed {FAULT_SEED}" in text
        assert "silent=0" in text


class TestNonMeshCampaign:
    """The zero-silent contract is a fabric property, not a mesh one."""

    def test_torus_campaign_no_silent_corruption(self):
        report = run_fault_campaign(
            CampaignSpec(cycles=600, injection_rate=0.06, topology="torus"),
            FaultPlan(
                seed=FAULT_SEED,
                drop_rate=0.03,
                credit_rate=0.006,
                engine_stall_rate=0.1,
            ),
        )
        assert report.faults_injected > 0
        assert report.silent == 0, report.summary()
        assert "torus" in report.spec.describe()
        # The campaign really ran on escape VCs (4 per port, 2 per vnet).
        assert report.spec.noc_config().vcs_per_vnet == 2
