"""Tests for the fleet observability plane.

Four properties matter, in order of importance:

1. **Inertness** — with every observability knob off (the default), the
   five golden mesh digests and the disk-cache envelope *bytes* are
   identical to a run with the plane fully on.  Observation must never
   perturb the physics.
2. **Exposition correctness** — ``GET /metrics`` renders a valid
   OpenMetrics document whose counters reconcile with ``/stats`` and the
   :class:`StatsRegistry` snapshots, even while scrapes race in-flight
   submissions.
3. **Correlation** — one id minted at submission joins the journal, the
   worker heartbeat, the flight record and :class:`RunnerError`.
4. **Postmortems** — a genuinely SIGKILLed pool worker leaves a flight
   record behind (persisted *ahead of* death by the inflight dump), and
   the SLO/sentinel math is pinned on fabricated inputs.
"""

import json
import logging
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

import pytest

from repro.experiments import runner
from repro.experiments.runner import (
    QUICK_ACCESSES,
    RunSpec,
    RunnerError,
    clear_cache,
    clear_disk_cache,
    run_spec,
    spec_key,
)
from repro.service import CampaignService, serve
from repro.service.jobs import Job
from repro.telemetry import flight
from repro.telemetry.export import latency_percentiles, percentile
from repro.telemetry.log import (
    CorrelationFilter,
    correlation_scope,
    current_correlation,
    get_logger,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    build_service_registry,
    parse_samples,
    snapshot_families,
    validate_openmetrics,
)
from repro.telemetry.sampler import WallClockSeries
from repro.telemetry.slo import (
    SLOSpec,
    default_slos,
    evaluate,
    evaluate_all,
    parse_slos,
)
from repro.telemetry.tracer import EV_EJECT, EV_INJECT, TraceEvent
from tests.test_golden_mesh import GOLDEN_DIGESTS, result_digest

#: Small enough to keep each simulation around a tenth of a second.
QUICK = dict(workload="x264", accesses_per_core=40)


@pytest.fixture(autouse=True)
def _fresh(tmp_path, monkeypatch):
    """Each test gets a private cache dir and a clean environment."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    for var in (
        "REPRO_DISK_CACHE",
        "REPRO_JOBS",
        "REPRO_RUNNER_FAULT",
        "REPRO_SPEC_TIMEOUT",
        "REPRO_RETRY_BACKOFF",
        "REPRO_QUARANTINE_AFTER",
        "REPRO_WATCHDOG_SECONDS",
        "REPRO_HEARTBEAT_DIR",
        "REPRO_FLIGHT_DIR",
        "REPRO_SIM_LOG",
    ):
        monkeypatch.delenv(var, raising=False)
    clear_cache()
    flight.reset_for_tests()
    yield
    clear_cache()
    flight.reset_for_tests()


# --------------------------------------------------------------------------
# metric families and the exposition renderer
# --------------------------------------------------------------------------


class TestMetricFamilies:
    def test_registry_renders_a_valid_exposition(self):
        registry = MetricsRegistry()
        completed = registry.counter("repro_units_completed", "done units")
        completed.inc(3, scheme="disco")
        completed.inc(2, scheme="baseline")
        depth = registry.gauge("repro_queue_depth", "queued units")
        depth.set(7)
        ages = registry.histogram(
            "repro_queue_age_ms", "age at dispatch", buckets=(1.0, 10.0)
        )
        for value in (0.5, 5.0, 50.0):
            ages.observe(value)
        text = registry.render()
        assert validate_openmetrics(text) == []
        samples = parse_samples(text)
        assert samples["repro_units_completed_total"][
            (("scheme", "disco"),)
        ] == 3
        assert samples["repro_queue_depth"][()] == 7
        buckets = samples["repro_queue_age_ms_bucket"]
        assert buckets[(("le", "1"),)] == 1
        assert buckets[(("le", "10"),)] == 2  # cumulative
        assert buckets[(("le", "+Inf"),)] == 3
        assert samples["repro_queue_age_ms_count"][()] == 3
        assert text.endswith("# EOF\n")

    def test_counters_only_go_up(self):
        counter = Counter("repro_events", "")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_duplicate_family_names_are_rejected(self):
        registry = MetricsRegistry()
        registry.gauge("repro_x", "")
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("repro_x", "")

    def test_invalid_names_and_labels_are_rejected(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            Gauge("0bad", "")
        with pytest.raises(ValueError, match="buckets"):
            Histogram("repro_h", "", buckets=(2.0, 1.0))
        counter = Counter("repro_ok", "")
        with pytest.raises(ValueError, match="invalid label name"):
            counter.inc(1, **{"bad-label": "x"})

    def test_validator_rejects_malformed_documents(self):
        # Missing EOF.
        assert any(
            "EOF" in error
            for error in validate_openmetrics("repro_x 1\n")
        )
        # A torn (mid-line truncated) sample.
        torn = "# TYPE repro_x counter\nrepro_x_total 3\nrepro_y_tot"
        assert validate_openmetrics(torn + "\n# EOF\n")
        # Counter sample without the _total suffix.
        bad_counter = "# TYPE repro_c counter\nrepro_c 1\n# EOF\n"
        assert any(
            "_total" in error
            for error in validate_openmetrics(bad_counter)
        )
        # Non-cumulative histogram buckets.
        bad_buckets = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 5\n'
            'repro_h_bucket{le="2"} 3\n'
            "# EOF\n"
        )
        assert any(
            "cumulative" in error
            for error in validate_openmetrics(bad_buckets)
        )
        # Duplicate samples.
        dupes = "repro_g 1\nrepro_g 2\n# EOF\n"
        assert any(
            "duplicate" in error for error in validate_openmetrics(dupes)
        )
        # Non-numeric value.
        assert any(
            "not a number" in error
            for error in validate_openmetrics("repro_g NaNOpe\n# EOF\n")
        )

    def test_snapshot_bridge_mirrors_every_registry_counter(self):
        result = run_spec(RunSpec(scheme="disco", **QUICK))
        registry = snapshot_families(result.snapshot_full)
        text = registry.render()
        assert validate_openmetrics(text) == []
        samples = parse_samples(text)
        flat = result.snapshot_full.flat()
        # Every substrate counter surfaces, prefixed, with its exact value.
        assert len(flat) > 10
        rendered_total = sum(
            value
            for family in samples.values()
            for value in family.values()
        )
        assert rendered_total == sum(float(v) for v in flat.values())
        for name in samples:
            assert name.startswith("repro_")


# --------------------------------------------------------------------------
# percentile math (pinned)
# --------------------------------------------------------------------------


class TestPercentiles:
    def test_linear_interpolation_is_pinned_on_1_to_100(self):
        values = list(range(1, 101))
        assert percentile(values, 0.50) == pytest.approx(50.5)
        assert percentile(values, 0.95) == pytest.approx(95.05)
        assert percentile(values, 0.99) == pytest.approx(99.01)
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 100.0

    def test_edge_cases(self):
        assert percentile([42.0], 0.95) == 42.0
        assert percentile([1.0, 3.0], 0.5) == 2.0  # midpoint interpolation
        with pytest.raises(ValueError, match="empty"):
            percentile([], 0.5)
        with pytest.raises(ValueError, match="quantile"):
            percentile([1.0], 1.5)

    def test_latency_percentiles_from_trace_events(self):
        events = []
        for pid, latency in enumerate(range(1, 101)):
            events.append(TraceEvent(0, EV_INJECT, pid, 0, (0, 1, "d", 1, 0)))
            events.append(TraceEvent(latency, EV_EJECT, pid, 1, (latency,)))
        quantiles = latency_percentiles(events)
        assert quantiles == {
            "p50": pytest.approx(50.5),
            "p95": pytest.approx(95.05),
            "p99": pytest.approx(99.01),
        }
        assert latency_percentiles([]) == {}


# --------------------------------------------------------------------------
# SLO evaluation on fabricated series
# --------------------------------------------------------------------------


class TestSLO:
    def _series(self, now=1000.0):
        series = WallClockSeries(capacity=256)
        state = {"now": now}
        series._clock = lambda: state["now"]
        return series, state

    def test_quantile_objective_burns_proportionally(self):
        series, _ = self._series()
        for age in range(1, 101):
            series.record(queue_age_ms=age)
        slo = SLOSpec(
            name="age", metric="queue_age_ms", objective=50.0,
            kind="quantile_max", quantile=0.95, window=60.0,
        )
        status = evaluate(slo, series)
        assert status.value == pytest.approx(95.05)
        assert status.burn_rate == pytest.approx(95.05 / 50.0)
        assert not status.ok

    def test_rate_objective_counts_events_per_second(self):
        series, _ = self._series()
        for _ in range(30):
            series.record(shed=1)
        slo = SLOSpec(
            name="shed", metric="shed", objective=0.25,
            kind="rate_max", window=60.0,
        )
        status = evaluate(slo, series)
        assert status.value == pytest.approx(0.5)  # 30 sheds / 60s
        assert status.burn_rate == pytest.approx(2.0)
        assert not status.ok

    def test_throughput_objective_gated_by_demand_and_uptime(self):
        series, _ = self._series()
        slo = SLOSpec(
            name="tput", metric="completed", objective=0.1,
            kind="rate_min", window=60.0, demand_metric="admitted",
        )
        # Idle (no admitted work in the window): not burning.
        status = evaluate(slo, series, elapsed=600.0)
        assert status.ok and status.burn_rate == 0.0
        # Demand with zero completions: burning at the cap.
        series.record(admitted=1)
        status = evaluate(slo, series, elapsed=600.0)
        assert not status.ok and status.burn_rate == 1000.0
        # Same state on a fresh ring (uptime < window): held in abeyance.
        status = evaluate(slo, series, elapsed=5.0)
        assert status.ok and status.burn_rate == 0.0
        # Enough completions: objective met.
        for _ in range(12):
            series.record(completed=1)
        status = evaluate(slo, series, elapsed=600.0)
        assert status.value == pytest.approx(0.2)
        assert status.ok

    def test_mean_objective_and_evaluate_all(self):
        series, _ = self._series()
        for value in (10.0, 20.0, 30.0):
            series.record(queue_age_ms=value)
        slo = SLOSpec(
            name="mean_age", metric="queue_age_ms", objective=40.0,
            kind="mean_max", window=60.0,
        )
        statuses = evaluate_all([slo], series)
        assert statuses[0].value == pytest.approx(20.0)
        assert statuses[0].ok

    def test_spec_validation_and_parsing(self):
        with pytest.raises(ValueError, match="unknown SLO kind"):
            SLOSpec(name="x", metric="m", objective=1.0, kind="bogus")
        with pytest.raises(ValueError, match="positive"):
            SLOSpec(name="x", metric="m", objective=0.0)
        with pytest.raises(ValueError, match="quantle"):
            parse_slos(
                [{"name": "x", "metric": "m", "objective": 1, "quantle": 9}]
            )
        with pytest.raises(ValueError, match="objective"):
            parse_slos([{"name": "x", "metric": "m"}])
        parsed = parse_slos(
            [{"name": "x", "metric": "m", "objective": 2.5,
              "kind": "rate_max"}]
        )
        assert parsed[0].objective == 2.5
        assert {slo.name for slo in default_slos()} == {
            "queue_age_p95", "shed_rate", "throughput",
        }


# --------------------------------------------------------------------------
# correlation ids
# --------------------------------------------------------------------------


class TestCorrelation:
    def test_scope_binds_and_restores(self):
        assert current_correlation() is None
        with correlation_scope("c-abc123"):
            assert current_correlation() == "c-abc123"
            with correlation_scope("c-inner"):
                assert current_correlation() == "c-inner"
            assert current_correlation() == "c-abc123"
        assert current_correlation() is None

    def test_log_records_carry_the_ambient_correlation(self):
        captured = []

        class _Capture(logging.Handler):
            def emit(self, record):
                captured.append(record)

        handler = _Capture()
        handler.addFilter(CorrelationFilter())
        logger = get_logger("repro.tests.corr")
        logger.addHandler(handler)
        try:
            logger.warning("outside")
            with correlation_scope("c-flow42"):
                logger.warning("inside")
        finally:
            logger.removeHandler(handler)
        assert captured[0].corr == "-"
        assert captured[1].corr == "c-flow42"

    def test_runner_error_appends_the_correlation(self):
        spec = RunSpec(scheme="baseline", **QUICK)
        with correlation_scope("c-failjoin"):
            error = RunnerError({spec: RuntimeError("boom")}, {})
        assert error.correlation == "c-failjoin"
        assert "corr=c-failjoin" in str(error)
        # Outside any scope: no suffix, no fabricated id.
        bare = RunnerError({spec: RuntimeError("boom")}, {})
        assert bare.correlation is None
        assert "corr=" not in str(bare)

    def test_journal_entries_carry_the_job_correlation(self):
        service = CampaignService(
            workers=1, rate=1000.0, burst=1000.0
        ).start()
        try:
            job = service.submit(
                specs=[RunSpec(scheme="baseline", **QUICK)], client="corr"
            )
            assert isinstance(job, Job)
            assert job.correlation.startswith("c-")
            for event in job.stream(timeout=60.0):
                if event["type"] in ("done", "timeout"):
                    break
            entries = runner._journal_read()
            key = spec_key(RunSpec(scheme="baseline", **QUICK))
            assert entries[key]["corr"] == job.correlation
        finally:
            service.shutdown(drain=False, timeout=10.0)


# --------------------------------------------------------------------------
# the flight recorder
# --------------------------------------------------------------------------


class TestFlightRecorder:
    def test_disabled_recorder_is_inert(self, tmp_path):
        recorder = flight.FlightRecorder(role="worker")
        recorder.record("event", detail=1)
        assert recorder.snapshot() == {"events": [], "logs": []}
        assert recorder.dump("inflight") is None
        assert not flight.enabled()
        assert list(tmp_path.iterdir()) == []

    def test_dump_schema_ring_bound_and_ambient_corr(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path / "flight"))
        recorder = flight.FlightRecorder(role="worker", capacity=8)
        with correlation_scope("c-ringtest"):
            for index in range(20):
                recorder.record("progress", cycle=index)
            path = recorder.dump("inflight", extra={"key": "k1"})
        assert path is not None and path.name == f"flight_{os.getpid()}.json"
        record = json.loads(path.read_text())
        assert record["role"] == "worker"
        assert record["reason"] == "inflight"
        assert record["corr"] == "c-ringtest"
        assert record["extra"] == {"key": "k1"}
        # The ring is bounded: only the newest 8 events survive, and the
        # sequence numbers show how many were dropped.
        assert [e["cycle"] for e in record["events"]] == list(range(12, 20))
        assert record["events"][0]["seq"] == 13
        assert all(e["corr"] == "c-ringtest" for e in record["events"])
        # Successive dumps replace the file (newest state wins).
        recorder.record("progress", cycle=99)
        recorder.dump("inflight")
        latest = json.loads(path.read_text())
        assert latest["events"][-1]["cycle"] == 99
        assert len(flight.read_flight_records()) == 1

    def test_log_tail_is_teed_when_enabled(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path / "flight"))
        flight.reset_for_tests()
        recorder = flight.recorder(role="worker")
        logger = get_logger("repro.tests.flightlog")
        with correlation_scope("c-logtee"):
            logger.warning("something notable")
        snapshot = recorder.snapshot()
        entries = [
            entry for entry in snapshot["logs"]
            if entry["message"] == "something notable"
        ]
        assert entries and entries[0]["corr"] == "c-logtee"

    def test_sigkilled_worker_leaves_a_flight_record(
        self, tmp_path, monkeypatch
    ):
        """The acceptance-criteria chaos path, in-process: a pool worker
        is SIGKILLed mid-simulation; the inflight dump it wrote *before*
        death is the postmortem, and its correlation id joins the job."""
        flight_dir = tmp_path / "flight"
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(flight_dir))
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
        service = CampaignService(
            workers=1, rate=1000.0, burst=1000.0
        ).start()
        try:
            job = service.submit(
                specs=[RunSpec(
                    scheme="disco", workload="x264",
                    accesses_per_core=4000,
                )],
                client="chaos",
            )
            assert isinstance(job, Job)
            # Wait for the worker's first inflight dump, then kill it.
            deadline = time.monotonic() + 60.0
            victim = None
            while victim is None:
                assert time.monotonic() < deadline, (
                    "no inflight flight record appeared"
                )
                for record in flight.read_flight_records(flight_dir):
                    if (
                        record["reason"] == "inflight"
                        and record["pid"] != os.getpid()
                    ):
                        victim = record
                        break
                time.sleep(0.05)
            os.kill(victim["pid"], signal.SIGKILL)
            # The dead worker's record survives and carries the join keys:
            # the job's correlation id and the last sampled cycle.
            survivors = {
                r["pid"]: r for r in flight.read_flight_records(flight_dir)
            }
            record = survivors[victim["pid"]]
            assert record["corr"] == job.correlation
            assert record["extra"]["cycle"] >= 0
            assert record["extra"]["scheme"] == "disco"
            # The service notices the broken pool, dumps its own record,
            # respawns, and the retried unit still completes.
            results = failures = 0
            for event in job.stream(timeout=120.0):
                if event["type"] == "result":
                    results += 1
                elif event["type"] == "failed":
                    failures += 1
                elif event["type"] == "done":
                    break
                elif event["type"] == "timeout":
                    raise AssertionError("job stream timed out")
            assert results == 1 and failures == 0
            assert service.stats.worker_respawns >= 1
            reasons = {
                r["reason"]
                for r in flight.read_flight_records(flight_dir)
            }
            assert "broken_pool" in reasons
        finally:
            service.shutdown(drain=False, timeout=10.0)


# --------------------------------------------------------------------------
# inertness: the plane off and on produce identical physics
# --------------------------------------------------------------------------


class TestInvariance:
    def test_plane_on_off_keeps_golden_digests_and_envelope_bytes(
        self, tmp_path, monkeypatch
    ):
        """With every observability knob ON (flight dir, heartbeats, a
        bound correlation id), all five golden mesh digests and the
        disk-cache envelope *bytes* are identical to the knobs-off run.
        This is the provably-inert guarantee of the whole plane."""
        specs = {
            scheme: RunSpec(
                scheme=scheme, workload="blackscholes",
                accesses_per_core=QUICK_ACCESSES,
            )
            for scheme in GOLDEN_DIGESTS
        }
        # Pass 1: plane off (the _fresh fixture's clean environment).
        envelopes_off = {}
        for scheme, spec in specs.items():
            result = run_spec(spec)
            assert result_digest(result) == GOLDEN_DIGESTS[scheme]
            envelopes_off[scheme] = runner._disk_path(spec).read_bytes()
        # Pass 2: plane on — flight recorder, heartbeats, correlation.
        clear_cache()
        clear_disk_cache()
        flight.reset_for_tests()
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path / "flight"))
        monkeypatch.setenv("REPRO_HEARTBEAT_DIR", str(tmp_path / "hb"))
        for scheme, spec in specs.items():
            with correlation_scope(f"c-invariance-{scheme}"):
                result = runner._simulate(spec)
                runner._store(spec, result, verbose=False)
            assert result_digest(result) == GOLDEN_DIGESTS[scheme], (
                f"observability plane perturbed the {scheme} digest"
            )
            assert (
                runner._disk_path(spec).read_bytes()
                == envelopes_off[scheme]
            ), f"disk-cache envelope of {scheme} differs with the plane on"
        # The plane did actually observe something (it was on, not dead).
        assert flight.read_flight_records(tmp_path / "flight")


# --------------------------------------------------------------------------
# the service endpoints: /metrics, /health/ready, /slo
# --------------------------------------------------------------------------


@pytest.fixture
def http_service():
    service = CampaignService(workers=2, rate=1000.0, burst=1000.0).start()
    server = serve(service, "127.0.0.1", 0)
    port = server.server_address[1]
    try:
        yield service, port
    finally:
        server.shutdown()
        server.server_close()
        service.shutdown(drain=False, timeout=10.0)


def _get(port, path):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=30
    ) as response:
        return response.status, dict(response.headers), response.read()


def _post_submit(port, payload):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/submit",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


class TestServiceEndpoints:
    def test_metrics_validate_and_reconcile_with_stats(self, http_service):
        service, port = http_service
        body = _post_submit(
            port,
            {"client": "m", "specs": [
                dict(scheme="baseline", **QUICK),
                dict(scheme="disco", **QUICK),
            ]},
        )
        assert body["correlation"].startswith("c-")
        job = service.jobs[body["job"]]
        for event in job.stream(timeout=60.0):
            if event["type"] in ("done", "timeout"):
                assert event["type"] == "done"
                break
        status, headers, raw = _get(port, "/metrics")
        assert status == 200
        assert "openmetrics-text" in headers["Content-Type"]
        text = raw.decode()
        assert validate_openmetrics(text) == []
        samples = parse_samples(text)
        # Counters reconcile with /stats and the registry snapshot.
        _, _, stats_raw = _get(port, "/stats")
        stats = json.loads(stats_raw)["counters"]
        assert samples["repro_service_units_completed_total"][()] == (
            stats["service"]["units_completed"]
        )
        assert samples["repro_admission_jobs_admitted_total"][()] == (
            stats["admission"]["jobs_admitted"]
        )
        by_scheme = samples["repro_service_units_completed_by_scheme_total"]
        assert by_scheme[(("scheme", "baseline"),)] == 1
        assert by_scheme[(("scheme", "disco"),)] == 1
        outcomes = samples["repro_service_unit_cache_outcomes_total"]
        assert outcomes[(("outcome", "hit"),)] + outcomes[
            (("outcome", "miss"),)
        ] == stats["service"]["units_completed"]
        assert samples["repro_service_queue_age_ms_count"][()] == 2
        assert samples["repro_service_up"][()] == 1
        burn = samples["repro_slo_burn_rate"]
        assert {labels[0][1] for labels in burn} == {
            "queue_age_p95", "shed_rate", "throughput",
        }
        # /slo serves the same objectives as structured JSON.
        _, _, slo_raw = _get(port, "/slo")
        slo = json.loads(slo_raw)["slo"]
        assert {entry["name"] for entry in slo} == {
            "queue_age_p95", "shed_rate", "throughput",
        }

    def test_concurrent_scrapes_are_untorn_and_monotonic(
        self, http_service
    ):
        service, port = http_service
        stop = threading.Event()
        failures = []
        watched = (
            "repro_service_units_completed_total",
            "repro_admission_jobs_admitted_total",
            "repro_service_unit_cache_outcomes_total",
        )

        def scrape_loop():
            last = {}
            while not stop.is_set():
                try:
                    _, _, raw = _get(port, "/metrics")
                    text = raw.decode()
                    errors = validate_openmetrics(text)
                    if errors:
                        failures.append(f"torn exposition: {errors}")
                        return
                    samples = parse_samples(text)
                    for name in watched:
                        for labels, value in samples.get(name, {}).items():
                            key = (name, labels)
                            if key in last and value < last[key]:
                                failures.append(
                                    f"{name}{labels} went backwards: "
                                    f"{last[key]} -> {value}"
                                )
                                return
                            last[key] = value
                except Exception as exc:  # noqa: BLE001 - fail the test
                    failures.append(repr(exc))
                    return

        scrapers = [
            threading.Thread(target=scrape_loop, daemon=True)
            for _ in range(3)
        ]
        for thread in scrapers:
            thread.start()
        jobs = []
        for seed in range(4):
            body = _post_submit(
                port,
                {"client": "scrape", "specs": [
                    dict(scheme="baseline", seed=seed, **QUICK)
                ]},
            )
            jobs.append(service.jobs[body["job"]])
        for job in jobs:
            for event in job.stream(timeout=60.0):
                if event["type"] in ("done", "timeout"):
                    break
        time.sleep(0.2)  # a few post-completion scrapes
        stop.set()
        for thread in scrapers:
            thread.join(timeout=10.0)
        assert failures == []
        assert service.stats.units_completed == 4

    def test_ready_names_every_failing_condition(
        self, tmp_path, monkeypatch
    ):
        # An unstarted service is unready for two reasons, by name.
        service = CampaignService(workers=1, max_queue_depth=2)
        ok, detail = service.ready()
        assert not ok
        assert any("not accepting" in r for r in detail["reasons"])
        assert any("dispatcher threads dead" in r for r in detail["reasons"])
        # Queue at the bound: named with the depth and the bound.
        service._accepting = True
        job = service.submit(
            specs=[RunSpec(scheme="baseline", seed=s, **QUICK)
                   for s in (1, 2)],
            client="fill",
        )
        assert isinstance(job, Job)
        ok, detail = service.ready()
        assert any("queue depth 2 at/over bound 2" in r
                   for r in detail["reasons"])
        # A stale heartbeat file: named with the pid and its age.
        hb_dir = tmp_path / "hb"
        hb_dir.mkdir()
        stale = hb_dir / "hb_99999.json"
        stale.write_text('{"pid": 99999}')
        old = time.time() - 300.0
        os.utime(stale, (old, old))
        monkeypatch.setenv("REPRO_HEARTBEAT_DIR", str(hb_dir))
        monkeypatch.setenv("REPRO_WATCHDOG_SECONDS", "5")
        ok, detail = service.ready()
        assert not ok
        assert any("stale heartbeat pids: 99999" in r
                   for r in detail["reasons"])
        assert detail["heartbeats"]["workers"] == 1
        # SLO statuses ride along but never block readiness by themselves.
        assert {entry["name"] for entry in detail["slo"]} == {
            "queue_age_p95", "shed_rate", "throughput",
        }

    def test_burning_slo_publishes_stream_events(self):
        slo = SLOSpec(
            name="shed_rate", metric="shed", objective=0.001,
            kind="rate_max", window=60.0,
        )
        service = CampaignService(workers=1, slos=[slo])
        service._accepting = True
        job = service.submit(
            specs=[RunSpec(scheme="baseline", **QUICK)], client="slo"
        )
        assert isinstance(job, Job)
        service.series.record(shed=1)  # 1/60s >> 0.001/s objective
        statuses = service.evaluate_slos(publish=True)
        assert [s.name for s in statuses] == ["shed_rate"]
        assert not statuses[0].ok
        events = [
            event for event in job.stream(timeout=1.0, poll=0.05)
            if event["type"] == "slo_burn"
        ]
        assert events and events[0]["name"] == "shed_rate"
        assert events[0]["burn_rate"] > 1.0
        # Registry exposition mirrors the burn.
        registry = build_service_registry(service)
        samples = parse_samples(registry.render())
        assert samples["repro_slo_ok"][(("slo", "shed_rate"),)] == 0


# --------------------------------------------------------------------------
# the regression sentinel and the CLI checkers
# --------------------------------------------------------------------------

_REPO = Path(__file__).resolve().parents[1]


def _run_sentinel(*args):
    return subprocess.run(
        [sys.executable, str(_REPO / "benchmarks" / "sentinel.py"), *args],
        capture_output=True,
        text=True,
        timeout=60,
    )


def _trajectory(path, walls, config="smoke", kernel="event"):
    runs = [
        {"config": config, "kernel": kernel, "wall_seconds": wall,
         "cache_hit": False, "when": f"2026-01-0{i + 1}"}
        for i, wall in enumerate(walls)
    ]
    path.write_text(json.dumps({"baseline": {}, "runs": runs}))


class TestSentinel:
    def test_ok_regression_and_baseline_verdicts(self, tmp_path):
        ok_path = tmp_path / "BENCH_ok.json"
        _trajectory(ok_path, [10.0, 12.0, 11.0])
        result = _run_sentinel(str(ok_path))
        assert result.returncode == 0, result.stderr
        assert "OK" in result.stdout and "REGRESSION" not in result.stdout
        bad_path = tmp_path / "BENCH_bad.json"
        _trajectory(bad_path, [10.0, 25.0])  # 2.5x the 10s reference
        result = _run_sentinel(str(bad_path))
        assert result.returncode == 1
        assert "REGRESSION" in result.stdout
        base_path = tmp_path / "BENCH_base.json"
        _trajectory(base_path, [10.0])
        result = _run_sentinel(str(base_path))
        assert result.returncode == 0
        assert "BASELINE" in result.stdout

    def test_cache_hits_never_gate_and_threshold_is_adjustable(
        self, tmp_path
    ):
        path = tmp_path / "BENCH_mix.json"
        runs = [
            {"config": "smoke", "kernel": "event", "wall_seconds": 10.0,
             "cache_hit": False},
            # A cache-hit "run" times a dict lookup: skipped entirely.
            {"config": "smoke", "kernel": "event", "wall_seconds": 0.01,
             "cache_hit": True},
            {"config": "smoke", "kernel": "event", "wall_seconds": 14.0,
             "cache_hit": False},
        ]
        path.write_text(json.dumps({"runs": runs}))
        assert _run_sentinel(str(path)).returncode == 0  # 1.4x < 2x
        tight = _run_sentinel(str(path), "--threshold", "1.2")
        assert tight.returncode == 1  # 1.4x > 1.2x
        parsed = json.loads(
            _run_sentinel(str(path), "--json").stdout
        )
        assert parsed["verdicts"][0]["reference_seconds"] == 10.0

    def test_committed_trajectory_is_clean(self):
        """The repo's own bench trajectory must pass its own sentinel."""
        result = _run_sentinel()
        assert result.returncode == 0, result.stdout + result.stderr
        assert "no regressions" in result.stdout

    def test_check_cli_validates_metrics_files(self, tmp_path):
        from repro.telemetry.check import main as check_main

        registry = MetricsRegistry()
        registry.counter("repro_events", "test").inc(3)
        good = tmp_path / "good.txt"
        good.write_text(registry.render())
        assert check_main(["--metrics", str(good)]) == 0
        bad = tmp_path / "bad.txt"
        bad.write_text("repro_x nope\n")  # bad value, no EOF
        assert check_main(["--metrics", str(bad)]) != 0
