"""Tests for the compression plug-in contract and helpers."""

import pytest

from repro.compression.base import (
    CachedCompressor,
    CompressedLine,
    CompressionTiming,
    chunks,
    from_chunks,
    from_words32,
    sign_extend,
    signed_fits,
    to_signed,
    words32,
)
from repro.compression.delta import DeltaCompressor


def test_timing_validation():
    with pytest.raises(ValueError):
        CompressionTiming(-1, 3)
    timing = CompressionTiming(1, 3, 0.02)
    assert timing.compression_cycles == 1


def test_compressed_line_properties():
    line = CompressedLine("delta", 512, 130, None, True)
    assert line.size_bytes == 17
    assert line.ratio == pytest.approx(512 / 130)
    assert line.flit_count(8) == 3


def test_flit_count_validates():
    line = CompressedLine("delta", 512, 130, None, True)
    with pytest.raises(ValueError):
        line.flit_count(0)


def test_compress_rejects_wrong_line_size():
    algo = DeltaCompressor(line_size=64)
    with pytest.raises(ValueError):
        algo.compress(b"\x00" * 32)


def test_line_size_validation():
    with pytest.raises(ValueError):
        DeltaCompressor(line_size=0)
    with pytest.raises(ValueError):
        DeltaCompressor(line_size=62)


def test_incompressible_fallback_keeps_raw():
    algo = DeltaCompressor()
    line = bytes(range(64))  # stride of 1-byte values: compressible actually
    import random

    rng = random.Random(1)
    random_line = rng.getrandbits(512).to_bytes(64, "little")
    compressed = algo.compress(random_line)
    if not compressed.compressible:
        assert compressed.size_bits == 512 + 1
    assert algo.decompress(compressed) == random_line


def test_decompress_checks_algorithm_name():
    algo = DeltaCompressor()
    other = CompressedLine("fpc", 512, 100, None, True)
    with pytest.raises(ValueError):
        algo.decompress(other)


def test_words32_roundtrip():
    line = bytes(range(64))
    assert from_words32(words32(line)) == line
    assert len(words32(line)) == 16


def test_chunks_roundtrip():
    line = bytes(range(64))
    for width in (2, 4, 8):
        assert from_chunks(chunks(line, width), width) == line


def test_signed_helpers():
    assert signed_fits(127, 1)
    assert not signed_fits(128, 1)
    assert signed_fits(-128, 1)
    assert not signed_fits(-129, 1)
    assert to_signed(0xFF, 1) == -1
    assert to_signed(0x7F, 1) == 127
    assert sign_extend(0xFF, 1, 4) == 0xFFFFFFFF
    assert sign_extend(0x01, 1, 4) == 1


class TestCachedCompressor:
    def test_caches_and_matches_inner(self):
        inner = DeltaCompressor()
        cached = CachedCompressor(DeltaCompressor(), capacity=4)
        line = b"\x07" * 64
        first = cached.compress(line)
        second = cached.compress(line)
        assert first is second
        assert cached.hits == 1 and cached.misses == 1
        assert first.size_bits == inner.compress(line).size_bits
        assert cached.decompress(first) == line

    def test_lru_bound(self):
        cached = CachedCompressor(DeltaCompressor(), capacity=2)
        lines = [bytes([i]) * 64 for i in range(3)]
        for line in lines:
            cached.compress(line)
        cached.compress(lines[0])  # evicted, recompressed
        assert cached.misses == 4

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            CachedCompressor(DeltaCompressor(), capacity=0)

    def test_train_requires_trainable_inner(self):
        cached = CachedCompressor(DeltaCompressor())
        with pytest.raises(AttributeError):
            cached.train([b"\x00" * 64])
