"""Algorithm-specific tests: BDI geometries, C-Pack dictionary, SC² codec."""

import random

import pytest

from repro.compression.bdi import BDICompressor
from repro.compression.cpack import CPackCompressor, _Dictionary
from repro.compression.sc2 import SC2Compressor
from repro.compression.fvc import FVCCompressor
from repro.compression.zerocontent import ZeroContentCompressor


def chunk_line(values, width=8):
    return b"".join(v.to_bytes(width, "little") for v in values)


class TestBDI:
    def test_zero_and_repeat(self):
        algo = BDICompressor()
        zero = algo.compress(b"\x00" * 64)
        assert zero.size_bytes <= 1
        line = (12345).to_bytes(8, "little") * 8
        repeat = algo.compress(line)
        assert repeat.size_bytes <= 9
        assert algo.decompress(repeat) == line

    def test_base8_delta1(self):
        base = 1 << 50
        values = [base + i for i in range(8)]
        line = chunk_line(values)
        algo = BDICompressor()
        compressed = algo.compress(line)
        # header 4 + mask 8 + base 64 + 8 deltas x 8 + tag
        assert compressed.size_bits == 4 + 8 + 64 + 64 + 1
        assert algo.decompress(compressed) == line

    def test_dual_base_mixing(self):
        """Chunks near zero ride the immediate base; others the real base."""
        base = 1 << 42
        values = [5, base, 120, base + 90, 0, base - 100, 7, base + 1]
        line = chunk_line(values)
        algo = BDICompressor()
        compressed = algo.compress(line)
        assert compressed.compressible
        assert algo.decompress(compressed) == line

    def test_base2_geometry(self):
        values = [40000 + (i % 100) for i in range(32)]
        line = chunk_line(values, width=2)
        algo = BDICompressor()
        compressed = algo.compress(line)
        assert compressed.compressible
        assert algo.decompress(compressed) == line


class TestCPackDictionary:
    def test_full_and_partial_match(self):
        d = _Dictionary()
        d.push(0x12345678)
        assert d.full_match(0x12345678) == 0
        assert d.partial_match(0x123456FF, 3) == 0
        assert d.partial_match(0x1234FFFF, 2) == 0
        assert d.full_match(0x11111111) == -1

    def test_fifo_eviction(self):
        d = _Dictionary()
        for i in range(20):
            d.push(i + (1 << 20))
        assert len(d.entries) == 16
        assert d.full_match(4 + (1 << 20)) == 0  # oldest remaining


class TestCPack:
    def test_dictionary_exploitation(self):
        # Repeating distinct large words: first occurrence raw, rest mmmm.
        words = [0xDEAD0001, 0xBEEF0002, 0xCAFE0003, 0xF00D0004] * 4
        line = b"".join(w.to_bytes(4, "little") for w in words)
        algo = CPackCompressor()
        compressed = algo.compress(line)
        # 4 x xxxx (34) + 12 x mmmm (6) + tag
        assert compressed.size_bits == 4 * 34 + 12 * 6 + 1
        assert algo.decompress(compressed) == line

    def test_partial_match_codes(self):
        words = [0xAABBCC00 + i for i in range(16)]  # top 3 bytes shared
        line = b"".join(w.to_bytes(4, "little") for w in words)
        algo = CPackCompressor()
        compressed = algo.compress(line)
        assert compressed.compressible
        assert algo.decompress(compressed) == line


class TestSC2:
    def test_training_improves_ratio(self):
        rng = random.Random(4)
        vocabulary = [rng.getrandbits(32) for _ in range(8)]
        lines = [
            b"".join(
                rng.choice(vocabulary).to_bytes(4, "little") for _ in range(16)
            )
            for _ in range(200)
        ]
        algo = SC2Compressor()
        before = sum(algo.compress(l).size_bits for l in lines[:50])
        algo.train(lines[50:])
        after = sum(algo.compress(l).size_bits for l in lines[:50])
        assert after < before

    def test_generation_mismatch_rejected(self):
        algo = SC2Compressor()
        compressed = algo.compress(b"\x01" * 64)
        algo.train([b"\x02" * 64] * 4)
        with pytest.raises(ValueError):
            algo.decompress(compressed)

    def test_empty_training_rejected(self):
        with pytest.raises(ValueError):
            SC2Compressor().train([])

    def test_bitstream_roundtrip_with_escapes(self):
        rng = random.Random(9)
        line = rng.getrandbits(512).to_bytes(64, "little")
        algo = SC2Compressor()
        compressed = algo.compress(line)
        assert algo.decompress(compressed) == line

    def test_codebook_size_validation(self):
        with pytest.raises(ValueError):
            SC2Compressor(codebook_size=1)


class TestFVC:
    def test_table_hits_and_misses(self):
        algo = FVCCompressor()
        line = (b"\x00" * 4 + b"\x01\x00\x00\x00") * 8  # 0 and 1: both in table
        compressed = algo.compress(line)
        assert compressed.size_bits == 16 * (1 + algo.index_bits) + 1
        assert algo.decompress(compressed) == line

    def test_train_replaces_table(self):
        algo = FVCCompressor()
        value = 0xABCD1234
        lines = [value.to_bytes(4, "little") * 16] * 10
        algo.train(lines)
        assert value in algo.table
        compressed = algo.compress(lines[0])
        assert compressed.size_bytes < 12

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            FVCCompressor(table=())


class TestZeroContent:
    def test_all_zero_is_one_bit(self):
        algo = ZeroContentCompressor()
        compressed = algo.compress(b"\x00" * 64)
        assert compressed.size_bits == 1 + 1

    def test_partial_zero(self):
        line = (b"\x00" * 4 + b"\xff" * 4) * 8
        algo = ZeroContentCompressor()
        compressed = algo.compress(line)
        # 1 flag + 16 word flags + 8 nonzero words
        assert compressed.size_bits == 1 + 16 + 8 * 32 + 1
        assert algo.decompress(compressed) == line
