"""Tests for the adaptive-threshold extension (deferred by the paper)."""

import pytest

from repro.core import DiscoConfig, make_disco_router_factory
from repro.core.engine import JOB_COMPRESS
from repro.noc import Network, NocConfig
from repro.noc.flit import Packet, PacketType
from repro.noc.topology import PORT_EAST, PORT_WEST


def make_router(**disco_kwargs):
    network = Network(
        NocConfig(),
        router_factory=make_disco_router_factory(DiscoConfig(**disco_kwargs)),
    )
    return network.routers[5]


def stage_candidate(router, flits=4):
    vc = router.inputs[PORT_WEST][1]
    vc.packet = Packet(
        PacketType.RESPONSE, 0, 3, line=b"\x05" * 64, compressible=True
    )
    vc.out_port = PORT_EAST
    vc.flits_received = flits
    vc.flits_present = flits
    return vc


def set_downstream_occupancy(router, flits):
    neighbor = router.network.routers[6]
    neighbor.inputs[PORT_WEST][1].flits_present = flits


def test_static_thresholds_are_constant():
    router = make_router(adaptive_thresholds=False, cc_threshold=2.0)
    arb = router.arbitrator
    assert arb._threshold(JOB_COMPRESS) == 2.0
    arb._observe_congestion(50.0)
    assert arb._threshold(JOB_COMPRESS) == 2.0


def test_congested_router_lowers_its_bar():
    router = make_router(
        adaptive_thresholds=True, cc_threshold=2.0, adaptation_rate=0.5,
        adaptation_gain=1.0,
    )
    arb = router.arbitrator
    before = arb._threshold(JOB_COMPRESS)
    for _ in range(20):
        arb._observe_congestion(10.0)  # persistent heavy congestion
    after = arb._threshold(JOB_COMPRESS)
    assert after < before


def test_quiet_router_raises_its_bar():
    router = make_router(
        adaptive_thresholds=True, cc_threshold=2.0, adaptation_rate=0.5,
        adaptation_gain=1.0,
    )
    arb = router.arbitrator
    for _ in range(20):
        arb._observe_congestion(10.0)
    congested = arb._threshold(JOB_COMPRESS)
    for _ in range(50):
        arb._observe_congestion(0.0)  # long quiet spell
    quiet = arb._threshold(JOB_COMPRESS)
    assert quiet > congested


def test_adaptation_feeds_from_consider():
    router = make_router(
        adaptive_thresholds=True, cc_threshold=5.0, adaptation_rate=1.0,
        adaptation_gain=1.0,
    )
    vc = stage_candidate(router)
    set_downstream_occupancy(router, 7)
    router.arbitrator.consider([vc], cycle=0)
    assert router.arbitrator._congestion_ema == pytest.approx(7.0)


def test_adaptive_system_runs_end_to_end():
    from repro.cmp import CmpSystem, SystemConfig, make_scheme
    from repro.workloads import generate_traces, get_profile

    config = SystemConfig.scaled_4x4()
    scheme = make_scheme(
        "disco", disco=DiscoConfig(adaptive_thresholds=True)
    )
    traces = generate_traces(get_profile("canneal"), 16, 200, seed=3)
    result = CmpSystem(config, scheme, traces).run()
    assert result.cycles > 0
    stats = result.network
    assert stats.packets_injected == stats.packets_ejected


def test_config_validation():
    with pytest.raises(ValueError):
        DiscoConfig(adaptation_rate=0.0)
    with pytest.raises(ValueError):
        DiscoConfig(adaptation_rate=1.5)
