"""Packet sizing and compression state-change tests."""

import pytest

from repro.compression import get_algorithm
from repro.noc.flit import Packet, PacketType, VNET_REQUEST, VNET_RESPONSE


def test_control_packet_is_single_flit():
    packet = Packet(PacketType.REQUEST, 0, 5)
    assert packet.size_flits == 1
    assert not packet.carries_data


def test_data_packet_sizing():
    packet = Packet(PacketType.RESPONSE, 0, 5, line=b"\x00" * 64)
    assert packet.size_flits == 9  # head + 8 payload flits
    assert packet.uncompressed_size() == 9
    assert packet.carries_data


def test_vnet_mapping():
    assert PacketType.REQUEST.vnet == VNET_REQUEST
    assert PacketType.COHERENCE.vnet == VNET_REQUEST
    assert PacketType.RESPONSE.vnet == VNET_RESPONSE


def test_compression_shrinks_and_decompression_restores():
    algo = get_algorithm("delta")
    line = b"\x03" * 64
    packet = Packet(PacketType.RESPONSE, 1, 2, line=line, compressible=True)
    compressed = algo.compress(line)
    saved = packet.apply_compression(compressed)
    assert packet.is_compressed
    assert saved > 0
    assert packet.size_flits == 1 + compressed.flit_count(8)
    added = packet.apply_decompression()
    assert added == saved
    assert packet.size_flits == 9


def test_double_compression_rejected():
    algo = get_algorithm("delta")
    line = b"\x03" * 64
    packet = Packet(PacketType.RESPONSE, 1, 2, line=line)
    packet.apply_compression(algo.compress(line))
    with pytest.raises(ValueError):
        packet.apply_compression(algo.compress(line))


def test_control_packet_cannot_compress():
    algo = get_algorithm("delta")
    packet = Packet(PacketType.REQUEST, 1, 2)
    with pytest.raises(ValueError):
        packet.apply_compression(algo.compress(b"\x00" * 64))


def test_decompress_requires_compressed():
    packet = Packet(PacketType.RESPONSE, 1, 2, line=b"\x00" * 64)
    with pytest.raises(ValueError):
        packet.apply_decompression()


def test_compressed_at_creation():
    algo = get_algorithm("delta")
    line = b"\x00" * 64
    compressed = algo.compress(line)
    packet = Packet(
        PacketType.RESPONSE, 0, 3, line=line,
        compressed=compressed, is_compressed=True,
    )
    assert packet.size_flits == 1 + compressed.flit_count(8)


def test_is_compressed_requires_payload():
    with pytest.raises(ValueError):
        Packet(PacketType.RESPONSE, 0, 1, line=b"\x00" * 64, is_compressed=True)
