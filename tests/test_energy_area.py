"""Energy accounting and area model tests."""

import pytest

from repro.energy import (
    EnergyParams,
    compute_energy,
    cache_area_um2,
    compressor_area_um2,
    overhead_report,
    router_area_um2,
)
from repro.energy.accounting import _engine_count
from repro.noc.config import NocConfig


def counters(**kwargs):
    base = {
        "buffer_writes": 0, "buffer_reads": 0, "crossbar_flits": 0,
        "link_flits": 0, "sa_grants": 0, "va_grants": 0,
        "bank_tag_lookups": 0, "bank_segments_read": 0,
        "bank_segments_written": 0, "router_compressions": 0,
        "router_decompressions": 0, "ni_compressions": 0,
        "ni_decompressions": 0, "bank_compressions": 0,
        "bank_decompressions": 0, "memory_reads": 0, "memory_writes": 0,
    }
    base.update(kwargs)
    return base


class TestEnergyAccounting:
    def test_zero_counters_only_leakage(self):
        breakdown = compute_energy(counters(), 1000, 16, "baseline", "delta")
        assert breakdown.noc_dynamic == 0
        assert breakdown.cache_dynamic == 0
        assert breakdown.compressor_dynamic == 0
        assert breakdown.compressor_leakage == 0  # baseline has no engines
        assert breakdown.noc_leakage > 0
        assert breakdown.cache_leakage > 0

    def test_dynamic_scales_with_events(self):
        small = compute_energy(
            counters(link_flits=100), 0, 16, "baseline", "delta"
        )
        large = compute_energy(
            counters(link_flits=200), 0, 16, "baseline", "delta"
        )
        assert large.noc_dynamic == pytest.approx(2 * small.noc_dynamic)

    def test_engine_counts_per_scheme(self):
        assert _engine_count("baseline", 16) == 0
        assert _engine_count("cc", 16) == 16
        assert _engine_count("cnc", 16) == 32  # bank + NI (2x area, §4.3)
        assert _engine_count("disco", 16) == 16
        with pytest.raises(KeyError):
            _engine_count("nope", 16)

    def test_compressor_dynamic_counts_all_sites(self):
        breakdown = compute_energy(
            counters(router_compressions=5, ni_compressions=5,
                     bank_compressions=5),
            0, 16, "disco", "delta",
        )
        comp_pj = EnergyParams().compressor_constants("delta")[0]
        assert breakdown.compressor_dynamic == pytest.approx(15 * comp_pj)

    def test_dram_toggle(self):
        params = EnergyParams(include_dram=True)
        with_dram = compute_energy(
            counters(memory_reads=10), 0, 16, "baseline", "delta", params
        )
        without = compute_energy(
            counters(memory_reads=10), 0, 16, "baseline", "delta"
        )
        assert with_dram.dram > 0 and without.dram == 0
        assert with_dram.total > without.total

    def test_unknown_algorithm_energy(self):
        with pytest.raises(KeyError):
            EnergyParams().compressor_constants("nope")

    def test_breakdown_dict(self):
        breakdown = compute_energy(counters(), 10, 4, "cc", "fpc")
        d = breakdown.as_dict()
        assert d["total"] == pytest.approx(breakdown.total)
        assert set(d) == {
            "noc_dynamic", "noc_leakage", "cache_dynamic", "cache_leakage",
            "compressor_dynamic", "compressor_leakage", "dram", "total",
        }


class TestAreaModel:
    def test_section_4_3_shape(self):
        report = overhead_report()
        assert 0.12 <= report.router_overhead <= 0.25  # paper: 17.2%
        assert report.cache_overhead < 0.01  # paper: <1%
        assert 0.4 <= report.disco_vs_cnc_area <= 0.75  # paper: ~half

    def test_router_area_scales_with_buffers(self):
        small = router_area_um2(NocConfig(vc_depth=4))
        large = router_area_um2(NocConfig(vc_depth=16))
        assert large > small

    def test_compressor_areas_ordered_by_complexity(self):
        config = NocConfig()
        delta = compressor_area_um2("delta", config)
        fpc = compressor_area_um2("fpc", config)
        sc2 = compressor_area_um2("sc2", config)
        assert delta < fpc < sc2

    def test_unknown_algorithm_area(self):
        with pytest.raises(KeyError):
            compressor_area_um2("nope", NocConfig())

    def test_cache_area_validation(self):
        with pytest.raises(ValueError):
            cache_area_um2(0)
        assert cache_area_um2(4 << 20) > cache_area_um2(2 << 20)
