"""Cycle-level NoC tests: delivery, conservation, flow-control variants."""

import pytest

from repro.noc import Network, NocConfig
from repro.noc.config import FlowControl
from repro.noc.flit import Packet, PacketType
from repro.noc.traffic import SyntheticTraffic, TrafficConfig


def make_network(**kwargs):
    return Network(NocConfig(**kwargs))


def send_and_drain(network, packets):
    delivered = []
    network.set_delivery_handler(lambda node, p: delivered.append((node, p)))
    for packet in packets:
        network.send(packet)
    network.run_until_quiescent()
    return delivered


class TestBasicDelivery:
    def test_single_control_packet(self):
        network = make_network()
        packet = Packet(PacketType.REQUEST, 0, 15)
        delivered = send_and_drain(network, [packet])
        assert delivered == [(15, packet)]
        assert packet.ejected_cycle > packet.injected_cycle

    def test_single_data_packet_latency(self):
        network = make_network()
        packet = Packet(PacketType.RESPONSE, 0, 15, line=b"\x00" * 64)
        send_and_drain(network, [packet])
        latency = packet.ejected_cycle - packet.injected_cycle
        # 6 hops x ~4 cycles + 9-flit serialization, at zero load.
        assert 20 <= latency <= 45
        assert packet.hops_traversed == 6

    def test_neighbor_vs_corner_latency(self):
        near = Packet(PacketType.REQUEST, 0, 1)
        far = Packet(PacketType.REQUEST, 0, 15)
        network = make_network()
        send_and_drain(network, [near, far])
        assert (near.ejected_cycle - near.injected_cycle) < (
            far.ejected_cycle - far.injected_cycle
        )

    def test_local_delivery(self):
        network = make_network()
        packet = Packet(PacketType.RESPONSE, 3, 3, line=b"\x00" * 64)
        delivered = send_and_drain(network, [packet])
        assert delivered == [(3, packet)]

    def test_bad_nodes_rejected(self):
        network = make_network()
        with pytest.raises(ValueError):
            network.send(Packet(PacketType.REQUEST, 0, 99))
        with pytest.raises(ValueError):
            network.send(Packet(PacketType.REQUEST, -1, 3))


class TestConservation:
    @pytest.mark.parametrize("rate", [0.02, 0.08])
    def test_no_packet_loss_uniform(self, rate):
        network = make_network()
        traffic = SyntheticTraffic(
            network, TrafficConfig(injection_rate=rate, seed=5)
        )
        traffic.run(800)
        assert network.stats.packets_ejected == traffic.generated
        assert network.stats.flits_injected == network.stats.flits_ejected

    def test_payload_integrity(self):
        network = make_network()
        traffic = SyntheticTraffic(
            network,
            TrafficConfig(injection_rate=0.05, seed=6, compressible=False),
        )
        traffic.run(500)
        for packet in traffic.delivered:
            if packet.carries_data:
                assert len(packet.line) == 64

    def test_transpose_and_hotspot_patterns(self):
        for pattern in ("transpose", "hotspot"):
            network = make_network()
            traffic = SyntheticTraffic(
                network,
                TrafficConfig(pattern=pattern, injection_rate=0.03, seed=2),
            )
            traffic.run(400)
            assert network.stats.packets_ejected == traffic.generated


class TestFlowControlVariants:
    def test_vct_requires_whole_packet_space(self):
        config = NocConfig(
            flow_control=FlowControl.VIRTUAL_CUT_THROUGH, vc_depth=10
        )
        network = Network(config)
        packet = Packet(PacketType.RESPONSE, 0, 3, line=b"\x00" * 64)
        delivered = send_and_drain(network, [packet])
        assert len(delivered) == 1

    def test_vct_rejects_undersized_buffers(self):
        # Construction-time: vc_depth < max packet length is a config error.
        with pytest.raises(ValueError, match="vc_depth"):
            NocConfig(
                flow_control=FlowControl.VIRTUAL_CUT_THROUGH, vc_depth=4
            )
        # Runtime backstop: a packet larger than the declared max_line_bytes
        # still trips the whole-packet invariant at VC allocation.
        config = NocConfig(
            flow_control=FlowControl.VIRTUAL_CUT_THROUGH,
            vc_depth=10,
            max_line_bytes=64,
        )
        network = Network(config)
        network.set_delivery_handler(lambda n, p: None)
        network.send(Packet(PacketType.RESPONSE, 0, 3, line=b"\x00" * 128))
        with pytest.raises(RuntimeError):
            network.run_until_quiescent()

    def test_store_and_forward_delivers(self):
        config = NocConfig(
            flow_control=FlowControl.STORE_AND_FORWARD, vc_depth=12
        )
        network = Network(config)
        packet = Packet(PacketType.RESPONSE, 0, 15, line=b"\x00" * 64)
        delivered = send_and_drain(network, [packet])
        assert len(delivered) == 1
        # SAF buffers the whole packet per hop: strictly slower than WH.
        wormhole = make_network()
        p2 = Packet(PacketType.RESPONSE, 0, 15, line=b"\x00" * 64)
        send_and_drain(wormhole, [p2])
        assert (packet.ejected_cycle - packet.injected_cycle) > (
            p2.ejected_cycle - p2.injected_cycle
        )


class TestVirtualNetworks:
    def test_vnet_separation(self):
        """Responses and requests use disjoint VC classes."""
        network = make_network()
        seen_vcs = {0: set(), 1: set()}
        original = Network.schedule_arrival

        def spy(self, delay, target_vc, packet, is_head, is_tail):
            seen_vcs[packet.ptype.vnet].add(target_vc.vc_index)
            original(self, delay, target_vc, packet, is_head, is_tail)

        network.schedule_arrival = spy.__get__(network)
        packets = [
            Packet(PacketType.REQUEST, 0, 15),
            Packet(PacketType.RESPONSE, 0, 15, line=b"\x00" * 64),
        ]
        send_and_drain(network, packets)
        assert seen_vcs[0] <= {0}
        assert seen_vcs[1] <= {1}


class TestQuiescence:
    def test_quiescent_initially(self):
        assert make_network().quiescent()

    def test_not_quiescent_with_traffic(self):
        network = make_network()
        network.set_delivery_handler(lambda n, p: None)
        network.send(Packet(PacketType.REQUEST, 0, 15))
        assert not network.quiescent()
        network.run_until_quiescent()
        assert network.quiescent()
