"""The observability layer: sampler, tracer, exporters, profiler, logger.

The load-bearing contracts:

- **off-invariance** — with every telemetry knob off, nothing is
  registered and results are bit-identical to a pre-telemetry run (the
  golden-mesh digests enforce the absolute baseline; here we check that
  turning telemetry *on* changes only the ``telemetry`` stat group);
- **span accounting** — at sampling rate 1, the number of packet spans
  reconstructed from the trace equals ``packets_ejected``;
- **bounded memory** — the tracer's event cap and the sampler's window
  ring are hard bounds, with overflow counted rather than stored.
"""

import json
import logging

import pytest

from repro.experiments.report import render_heatmap, render_histogram
from repro.experiments.runner import QUICK_ACCESSES, RunSpec, run_spec, run_specs
from repro.noc import Network, NocConfig
from repro.noc.flit import Packet, PacketType
from repro.sim.kernel import SimKernel
from repro.telemetry import (
    PacketTracer,
    TimeSeriesSampler,
    profile_from_kernel,
    merge_profiles,
    render_profile,
    summarize_trace,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
    write_profile,
)
from repro.telemetry.check import main as check_main
from repro.telemetry.check import summarize, validate_chrome_trace
from repro.telemetry.export import (
    latency_histogram,
    lost_packets,
    node_hop_counts,
    packet_spans,
)
from repro.telemetry.log import (
    ensure_level,
    get_logger,
    level_from_env,
    reset_for_tests,
)

LINE = bytes(range(64))


def data_packet(src=0, dst=15, line=LINE):
    return Packet(
        PacketType.RESPONSE, src, dst, line=line,
        compressible=True, decompress_at_dst=False,
    )


def traced_network(**overrides):
    overrides.setdefault("trace_packets", True)
    network = Network(NocConfig(**overrides))
    delivered = []
    network.set_delivery_handler(lambda node, p: delivered.append(p))
    return network, delivered


def run_traffic(network, n_packets=24):
    n = network.config.n_nodes
    for i in range(n_packets):
        network.send(data_packet(src=(i * 3) % n, dst=(i * 7 + 1) % n))
    network.run_until_quiescent(max_cycles=100_000)


# -- tracer ------------------------------------------------------------------
class TestPacketTracer:
    def test_rate_one_packet_spans_equal_ejections(self):
        network, delivered = traced_network()
        run_traffic(network)
        assert delivered
        spans = packet_spans(network.tracer.events)
        assert len(spans) == network.stats.packets_ejected
        assert not lost_packets(network.tracer.events)
        for span in spans:
            assert span["end"] >= span["start"]
            assert span["latency"] == span["end"] - span["start"]

    def test_sampling_rate_selects_every_nth_injection(self):
        tracer = PacketTracer(sample_interval=3)
        packets = [data_packet() for _ in range(9)]
        for packet in packets:
            tracer.on_inject(0, packet, packet.src)
        traced = [p for p in packets if tracer.wants(p.pid)]
        assert len(traced) == 3  # injections 0, 3, 6
        assert tracer.stats.packets_traced == 3
        assert len(tracer.events) == 3  # only sampled injects recorded

    def test_sampled_network_traces_subset_with_full_lifecycles(self):
        network, _ = traced_network(trace_sample_interval=4)
        run_traffic(network, n_packets=24)
        tracer = network.tracer
        assert tracer.stats.packets_traced == 6
        spans = packet_spans(tracer.events)
        # Every traced packet's lifecycle closes with an eject.
        assert len(spans) == tracer.stats.packets_traced
        assert not lost_packets(tracer.events)

    def test_retransmission_clone_inherits_sampling_decision(self):
        tracer = PacketTracer(sample_interval=2)
        first, second = data_packet(), data_packet()
        tracer.on_inject(0, first, 0)   # injection 0 -> traced
        tracer.on_inject(0, second, 0)  # injection 1 -> skipped
        assert tracer.wants(first.pid) and not tracer.wants(second.pid)
        # A retransmitted clone shares the pid; re-injecting it neither
        # flips the decision nor burns another sampling slot.
        tracer.on_inject(10, first, 0)
        tracer.on_inject(10, second, 0)
        assert tracer.wants(first.pid) and not tracer.wants(second.pid)
        assert tracer.stats.packets_traced == 1

    def test_event_cap_drops_and_counts_overflow(self):
        tracer = PacketTracer(event_cap=5)
        packet = data_packet()
        tracer.on_inject(0, packet, 0)
        for cycle in range(10):
            tracer.on_hop(cycle, packet, 0, 0, 0)
        assert len(tracer.events) == 5
        assert tracer.truncated
        assert tracer.dropped == 6
        assert tracer.stats.trace_events_dropped == 6
        assert tracer.stats.trace_events == 5

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            PacketTracer(sample_interval=0)
        with pytest.raises(ValueError):
            PacketTracer(event_cap=0)
        with pytest.raises(ValueError):
            NocConfig(trace_sample_interval=0)
        with pytest.raises(ValueError):
            NocConfig(stats_interval=-1)


# -- sampler -----------------------------------------------------------------
class TestTimeSeriesSampler:
    def make(self, interval=4, capacity=3):
        kernel = SimKernel()
        counters = {"ticks": 0}
        kernel.stats.register("fake", lambda: dict(counters))
        sampler = TimeSeriesSampler(kernel, interval, capacity=capacity)
        return kernel, counters, sampler

    def test_windows_hold_deltas_not_totals(self):
        kernel, counters, sampler = self.make()
        for cycle in range(1, 13):
            counters["ticks"] += 2
            sampler.tick(cycle)
        windows = sampler.windows()
        assert [w.end_cycle for w in windows] == [4, 8, 12]
        assert all(w.delta["fake"]["ticks"] == 8 for w in windows)
        assert sampler.series("ticks") == [(4, 8), (8, 8), (12, 8)]
        assert sampler.series("ticks", per_cycle=True) == [
            (4, 2.0), (8, 2.0), (12, 2.0),
        ]

    def test_ring_buffer_evicts_oldest_and_counts(self):
        kernel, counters, sampler = self.make(interval=1, capacity=3)
        for cycle in range(1, 8):
            sampler.tick(cycle)
        windows = sampler.windows()
        assert len(windows) == 3
        assert [w.index for w in windows] == [4, 5, 6]  # monotonic survives
        assert sampler.stats.windows_evicted == 4
        assert sampler.stats.windows_sampled == 7

    def test_gauges_sampled_at_boundaries(self):
        kernel, counters, sampler = self.make(interval=2)
        reading = {"value": 0.0}
        sampler.add_gauge("occupancy", lambda: reading["value"])
        with pytest.raises(ValueError):
            sampler.add_gauge("occupancy", lambda: 0.0)
        for cycle in range(1, 7):
            reading["value"] = float(cycle)
            sampler.tick(cycle)
        assert sampler.gauge_series("occupancy") == [
            (2, 2.0), (4, 4.0), (6, 6.0),
        ]

    def test_validation(self):
        kernel = SimKernel()
        with pytest.raises(ValueError):
            TimeSeriesSampler(kernel, 0)
        with pytest.raises(ValueError):
            TimeSeriesSampler(kernel, 1, capacity=0)


# -- off-invariance ----------------------------------------------------------
class TestTelemetryOffInvariance:
    def test_telemetry_changes_only_the_telemetry_group(self):
        base_spec = RunSpec(
            scheme="disco", workload="blackscholes",
            accesses_per_core=QUICK_ACCESSES,
        )
        telemetry_spec = RunSpec(
            scheme="disco", workload="blackscholes",
            accesses_per_core=QUICK_ACCESSES,
            stats_interval=64, trace_packets=True,
        )
        off = run_spec(base_spec)
        on = run_spec(telemetry_spec)
        assert off.cycles == on.cycles
        assert off.avg_miss_latency == on.avg_miss_latency
        off_groups = off.snapshot_full.to_dict()
        on_groups = on.snapshot_full.to_dict()
        assert "telemetry" not in off_groups
        assert "kernel" not in off_groups
        assert on_groups.pop("telemetry")["trace_events"] > 0
        # The kernel idle-efficiency group rides the telemetry gate; its
        # counters are scheduler-dependent, not simulation-dependent.
        kernel_group = on_groups.pop("kernel")
        # stepped cycles <= simulated cycles (fast-forward jumps the clock)
        assert 0 < kernel_group["cycles_total"] <= on.cycles
        assert kernel_group["component_wakes"] > 0
        assert on_groups == off_groups
        assert off.telemetry is None
        assert on.telemetry is not None
        assert on.telemetry["windows"]
        assert on.telemetry["trace"]["events"]

    def test_network_off_registers_nothing(self):
        network = Network(NocConfig())
        assert network.tracer is None and network.sampler is None
        assert "telemetry" not in network.kernel.stats.groups()
        assert "telemetry.sample" not in network.kernel.phases()


# -- exporters ---------------------------------------------------------------
class TestExporters:
    @pytest.fixture(scope="class")
    def traced(self):
        network, delivered = traced_network(stats_interval=16)
        run_traffic(network)
        return network

    def test_chrome_trace_is_schema_valid(self, traced):
        trace = to_chrome_trace(traced.tracer.events)
        assert validate_chrome_trace(trace) == []
        summary = summarize(trace)
        assert summary["packet_spans"] == traced.stats.packets_ejected
        assert summary["by_cat"]["hop"] > 0

    def test_check_module_cli_roundtrip(self, traced, tmp_path, capsys):
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), traced.tracer.events)
        assert check_main([str(path)]) == 0
        assert "OK" in capsys.readouterr().out
        path.write_text('{"traceEvents": [{"ph": "X", "pid": 1}]}')
        assert check_main([str(path)]) == 1
        assert check_main([]) == 2

    def test_validator_rejects_malformed_events(self):
        assert validate_chrome_trace({"traceEvents": []})
        bad_span = {"traceEvents": [
            {"ph": "X", "pid": 1, "tid": 1, "name": "x", "ts": 0, "dur": 0},
        ]}
        assert any("dur" in e for e in validate_chrome_trace(bad_span))
        bad_meta = {"traceEvents": [
            {"ph": "M", "pid": 1, "name": "nope", "args": {"name": "x"}},
        ]}
        assert any("metadata" in e for e in validate_chrome_trace(bad_meta))

    def test_jsonl_streams_every_event(self, traced, tmp_path):
        path = tmp_path / "trace.jsonl"
        count = write_jsonl(str(path), traced.tracer.events)
        lines = path.read_text().splitlines()
        assert count == len(lines) == len(traced.tracer.events)
        first = json.loads(lines[0])
        assert first["kind"] == "inject"
        assert set(first) == {"cycle", "kind", "pid", "node", "info"}

    def test_summary_heatmap_and_histogram(self, traced):
        events = traced.tracer.events
        summary = summarize_trace(events)
        assert summary["packet_spans"] == traced.stats.packets_ejected
        assert summary["mean_latency"] > 0
        counts = node_hop_counts(events)
        heatmap = render_heatmap(counts, 4, 4, title="hops")
        assert heatmap.startswith("hops\n")
        assert f"(total {sum(counts.values())}" in heatmap
        rows = latency_histogram(events)
        assert sum(count for _, count in rows) == len(packet_spans(events))
        histogram = render_histogram(rows, title="latency")
        assert "#" in histogram and "latency" in histogram

    def test_heatmap_validation(self):
        with pytest.raises(ValueError):
            render_heatmap({}, 0, 4)


# -- profiler ----------------------------------------------------------------
class TestRunProfiler:
    def test_profile_ranks_components_by_wall_clock(self):
        network, _ = traced_network(trace_packets=False)
        network.kernel.enable_timing(per_component=True)
        run_traffic(network)
        profile = profile_from_kernel(network.kernel, wall_seconds=1.0)
        top = profile.top_components()
        assert top
        seconds = [row["seconds"] for row in top]
        assert seconds == sorted(seconds, reverse=True)
        assert any(row["component"] == "Router" for row in top)
        assert abs(sum(row["share"] for row in top) - 1.0) < 1e-6
        text = render_profile(profile)
        assert "Router" in text

    def test_merge_and_write(self, tmp_path):
        kernel = SimKernel()
        kernel.component_seconds[("p", "A")] = 0.25
        kernel.component_ticks[("p", "A")] = 5
        kernel.phase_seconds["p"] = 0.25
        kernel.phase_ticks["p"] = 5
        one = profile_from_kernel(kernel, wall_seconds=0.5, cycles=10)
        merged = merge_profiles([one, one])
        assert merged.runs == 2
        assert merged.cycles == 20
        assert merged.component_seconds[("p", "A")] == 0.5
        assert merge_profiles([]) is None
        path = tmp_path / "profile.json"
        payload = write_profile(str(path), merged)
        on_disk = json.loads(path.read_text())
        assert on_disk == payload
        assert on_disk["runs"] == 2
        assert on_disk["top_components"][0]["component"] == "A"

    def test_runner_emits_profile_json(self, tmp_path):
        spec = RunSpec(
            scheme="baseline", workload="blackscholes",
            accesses_per_core=QUICK_ACCESSES, profile_run=True,
        )
        out = tmp_path / "profile.json"
        results = run_specs([spec], profile_out=str(out))
        result = results[spec]
        assert result.profile is not None
        assert result.profile.runs == 1
        payload = json.loads(out.read_text())
        assert payload["top_components"]
        assert payload["wall_seconds"] >= 0

    def test_unprofiled_run_carries_no_profile(self):
        spec = RunSpec(
            scheme="baseline", workload="blackscholes",
            accesses_per_core=QUICK_ACCESSES,
        )
        assert run_spec(spec).profile is None


# -- kernel describe ---------------------------------------------------------
class TestDescribe:
    def test_describe_reports_telemetry_state(self):
        network, _ = traced_network(stats_interval=8)
        text = network.kernel.describe()
        assert "telemetry.sampler: every 8 cycles" in text
        assert "telemetry.tracer: 1/1 packets" in text
        assert "telemetry.sample: 1 components" in text
        assert "timing=off" in text
        network.kernel.enable_timing(per_component=True)
        assert "timing=on (per-component)" in network.kernel.describe()

    def test_busy_components_order_is_deterministic(self):
        network, _ = traced_network(stats_interval=8)
        network.send(data_packet())
        first = network.kernel.busy_components()
        second = network.kernel.busy_components()
        assert first == second
        phases = [phase for phase, _ in first]
        order = list(network.kernel.phases())
        active = [p for p in phases if p in order]
        assert active == sorted(active, key=order.index)


# -- logger ------------------------------------------------------------------
class TestLogger:
    @pytest.fixture(autouse=True)
    def clean_logging(self):
        reset_for_tests()
        yield
        reset_for_tests()

    def test_level_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG_LEVEL", raising=False)
        assert level_from_env() == logging.WARNING
        monkeypatch.setenv("REPRO_LOG_LEVEL", "debug")
        assert level_from_env() == logging.DEBUG
        monkeypatch.setenv("REPRO_LOG_LEVEL", "15")
        assert level_from_env() == 15
        monkeypatch.setenv("REPRO_LOG_LEVEL", "bogus")
        assert level_from_env() == logging.WARNING

    def test_logger_tree_and_format(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "INFO")
        logger = get_logger("repro.runner")
        logger.info("[abc123] running")
        err = capsys.readouterr().err
        assert "repro.runner INFO corr=- [abc123] running" in err

    def test_ensure_level_only_lowers(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "DEBUG")
        root = get_logger()
        ensure_level(logging.INFO)
        assert root.level == logging.DEBUG  # explicit DEBUG survives
        monkeypatch.setenv("REPRO_LOG_LEVEL", "ERROR")
        reset_for_tests()
        root = get_logger()
        ensure_level(logging.INFO)
        assert root.level == logging.INFO
