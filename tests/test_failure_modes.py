"""Failure-injection and defensive-path tests.

These verify the simulator *fails loudly* on impossible states rather than
silently corrupting results — the property that made the protocol races of
DESIGN.md findable in the first place.
"""

import pytest

from repro.compression import CompressedLine, get_algorithm
from repro.cmp import CmpSystem, SystemConfig, make_scheme
from repro.cmp.messages import Message, MessageKind
from repro.noc import Network, NocConfig
from repro.noc.flit import Packet, PacketType
from repro.workloads import generate_traces, get_profile


class TestCompressionFailures:
    def test_truncated_sc2_bitstream_detected(self):
        algo = get_algorithm("sc2", cached=False)
        compressed = algo.compress(b"\x00" * 64)
        assert compressed.compressible
        generation, value, bits = compressed.payload
        corrupted = CompressedLine(
            algorithm="sc2",
            original_size_bits=512,
            size_bits=compressed.size_bits,
            payload=(generation, value, max(1, bits // 4)),
            compressible=True,
        )
        with pytest.raises(ValueError):
            algo.decompress(corrupted)

    def test_cross_algorithm_decompress_rejected(self):
        delta = get_algorithm("delta", cached=False)
        fpc = get_algorithm("fpc", cached=False)
        compressed = delta.compress(b"\x07" * 64)
        with pytest.raises(ValueError):
            fpc.decompress(compressed)


class TestNetworkFailures:
    def test_undrainable_network_raises(self):
        """A packet that can never eject trips the drain watchdog."""
        network = Network(NocConfig())
        network.set_delivery_handler(lambda n, p: None)
        network.send(Packet(PacketType.REQUEST, 0, 15))
        # Sabotage: revoke ejection bandwidth forever.
        network.can_eject = lambda node: False
        with pytest.raises(RuntimeError) as excinfo:
            network.run_until_quiescent(max_cycles=2000)
        # The exception alone must triage the wedge: which router, which
        # VC, which packet, how far it got, and what's still on the wire.
        message = str(excinfo.value)
        assert "wedge snapshot" in message
        assert "link flits in flight" in message
        assert "router 15" in message  # the stuck packet's current hop
        assert "REQUEST(0->15" in message  # the held packet and its route
        assert "0/1 sent" in message  # per-VC send progress
        assert "state=" in message  # pipeline stage of the stuck VC

    def test_watchdog_catches_stuck_simulation(self):
        config = SystemConfig.scaled_4x4()
        traces = generate_traces(get_profile("swaptions"), 16, 50, seed=1)
        system = CmpSystem(config, make_scheme("baseline"), traces)
        # Sabotage: drop every packet instead of delivering it.
        system.network.set_delivery_handler(lambda n, p: None)
        with pytest.raises(RuntimeError) as excinfo:
            system.run(max_cycles=500_000, stall_limit=20_000)
        # The CMP watchdog attaches both views: per-router VC state from
        # the network plus the protocol-level in-flight accounting.
        message = str(excinfo.value)
        assert "simulation wedged" in message
        assert "wedge snapshot" in message
        assert "cores unfinished" in message
        assert "misses in flight" in message
        assert "bank transactions pending" in message


class TestBankDefenses:
    def build_system(self):
        config = SystemConfig.scaled_4x4()
        traces = generate_traces(get_profile("swaptions"), 16, 20, seed=1)
        return CmpSystem(config, make_scheme("baseline"), traces,
                         prefill=False)

    def test_unexpected_inv_ack_raises(self):
        system = self.build_system()
        bank = system.banks[0]
        with pytest.raises(RuntimeError):
            bank._inv_ack(
                Message(kind=MessageKind.INV_ACK, addr=0, src=1, dst=0)
            )

    def test_unexpected_recall_reply_raises(self):
        system = self.build_system()
        bank = system.banks[0]
        with pytest.raises(RuntimeError):
            bank._recall_reply(
                Message(kind=MessageKind.RECALL_NACK, addr=0, src=1, dst=0),
                None,
            )

    def test_unexpected_mem_data_raises(self):
        system = self.build_system()
        bank = system.banks[0]
        with pytest.raises(RuntimeError):
            bank._mem_data(
                Message(kind=MessageKind.MEM_DATA, addr=0, src=0, dst=0,
                        data=b"\x00" * 64),
                None,
            )

    def test_dram_rejects_compressed_line(self):
        system = self.build_system()
        algo = get_algorithm("delta")
        line = b"\x01" * 64
        packet = Packet(
            PacketType.RESPONSE, 0, 0, line=line,
            compressed=algo.compress(line), is_compressed=True,
        )
        msg = Message(kind=MessageKind.MEM_WB, addr=0, src=0, dst=0,
                      data=line)
        with pytest.raises(RuntimeError):
            system._memory_request(msg, packet)


class TestEngineDefenses:
    def test_double_start_rejected(self):
        from repro.core import DiscoConfig, make_disco_router_factory
        from repro.core.engine import JOB_COMPRESS

        network = Network(
            NocConfig(),
            router_factory=make_disco_router_factory(DiscoConfig()),
        )
        router = network.routers[0]
        vc = router.inputs[2][1]
        packet = Packet(PacketType.RESPONSE, 0, 3, line=b"\x05" * 64,
                        compressible=True)
        vc.packet = packet
        vc.flits_received = 4
        vc.flits_present = 4
        vc.out_port = 1
        router.engine.start(vc, JOB_COMPRESS, cycle=0)
        with pytest.raises(RuntimeError):
            router.engine.start(vc, JOB_COMPRESS, cycle=0)
