"""Tests for the experiment harness (runner, report, table/figure modules).

The figure functions run here with tiny traces — the point is exercising
the machinery (memoization, normalization, rendering), not figure quality;
the benchmarks run the calibrated sizes.
"""

import pytest

from repro.experiments import RunSpec, clear_cache, format_table, normalize, run_spec
from repro.experiments.report import geomean
from repro.experiments.runner import run_matrix
from repro.experiments.table1 import measure_ratio, render as render_t1, table1
from repro.experiments.table2 import render as render_t2, table2_rows, verify_table2

TINY = dict(accesses_per_core=120)


@pytest.fixture(autouse=True)
def isolated_cache():
    clear_cache()
    yield
    clear_cache()


class TestReport:
    def test_normalize(self):
        out = normalize({"a": 2.0, "b": 4.0}, "a")
        assert out == {"a": 1.0, "b": 2.0}
        with pytest.raises(ZeroDivisionError):
            normalize({"a": 0.0}, "a")

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, -2.0])

    def test_format_table(self):
        text = format_table(["x", "value"], [["a", 1.23456]], title="T")
        assert "T" in text
        assert "1.235" in text
        assert "value" in text


class TestRunner:
    def test_memoization(self):
        spec = RunSpec(scheme="baseline", workload="swaptions", **TINY)
        first = run_spec(spec)
        second = run_spec(spec)
        assert first is second

    def test_distinct_specs_not_shared(self):
        a = run_spec(RunSpec(scheme="baseline", workload="swaptions", **TINY))
        b = run_spec(RunSpec(scheme="cc", workload="swaptions", **TINY))
        assert a is not b
        assert a.scheme == "baseline" and b.scheme == "cc"

    def test_run_matrix_shape(self):
        results = run_matrix(
            ["baseline"], ["swaptions", "blackscholes"], **TINY
        )
        assert set(results) == {"baseline"}
        assert set(results["baseline"]) == {"swaptions", "blackscholes"}

    def test_sc2_training_applied(self):
        spec = RunSpec(
            scheme="cc", workload="swaptions", algorithm="sc2", **TINY
        )
        result = run_spec(spec)
        assert result.algorithm == "sc2"
        assert result.cycles > 0


class TestTable1:
    def test_measure_ratio_positive(self):
        ratio = measure_ratio("delta", lines_per_profile=20)
        assert 1.2 < ratio < 2.5

    def test_table1_rows_and_render(self):
        rows = table1(algorithms=("delta", "fpc"), lines_per_profile=15)
        assert [r.algorithm for r in rows] == ["delta", "fpc"]
        text = render_t1(rows)
        assert "delta" in text and "ratio" in text


class TestTable2:
    def test_render_contains_parameters(self):
        text = render_t2()
        assert "4x4 mesh" in text
        assert "wormhole" in text
        assert "4MB" in text

    def test_verify_passes_on_defaults(self):
        assert verify_table2() == []

    def test_rows_structure(self):
        rows = table2_rows()
        assert len(rows) == 7
        assert rows[0][0] == "Processor core"


class TestFigureSmokes:
    def test_fig5_tiny(self):
        from repro.experiments.fig5 import fig5, render

        result = fig5(workloads=("swaptions",), accesses_per_core=120,
                      schemes=("cc", "disco"))
        assert set(result.normalized["swaptions"]) == {"ideal", "cc", "disco"}
        assert result.average["ideal"] == pytest.approx(1.0)
        text = render(result)
        assert "DISCO vs CC" in text

    def test_fig7_tiny_shares_runs_with_fig5(self):
        from repro.experiments import runner
        from repro.experiments.fig5 import fig5
        from repro.experiments.fig7 import fig7

        fig5(workloads=("swaptions",), accesses_per_core=120)
        cached_before = len(runner._CACHE)
        fig7(workloads=("swaptions",), accesses_per_core=120)
        # fig7 adds no new simulations beyond what fig5 already ran.
        assert len(runner._CACHE) == cached_before

    def test_fig8_tiny(self):
        from repro.experiments.fig8 import fig8, render

        result = fig8(workloads=("swaptions",), meshes=((2, 2),),
                      accesses_per_core=120)
        assert (2, 2) in result.average
        assert "2x2" in render(result)

    def test_overhead_render(self):
        from repro.experiments.overhead import overhead, render

        report = overhead()
        text = render(report)
        assert "17.2%" in text  # the paper reference is printed alongside
