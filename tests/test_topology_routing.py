"""Mesh topology and XY routing tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.routing import xy_hops, xy_route
from repro.noc.topology import (
    Mesh,
    OPPOSITE,
    PORT_EAST,
    PORT_LOCAL,
    PORT_NORTH,
    PORT_SOUTH,
    PORT_WEST,
)


class TestMesh:
    def test_coords_roundtrip(self):
        mesh = Mesh(4, 4)
        for node in range(16):
            x, y = mesh.coords(node)
            assert mesh.node_at(x, y) == node

    def test_neighbors_4x4(self):
        mesh = Mesh(4, 4)
        assert mesh.neighbor[0][PORT_EAST] == 1
        assert mesh.neighbor[0][PORT_WEST] is None
        assert mesh.neighbor[0][PORT_SOUTH] == 4
        assert mesh.neighbor[0][PORT_NORTH] is None
        assert mesh.neighbor[5][PORT_EAST] == 6
        assert mesh.neighbor[5][PORT_NORTH] == 1

    def test_neighbor_symmetry(self):
        mesh = Mesh(3, 5)
        for node in range(mesh.n_nodes):
            for port, nbr in mesh.neighbor[node].items():
                if nbr is not None:
                    assert mesh.neighbor[nbr][OPPOSITE[port]] == node

    def test_links_count(self):
        mesh = Mesh(4, 4)
        # 2 directed links per internal edge: 2*(3*4)*2 meshes of edges
        assert len(mesh.links()) == 2 * (3 * 4 + 4 * 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            Mesh(0, 4)
        with pytest.raises(ValueError):
            Mesh(4, 4).coords(16)


class TestXYRouting:
    def test_local_at_destination(self):
        mesh = Mesh(4, 4)
        for node in range(16):
            assert xy_route(mesh, node, node) == PORT_LOCAL

    def test_x_first(self):
        mesh = Mesh(4, 4)
        # node 0 (0,0) -> node 15 (3,3): go east first
        assert xy_route(mesh, 0, 15) == PORT_EAST
        # same column: go south
        assert xy_route(mesh, 0, 12) == PORT_SOUTH
        assert xy_route(mesh, 12, 0) == PORT_NORTH
        assert xy_route(mesh, 3, 0) == PORT_WEST

    @given(
        src=st.integers(0, 63),
        dst=st.integers(0, 63),
    )
    @settings(max_examples=200, deadline=None)
    def test_route_always_converges(self, src, dst):
        mesh = Mesh(8, 8)
        current = src
        steps = 0
        while current != dst:
            port = xy_route(mesh, current, dst)
            assert port != PORT_LOCAL
            current = mesh.neighbor[current][port]
            assert current is not None
            steps += 1
            assert steps <= 14
        assert steps == xy_hops(mesh, src, dst)

    def test_hops(self):
        mesh = Mesh(4, 4)
        assert xy_hops(mesh, 0, 15) == 6
        assert xy_hops(mesh, 5, 5) == 0
        assert xy_hops(mesh, 0, 3) == 3
