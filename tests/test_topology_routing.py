"""Topology and routing tests: mesh/torus/ring/cmesh + the registry."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.routing import (
    DEFAULT_ROUTING,
    ROUTING_REGISTRY,
    resolve_routing,
    xy_hops,
    xy_route,
)
from repro.noc.topology import (
    ConcentratedMesh2D,
    Mesh,
    OPPOSITE,
    PORT_EAST,
    PORT_LOCAL,
    PORT_NORTH,
    PORT_SOUTH,
    PORT_WEST,
    RING_CCW,
    RING_CW,
    Ring,
    Torus2D,
    build_topology,
    fabric_n_nodes,
)


class TestMesh:
    def test_coords_roundtrip(self):
        mesh = Mesh(4, 4)
        for node in range(16):
            x, y = mesh.coords(node)
            assert mesh.node_at(x, y) == node

    def test_neighbors_4x4(self):
        mesh = Mesh(4, 4)
        assert mesh.neighbor[0][PORT_EAST] == 1
        assert mesh.neighbor[0][PORT_WEST] is None
        assert mesh.neighbor[0][PORT_SOUTH] == 4
        assert mesh.neighbor[0][PORT_NORTH] is None
        assert mesh.neighbor[5][PORT_EAST] == 6
        assert mesh.neighbor[5][PORT_NORTH] == 1

    def test_neighbor_symmetry(self):
        mesh = Mesh(3, 5)
        for node in range(mesh.n_nodes):
            for port, nbr in mesh.neighbor[node].items():
                if nbr is not None:
                    assert mesh.neighbor[nbr][OPPOSITE[port]] == node

    def test_links_count(self):
        mesh = Mesh(4, 4)
        # 2 directed links per internal edge: 2*(3*4)*2 meshes of edges
        assert len(mesh.links()) == 2 * (3 * 4 + 4 * 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            Mesh(0, 4)
        with pytest.raises(ValueError):
            Mesh(4, 4).coords(16)


class TestXYRouting:
    def test_local_at_destination(self):
        mesh = Mesh(4, 4)
        for node in range(16):
            assert xy_route(mesh, node, node) == PORT_LOCAL

    def test_x_first(self):
        mesh = Mesh(4, 4)
        # node 0 (0,0) -> node 15 (3,3): go east first
        assert xy_route(mesh, 0, 15) == PORT_EAST
        # same column: go south
        assert xy_route(mesh, 0, 12) == PORT_SOUTH
        assert xy_route(mesh, 12, 0) == PORT_NORTH
        assert xy_route(mesh, 3, 0) == PORT_WEST

    @given(
        src=st.integers(0, 63),
        dst=st.integers(0, 63),
    )
    @settings(max_examples=200, deadline=None)
    def test_route_always_converges(self, src, dst):
        mesh = Mesh(8, 8)
        current = src
        steps = 0
        while current != dst:
            port = xy_route(mesh, current, dst)
            assert port != PORT_LOCAL
            current = mesh.neighbor[current][port]
            assert current is not None
            steps += 1
            assert steps <= 14
        assert steps == xy_hops(mesh, src, dst)

    def test_hops(self):
        mesh = Mesh(4, 4)
        assert xy_hops(mesh, 0, 15) == 6
        assert xy_hops(mesh, 5, 5) == 0
        assert xy_hops(mesh, 0, 3) == 3


def walk_route(topology, route_fn, src, dst):
    """Follow a route function link by link; returns (hops, classes)."""
    current, hops, classes = src, 0, []
    while current != dst:
        port, vc_class = route_fn(topology, current, dst)
        assert port != PORT_LOCAL
        classes.append(vc_class)
        nbr = topology.neighbor[current].get(port)
        assert nbr is not None, f"route exited the fabric at {current}"
        current = nbr
        hops += 1
        assert hops <= topology.n_nodes * 2, "route is cycling"
    port, vc_class = route_fn(topology, dst, dst)
    assert port == PORT_LOCAL and vc_class is None
    return hops, classes


ALL_FABRICS = (
    build_topology("mesh", 4, 4),
    build_topology("torus", 4, 4),
    build_topology("ring", 4, 2),
    build_topology("cmesh", 2, 2, 4),
)


class TestTopologyProtocol:
    @pytest.mark.parametrize("topology", ALL_FABRICS, ids=lambda t: t.name)
    def test_adjacency_is_symmetric(self, topology):
        # Every directed link (node, port) -> nbr lands on a port whose
        # own link points straight back.
        for node in range(topology.n_nodes):
            for port, nbr in topology.neighbor[node].items():
                if nbr is None:
                    continue
                back = topology.neighbor_port(node, port)
                assert topology.neighbor[nbr][back] == node

    @pytest.mark.parametrize("topology", ALL_FABRICS, ids=lambda t: t.name)
    def test_radix_covers_every_link_port(self, topology):
        for node in range(topology.n_nodes):
            radix = topology.radix(node)
            assert radix >= 2  # local + at least one link
            for port in topology.neighbor[node]:
                assert 1 <= port < radix
            assert PORT_LOCAL not in topology.neighbor[node]

    @pytest.mark.parametrize("topology", ALL_FABRICS, ids=lambda t: t.name)
    def test_hop_distance_is_a_metric(self, topology):
        n = topology.n_nodes
        for src in range(n):
            assert topology.hop_distance(src, src) == 0
            for dst in range(n):
                d = topology.hop_distance(src, dst)
                assert d == topology.hop_distance(dst, src)
                assert (d == 0) == (src == dst)

    def test_factory_matches_n_nodes(self):
        for name, args in (
            ("mesh", (4, 4)), ("torus", (3, 5)),
            ("ring", (4, 4)), ("cmesh", (2, 3)),
        ):
            assert build_topology(name, *args).n_nodes == fabric_n_nodes(
                name, *args
            )
        with pytest.raises(ValueError):
            build_topology("hypercube", 4, 4)
        with pytest.raises(ValueError):
            fabric_n_nodes("hypercube", 4, 4)


class TestTorus:
    def test_wrap_neighbors(self):
        torus = Torus2D(4, 4)
        assert torus.neighbor[0][PORT_WEST] == 3  # x wraps
        assert torus.neighbor[3][PORT_EAST] == 0
        assert torus.neighbor[0][PORT_NORTH] == 12  # y wraps
        assert torus.neighbor[12][PORT_SOUTH] == 0

    def test_wrap_hop_distance(self):
        torus = Torus2D(4, 4)
        assert torus.hop_distance(0, 3) == 1  # around the wrap
        assert torus.hop_distance(0, 15) == 2  # (-1, -1)
        assert torus.hop_distance(0, 5) == 2

    def test_dimensions_validated(self):
        with pytest.raises(ValueError):
            Torus2D(1, 4)

    @given(src=st.integers(0, 24), dst=st.integers(0, 24))
    @settings(max_examples=200, deadline=None)
    def test_route_walk_is_minimal(self, src, dst):
        torus = Torus2D(5, 5)
        fn = ROUTING_REGISTRY["dor_dateline"].fn
        hops, classes = walk_route(torus, fn, src, dst)
        assert hops == torus.hop_distance(src, dst)
        # Every inter-router step carries a dateline class.
        assert all(c in (0, 1) for c in classes)

    @given(src=st.integers(0, 24), dst=st.integers(0, 24))
    @settings(max_examples=200, deadline=None)
    def test_dateline_class_drops_exactly_at_the_wrap(self, src, dst):
        # Within one dimension's traversal: class 1 strictly before the
        # wrap crossing, class 0 strictly after, never 0 -> 1.  Class 0
        # therefore never occupies a wrap link and a class-1 chain ends at
        # the wrap — both dependency graphs stay acyclic.
        torus = Torus2D(5, 5)
        fn = ROUTING_REGISTRY["dor_dateline"].fn
        current, prev_port, prev_class = src, None, None
        while current != dst:
            port, vc_class = fn(torus, current, dst)
            if port == prev_port:
                assert (prev_class, vc_class) != (0, 1)
            prev_port, prev_class = port, vc_class
            current = torus.neighbor[current][port]

    def test_class_zero_never_uses_a_wrap_link(self):
        torus = Torus2D(5, 5)
        fn = ROUTING_REGISTRY["dor_dateline"].fn
        for src in range(25):
            for dst in range(25):
                current = src
                while current != dst:
                    port, vc_class = fn(torus, current, dst)
                    nbr = torus.neighbor[current][port]
                    cx, cy = torus.coords(current)
                    nx, ny = torus.coords(nbr)
                    wrap = abs(cx - nx) > 1 or abs(cy - ny) > 1
                    if wrap:
                        assert vc_class == 1
                    current = nbr


class TestRing:
    def test_adjacency(self):
        ring = Ring(6)
        assert ring.neighbor[5][RING_CW] == 0
        assert ring.neighbor[0][RING_CCW] == 5
        assert ring.neighbor_port(0, RING_CW) == RING_CCW
        assert ring.neighbor_port(0, RING_CCW) == RING_CW
        assert ring.radix(0) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            Ring(1)

    @given(src=st.integers(0, 15), dst=st.integers(0, 15))
    @settings(max_examples=200, deadline=None)
    def test_route_walk_is_minimal(self, src, dst):
        ring = Ring(16)
        fn = ROUTING_REGISTRY["ring_dateline"].fn
        hops, classes = walk_route(ring, fn, src, dst)
        assert hops == ring.hop_distance(src, dst)
        assert all(c in (0, 1) for c in classes)

    def test_direction_is_minimal_and_tie_breaks_clockwise(self):
        ring = Ring(8)
        fn = ROUTING_REGISTRY["ring_dateline"].fn
        assert fn(ring, 0, 2)[0] == RING_CW
        assert fn(ring, 0, 6)[0] == RING_CCW
        assert fn(ring, 0, 4)[0] == RING_CW  # tie -> clockwise

    def test_dateline_class_set_after_wrap(self):
        ring = Ring(8)
        fn = ROUTING_REGISTRY["ring_dateline"].fn
        # 6 -> 1 clockwise: before the wrap (current 6,7 > dst) class 1,
        # after the wrap (current 0 < dst) class 0.
        assert fn(ring, 6, 1) == (RING_CW, 1)
        assert fn(ring, 7, 1) == (RING_CW, 1)
        assert fn(ring, 0, 1) == (RING_CW, 0)


class TestConcentratedMesh:
    def test_structure(self):
        cmesh = ConcentratedMesh2D(2, 2, concentration=4)
        assert cmesh.n_nodes == 16
        assert cmesh.is_hub(0) and cmesh.is_hub(4)
        assert not cmesh.is_hub(1)
        assert cmesh.hub_of(6) == 4
        assert cmesh.radix(0) == 5 + 3  # mesh ports + 3 star links
        assert cmesh.radix(1) == 2  # local + uplink
        assert cmesh.neighbor[1][1] == 0  # leaf uplink
        assert cmesh.neighbor[0][cmesh.star_port(1)] == 1
        assert cmesh.neighbor[0][PORT_EAST] == 4  # hub-to-hub mesh link

    def test_validation(self):
        with pytest.raises(ValueError):
            ConcentratedMesh2D(2, 2, concentration=0)
        with pytest.raises(ValueError):
            ConcentratedMesh2D(2, 2).star_port(4)  # a hub, not a leaf

    @given(src=st.integers(0, 15), dst=st.integers(0, 15))
    @settings(max_examples=200, deadline=None)
    def test_route_walk_is_minimal(self, src, dst):
        cmesh = ConcentratedMesh2D(2, 2, concentration=4)
        fn = ROUTING_REGISTRY["cmesh_xy"].fn
        hops, classes = walk_route(cmesh, fn, src, dst)
        assert hops == cmesh.hop_distance(src, dst)
        assert all(c is None for c in classes)  # tree + XY needs no classes

    def test_corner_nodes_are_hubs(self):
        cmesh = ConcentratedMesh2D(4, 4, concentration=4)
        for node in cmesh.corner_nodes():
            assert cmesh.is_hub(node)


class TestRoutingRegistry:
    def test_every_topology_has_a_default(self):
        for name in ("mesh", "torus", "ring", "cmesh"):
            algorithm = resolve_routing(name)
            assert algorithm.name == DEFAULT_ROUTING[name]
            assert name in algorithm.topologies

    def test_unknown_routing_rejected(self):
        with pytest.raises(ValueError, match="unknown routing"):
            resolve_routing("mesh", "spiral")

    def test_topology_mismatch_rejected(self):
        with pytest.raises(ValueError, match="does not support"):
            resolve_routing("ring", "xy")

    def test_escape_vc_flags(self):
        assert resolve_routing("torus").needs_escape_vcs
        assert resolve_routing("ring").needs_escape_vcs
        assert not resolve_routing("mesh").needs_escape_vcs
        assert not resolve_routing("cmesh").needs_escape_vcs
