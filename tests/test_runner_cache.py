"""The experiment runner's caches and parallel fan-out.

The simulator is deterministic, so a :class:`RunSpec` is a content
address: these tests pin the three properties the figure experiments
lean on — the key is stable across processes, parallel results are
bit-identical to serial ones, and the disk cache hits/misses/invalidates
exactly when it should.
"""

import dataclasses
import hashlib
import json
import os
import pickle
import signal
import subprocess
import sys
import time
import warnings
from pathlib import Path

import pytest

from repro.experiments import runner
from repro.experiments.runner import (
    RunnerError,
    RunSpec,
    clear_cache,
    clear_disk_cache,
    default_jobs,
    run_matrix,
    run_spec,
    run_specs,
    spec_key,
)

#: Small enough to keep each simulation around a tenth of a second.
QUICK = dict(workload="x264", accesses_per_core=40)


@pytest.fixture(autouse=True)
def _fresh_caches(tmp_path, monkeypatch):
    """Each test gets an empty memo cache and a private disk cache."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_DISK_CACHE", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_RUNNER_FAULT", raising=False)
    monkeypatch.delenv("REPRO_SPEC_TIMEOUT", raising=False)
    monkeypatch.delenv("REPRO_RETRY_BACKOFF", raising=False)
    monkeypatch.delenv("REPRO_RESUME", raising=False)
    monkeypatch.delenv("REPRO_CHECKPOINT_INTERVAL", raising=False)
    monkeypatch.delenv("REPRO_CHECKPOINT_DIR", raising=False)
    monkeypatch.delenv("REPRO_QUARANTINE_AFTER", raising=False)
    monkeypatch.delenv("REPRO_WATCHDOG_SECONDS", raising=False)
    monkeypatch.delenv("REPRO_HEARTBEAT_DIR", raising=False)
    monkeypatch.delenv("REPRO_SIM_LOG", raising=False)
    monkeypatch.setattr(runner, "_JOBS_WARNED", False)
    clear_cache()
    yield
    clear_cache()


class TestSpecKey:
    def test_stable_within_process(self):
        spec = RunSpec(scheme="disco", **QUICK)
        assert spec_key(spec) == spec_key(RunSpec(scheme="disco", **QUICK))

    def test_differs_across_specs_and_code_version(self, monkeypatch):
        a = spec_key(RunSpec(scheme="disco", **QUICK))
        assert a != spec_key(RunSpec(scheme="cc", **QUICK))
        monkeypatch.setattr(runner, "CODE_VERSION", "next")
        assert a != spec_key(RunSpec(scheme="disco", **QUICK))

    def test_stable_across_processes(self):
        """The content address must not depend on interpreter state
        (PYTHONHASHSEED randomizes ``hash()`` per process)."""
        spec = RunSpec(scheme="disco", **QUICK)
        code = (
            "from repro.experiments.runner import RunSpec, spec_key;"
            f"print(spec_key(RunSpec(scheme='disco', workload='x264',"
            f" accesses_per_core=40)))"
        )
        env = dict(os.environ, PYTHONHASHSEED="12345")
        env["PYTHONPATH"] = os.pathsep.join(sys.path)
        child = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert child.stdout.strip() == spec_key(spec)


class TestDiskCache:
    def test_miss_simulates_then_hit_skips(self, monkeypatch):
        spec = RunSpec(scheme="baseline", **QUICK)
        calls = []
        real = runner._simulate
        monkeypatch.setattr(
            runner,
            "_simulate",
            lambda s, verbose=False: calls.append(s) or real(s, verbose),
        )
        first = run_spec(spec)
        assert calls == [spec]  # miss -> simulated
        clear_cache()  # drop the memo; the disk entry must satisfy the rerun
        second = run_spec(spec)
        assert calls == [spec]  # hit -> not simulated again
        assert dataclasses.asdict(first) == dataclasses.asdict(second)

    def test_code_version_bump_invalidates(self, monkeypatch):
        spec = RunSpec(scheme="baseline", **QUICK)
        run_spec(spec)
        old_key = spec_key(spec)
        clear_cache()
        monkeypatch.setattr(runner, "CODE_VERSION", "2")
        assert spec_key(spec) != old_key
        calls = []
        real = runner._simulate
        monkeypatch.setattr(
            runner,
            "_simulate",
            lambda s, verbose=False: calls.append(s) or real(s, verbose),
        )
        run_spec(spec)
        assert calls == [spec]  # stale entry ignored, simulation re-ran

    def test_corrupt_entry_recomputed(self):
        spec = RunSpec(scheme="baseline", **QUICK)
        result = run_spec(spec)
        path = runner._disk_path(spec)
        path.write_bytes(b"not a pickle")
        clear_cache()
        again = run_spec(spec)
        assert dataclasses.asdict(again) == dataclasses.asdict(result)

    def _corrupt_roundtrip(self, mutate):
        """Shared scaffold: poison a valid entry with ``mutate(path)``,
        then check the lookup recomputes cleanly and quarantines the bad
        entry exactly once (one ``*.corrupt`` file, stable thereafter)."""
        spec = RunSpec(scheme="baseline", **QUICK)
        result = run_spec(spec)
        path = runner._disk_path(spec)
        mutate(path)
        clear_cache()
        again = run_spec(spec)
        assert dataclasses.asdict(again) == dataclasses.asdict(result)
        corrupt = list(runner.cache_dir().glob("*.corrupt"))
        assert len(corrupt) == 1, corrupt
        assert path.exists()  # a fresh, valid entry was republished
        # The quarantined entry is never touched again: further lookups
        # hit the fresh entry and do not mint more *.corrupt files.
        clear_cache()
        run_spec(spec)
        assert list(runner.cache_dir().glob("*.corrupt")) == corrupt

    def test_truncated_entry_quarantined_once(self):
        self._corrupt_roundtrip(
            lambda path: path.write_bytes(path.read_bytes()[:-7])
        )

    def test_wrong_version_entry_quarantined_once(self):
        def downgrade(path):
            blob = path.read_bytes()
            path.write_bytes(b"RDC0" + blob[4:])  # stale envelope magic

        self._corrupt_roundtrip(downgrade)

    def test_unpicklable_payload_quarantined_once(self):
        def repoison(path):
            # Checksum-valid envelope whose payload is not a pickle at
            # all: validation passes, reconstruction cannot.
            payload = b"not a pickle, but faithfully checksummed"
            path.write_bytes(
                runner._CACHE_MAGIC
                + hashlib.sha256(payload).digest()
                + payload
            )

        self._corrupt_roundtrip(repoison)

    def test_corrupt_entries_do_not_abort_the_batch(self):
        """A poisoned entry inside a multi-spec batch is quarantined and
        recomputed in place; the other specs are untouched."""
        specs = [
            RunSpec(scheme=scheme, **QUICK)
            for scheme in ("baseline", "cc", "disco")
        ]
        first = run_specs(specs, jobs=1)
        for mutate in (
            lambda blob: blob[:-7],  # truncated
            lambda blob: b"RDC0" + blob[4:],  # wrong magic
            lambda blob: (  # checksum-valid but unpicklable
                runner._CACHE_MAGIC + hashlib.sha256(b"junk").digest() + b"junk"
            ),
        ):
            path = runner._disk_path(specs[1])
            path.write_bytes(mutate(path.read_bytes()))
            clear_cache()
            again = run_specs(specs, jobs=1)
            for spec in specs:
                assert dataclasses.asdict(again[spec]) == dataclasses.asdict(
                    first[spec]
                )
        # All three corruptions hit the same entry, so quarantine reuses
        # one ``.corrupt`` name (last overwrite wins) — never a pile-up.
        corrupt = list(runner.cache_dir().glob("*.corrupt"))
        assert len(corrupt) == 1, corrupt

    def test_unreadable_entry_quarantined_once(self):
        def replace_with_directory(path):
            # A directory at the entry path fails the read itself (not
            # just validation) — and does so even when tests run as root,
            # unlike a chmod-000 file.
            path.unlink()
            path.mkdir()

        self._corrupt_roundtrip(replace_with_directory)

    def test_opt_out_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISK_CACHE", "0")
        spec = RunSpec(scheme="baseline", **QUICK)
        run_spec(spec)
        assert not runner._disk_path(spec).exists()

    def test_clear_disk_cache_counts_files(self):
        run_spec(RunSpec(scheme="baseline", **QUICK))
        run_spec(RunSpec(scheme="cc", **QUICK))
        assert clear_disk_cache() == 2
        assert clear_disk_cache() == 0

    def test_entries_round_trip_through_pickle(self):
        spec = RunSpec(scheme="disco", **QUICK)
        result = run_spec(spec)
        blob = runner._disk_path(spec).read_bytes()
        # Envelope: 4-byte magic + 32-byte SHA-256 of the pickle payload.
        assert blob.startswith(runner._CACHE_MAGIC)
        payload = blob[runner._ENVELOPE_HEADER:]
        assert (
            blob[len(runner._CACHE_MAGIC):runner._ENVELOPE_HEADER]
            == hashlib.sha256(payload).digest()
        )
        stored = pickle.loads(payload)
        assert dataclasses.asdict(stored) == dataclasses.asdict(result)
        # The structured snapshots survive too, not just scalar fields.
        assert stored.counters_measured == result.counters_measured


class TestParallel:
    SPECS = [
        RunSpec(scheme=scheme, **QUICK)
        for scheme in ("baseline", "cc", "cnc", "disco")
    ]

    def test_parallel_results_bit_identical_to_serial(self):
        serial = run_specs(self.SPECS, jobs=1)
        clear_cache()
        clear_disk_cache()
        parallel = run_specs(self.SPECS, jobs=2)
        assert set(serial) == set(parallel)
        for spec in self.SPECS:
            assert dataclasses.asdict(serial[spec]) == dataclasses.asdict(
                parallel[spec]
            ), f"serial/parallel divergence for {spec.scheme}"

    def test_run_specs_dedupes_and_reuses_cache(self, monkeypatch):
        spec = RunSpec(scheme="baseline", **QUICK)
        calls = []
        real = runner._simulate
        monkeypatch.setattr(
            runner,
            "_simulate",
            lambda s, verbose=False: calls.append(s) or real(s, verbose),
        )
        out = run_specs([spec, spec, spec], jobs=1)
        assert calls == [spec]
        assert list(out) == [spec]
        # A second batch is satisfied wholly from the memo cache.
        run_specs([spec], jobs=2)
        assert calls == [spec]

    def test_run_matrix_shape(self):
        results = run_matrix(
            ["baseline", "disco"],
            ["x264", "canneal"],
            jobs=2,
            accesses_per_core=40,
        )
        assert set(results) == {"baseline", "disco"}
        for scheme in results:
            assert set(results[scheme]) == {"x264", "canneal"}
            for result in results[scheme].values():
                assert result.scheme == scheme
                assert result.cycles > 0

    def test_default_jobs_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert default_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "junk")
        with pytest.warns(RuntimeWarning):
            assert default_jobs() == (os.cpu_count() or 1)

    def test_default_jobs_warns_once_on_invalid_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.warns(RuntimeWarning, match="REPRO_JOBS='many'"):
            assert default_jobs() == (os.cpu_count() or 1)
        # One-time: the fallback stays, the nagging does not.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert default_jobs() == (os.cpu_count() or 1)

    @pytest.mark.skipif(
        os.environ.get("REPRO_PERF_TESTS") != "1",
        reason="wall-clock speedup needs >=2 free CPUs; set REPRO_PERF_TESTS=1",
    )
    def test_parallel_speedup(self):
        specs = [
            RunSpec(scheme=scheme, workload=workload, accesses_per_core=400)
            for scheme in ("baseline", "cc", "cnc", "disco")
            for workload in ("x264", "canneal")
        ]
        start = time.perf_counter()
        run_specs(specs, jobs=1)
        serial = time.perf_counter() - start
        clear_cache()
        clear_disk_cache()
        start = time.perf_counter()
        run_specs(specs, jobs=os.cpu_count())
        parallel = time.perf_counter() - start
        assert serial / parallel >= 2.0


class TestFailureContainment:
    """A misbehaving worker must not take the batch down with it.

    These tests sabotage real pool workers through the
    ``REPRO_RUNNER_FAULT`` hook in :func:`runner._simulate` — actual
    crashed/killed/hung processes, not monkeypatched stand-ins.
    """

    SPECS = [
        RunSpec(scheme="disco", workload=workload, accesses_per_core=40)
        for workload in ("x264", "dedup", "canneal")
    ]

    def test_crashed_worker_keeps_survivors_and_names_the_spec(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_RUNNER_FAULT", "crash:disco:dedup")
        with pytest.raises(RunnerError) as excinfo:
            run_specs(self.SPECS, jobs=3)
        error = excinfo.value
        assert [spec.workload for spec in error.failures] == ["dedup"]
        assert set(error.completed) == {self.SPECS[0], self.SPECS[2]}
        # The message names the failing spec — and only that one.
        assert "dedup" in str(error)
        assert "x264" not in str(error) and "canneal" not in str(error)
        # Survivors were published: a fault-free rerun only recomputes
        # the failed spec (the others hit the memo/disk caches).
        monkeypatch.delenv("REPRO_RUNNER_FAULT")
        calls = []
        real = runner._simulate
        monkeypatch.setattr(
            runner,
            "_simulate",
            lambda s, verbose=False: calls.append(s) or real(s, verbose),
        )
        out = run_specs(self.SPECS, jobs=1)
        assert len(out) == 3
        assert calls == [self.SPECS[1]]

    def test_transient_crash_retried_once_and_succeeds(
        self, tmp_path, monkeypatch
    ):
        marker = tmp_path / "fired"
        monkeypatch.setenv(
            "REPRO_RUNNER_FAULT", f"crash-once:disco:dedup:{marker}"
        )
        out = run_specs(self.SPECS, jobs=2)
        assert len(out) == 3
        assert marker.exists()  # the fault really fired (and was retried)

    def test_dead_worker_falls_back_to_serial(self, monkeypatch):
        # os._exit in a worker kills it without unwinding -> the pool
        # breaks.  The fallback reruns in-process, where the exit mode
        # never fires, so the whole batch still completes.
        monkeypatch.setenv("REPRO_RUNNER_FAULT", "exit:disco:dedup")
        out = run_specs(self.SPECS, jobs=3)
        assert len(out) == 3
        for spec in self.SPECS:
            assert out[spec].cycles > 0

    def test_hung_worker_times_out_and_retry_succeeds(
        self, tmp_path, monkeypatch
    ):
        marker = tmp_path / "hung"
        monkeypatch.setenv(
            "REPRO_RUNNER_FAULT", f"hang-once:disco:dedup:{marker}"
        )
        monkeypatch.setenv("REPRO_RUNNER_HANG_SECONDS", "3")
        monkeypatch.setenv("REPRO_SPEC_TIMEOUT", "1.0")
        start = time.perf_counter()
        out = run_specs(self.SPECS, jobs=3)
        assert len(out) == 3
        assert marker.exists()
        # The batch must not have waited out the full hang serially per
        # spec; the hung future was abandoned after its timeout.
        assert time.perf_counter() - start < 30

    def test_serial_path_contains_failures_too(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUNNER_FAULT", "crash:disco:dedup")
        with pytest.raises(RunnerError) as excinfo:
            run_specs(self.SPECS, jobs=1)
        assert len(excinfo.value.completed) == 2
        assert [s.workload for s in excinfo.value.failures] == ["dedup"]

    def test_persistent_crash_reports_first_attempt_reason(
        self, monkeypatch
    ):
        # Both attempts crash: the error must carry the retry's exception
        # in ``failures`` AND name the first attempt's, so flaky-then-
        # fatal sequences are triageable from the message alone.
        monkeypatch.setenv("REPRO_RUNNER_FAULT", "crash:disco:dedup")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
        with pytest.raises(RunnerError) as excinfo:
            run_specs(self.SPECS, jobs=3)
        error = excinfo.value
        [failed] = list(error.failures)
        assert failed.workload == "dedup"
        assert isinstance(error.prior.get(failed), RuntimeError)
        assert "first attempt:" in str(error)
        assert "injected runner fault" in str(error)


class TestSerialTimeout:
    def test_serial_path_enforces_spec_timeout(self, monkeypatch):
        """``REPRO_SPEC_TIMEOUT`` must bound serial in-process runs too,
        not just pool futures: a run that blows its budget raises
        ``TimeoutError`` through both attempts and lands in the failure
        set with the first symptom recorded."""
        monkeypatch.setenv("REPRO_SPEC_TIMEOUT", "0.05")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
        spec = RunSpec(
            scheme="disco", workload="x264", accesses_per_core=2000
        )
        with pytest.raises(RunnerError) as excinfo:
            run_specs([spec], jobs=1)
        assert isinstance(excinfo.value.failures[spec], TimeoutError)
        assert isinstance(excinfo.value.prior.get(spec), TimeoutError)


class TestWatchdog:
    def test_heartbeats_carry_the_simulated_cycle(
        self, tmp_path, monkeypatch
    ):
        hb_dir = tmp_path / "hb"
        monkeypatch.setenv("REPRO_HEARTBEAT_DIR", str(hb_dir))
        run_spec(RunSpec(scheme="baseline", **QUICK))
        [beat] = list(hb_dir.glob("hb_*.json"))
        record = json.loads(beat.read_text(encoding="utf-8"))
        assert record["pid"] == os.getpid()
        assert record["cycle"] > 0

    def test_wedged_worker_is_killed_slow_one_is_not(self, tmp_path):
        """The watchdog kills a process whose heartbeat *cycle* freezes,
        and only that one — an advancing counter (merely slow) is safe."""
        hb_dir = tmp_path / "hb"
        hb_dir.mkdir()
        sleeper = [sys.executable, "-c", "import time; time.sleep(60)"]
        wedged = subprocess.Popen(sleeper)
        slow = subprocess.Popen(sleeper)

        def beat(pid, cycle):
            (hb_dir / f"hb_{pid}.json").write_text(
                json.dumps(
                    {"pid": pid, "key": "k", "cycle": cycle, "ts": 0}
                ),
                encoding="utf-8",
            )

        beat(wedged.pid, 42)
        cycle = [0]
        dog = runner._Watchdog(hb_dir, stall_seconds=0.4).start()
        try:
            deadline = time.monotonic() + 10
            while wedged.poll() is None:
                assert time.monotonic() < deadline, "watchdog never fired"
                cycle[0] += 1  # the slow worker keeps making progress
                beat(slow.pid, cycle[0])
                time.sleep(0.05)
            assert wedged.wait() == -signal.SIGKILL
            assert slow.poll() is None  # progressing worker untouched
        finally:
            dog.stop()
            for proc in (wedged, slow):
                if proc.poll() is None:
                    proc.kill()
                proc.wait()
        assert dog.killed == [wedged.pid]


class TestRetryBackoff:
    def test_disabled_by_zero(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
        assert runner._retry_backoff() == 0.0

    def test_jitter_stays_within_half_to_one_and_a_half(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.2")
        for _ in range(20):
            assert 0.1 <= runner._retry_backoff() <= 0.3

    def test_unparseable_value_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "soon-ish")
        assert 0.05 <= runner._retry_backoff() <= 0.15

    def test_spec_seeded_jitter_is_reproducible(self, monkeypatch):
        """Given a spec, the jitter comes from a generator seeded by its
        key: identical across calls and processes, decorrelated across
        specs — not a draw from the process-global RNG."""
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.2")
        a = RunSpec(scheme="disco", **QUICK)
        b = RunSpec(scheme="cc", **QUICK)
        first = runner._retry_backoff(a)
        assert first == runner._retry_backoff(a)
        assert 0.1 <= first <= 0.3
        assert runner._retry_backoff(b) != first
        # Global-RNG state must not perturb the seeded draw.
        import random as _random

        _random.random()
        assert runner._retry_backoff(a) == first


class TestCampaignJournal:
    def test_states_fold_with_running_attempt_counting(self, monkeypatch):
        runner._journal_append("k1", "pending")
        runner._journal_append("k1", "running")
        runner._journal_append("k1", "done")
        runner._journal_append("k2", "running")
        runner._journal_append("k2", "running")
        entries = runner._journal_read()
        assert entries["k1"] == {"state": "done", "attempts": 0}
        assert entries["k2"] == {"state": "running", "attempts": 2}

    def test_torn_tail_is_skipped(self):
        runner._journal_append("k1", "running")
        with open(runner._journal_path(), "a", encoding="utf-8") as handle:
            handle.write('{"key": "k2", "sta')  # crash mid-append
        entries = runner._journal_read()
        assert entries == {"k1": {"state": "running", "attempts": 1}}

    def test_batches_journal_done_specs(self):
        spec = RunSpec(scheme="baseline", **QUICK)
        run_specs([spec], jobs=1)
        entries = runner._journal_read()
        assert entries[spec_key(spec)]["state"] == "done"

    def test_resume_quarantines_crash_looped_specs(self, monkeypatch):
        """A spec journaled ``running`` with no terminal record N times is
        a crash loop: resume fails it up-front instead of re-running."""
        monkeypatch.setenv("REPRO_QUARANTINE_AFTER", "2")
        spec = RunSpec(scheme="baseline", **QUICK)
        key = spec_key(spec)
        runner._journal_append(key, "running")
        runner._journal_append(key, "running")
        calls = []
        real = runner._simulate
        monkeypatch.setattr(
            runner,
            "_simulate",
            lambda s, verbose=False: calls.append(s) or real(s, verbose),
        )
        with pytest.raises(RunnerError) as excinfo:
            run_specs([spec], jobs=1, resume=True)
        assert calls == []  # never re-attempted
        assert "quarantined after 2 interrupted attempts" in str(
            excinfo.value.failures[spec]
        )
        assert runner._journal_read()[key]["state"] == "quarantined"

    def test_resume_skips_done_specs_without_recompute(self, monkeypatch):
        spec = RunSpec(scheme="baseline", **QUICK)
        run_specs([spec], jobs=1)
        clear_cache()  # drop the memo; disk cache + journal remain
        calls = []
        real = runner._simulate
        monkeypatch.setattr(
            runner,
            "_simulate",
            lambda s, verbose=False: calls.append(s) or real(s, verbose),
        )
        out = run_specs([spec], jobs=1, resume=True)
        assert calls == []  # served from the disk cache, not re-run
        assert out[spec].cycles > 0


def test_cache_dir_override(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
    assert runner.cache_dir() == Path(tmp_path / "elsewhere")


class TestQuarantineBoundary:
    """The crash-loop bound is exact: N interrupted attempts quarantine,
    N-1 retry (the other half of the boundary is
    ``test_resume_quarantines_crash_looped_specs`` above)."""

    def test_one_below_the_bound_retries_and_completes(self, monkeypatch):
        monkeypatch.setenv("REPRO_QUARANTINE_AFTER", "3")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
        spec = RunSpec(scheme="baseline", **QUICK)
        key = spec_key(spec)
        for _ in range(2):  # N-1 interrupted attempts on record
            runner._journal_append(key, "running")
        out = run_specs([spec], jobs=1, resume=True)
        assert out[spec].cycles > 0
        assert runner._journal_read()[key]["state"] == "done"

    def test_exactly_at_the_bound_quarantines(self, monkeypatch):
        monkeypatch.setenv("REPRO_QUARANTINE_AFTER", "3")
        spec = RunSpec(scheme="baseline", **QUICK)
        key = spec_key(spec)
        for _ in range(3):
            runner._journal_append(key, "running")
        with pytest.raises(RunnerError):
            run_specs([spec], jobs=1, resume=True)
        assert runner._journal_read()[key]["state"] == "quarantined"


class TestTornTailReplay:
    def test_resume_replays_past_a_torn_tail(self, tmp_path, monkeypatch):
        """A journal whose last line was cut mid-write (writer SIGKILLed
        inside the append) must not poison resume: intact records still
        replay, the torn record is dropped, and done specs are served
        without recomputation."""
        done_spec = RunSpec(scheme="baseline", **QUICK)
        torn_spec = RunSpec(scheme="disco", **QUICK)
        run_specs([done_spec], jobs=1)
        clear_cache()  # drop the memo; disk cache + journal remain
        torn = json.dumps({"key": spec_key(torn_spec), "state": "running"})
        with open(runner._journal_path(), "a", encoding="utf-8") as handle:
            handle.write(torn[: len(torn) // 2])  # no trailing newline
        log = tmp_path / "sims.log"
        monkeypatch.setenv("REPRO_SIM_LOG", str(log))
        out = run_specs([done_spec, torn_spec], jobs=1, resume=True)
        assert set(out) == {done_spec, torn_spec}
        executed = set(log.read_text().split())
        assert spec_key(done_spec) not in executed  # no recompute
        assert spec_key(torn_spec) in executed
        entries = runner._journal_read()
        assert entries[spec_key(done_spec)]["state"] == "done"
        assert entries[spec_key(torn_spec)]["state"] == "done"


class TestStaleHeartbeatCleanup:
    def test_dead_and_torn_removed_live_and_own_kept(self, tmp_path):
        beats = tmp_path / "hb"
        beats.mkdir()
        # A pid that existed and is gone: a just-reaped child of ours.
        child = subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True,
            text=True,
            check=True,
        )
        dead_pid = int(child.stdout)
        (beats / f"hb_{dead_pid}.json").write_text(
            json.dumps({"pid": dead_pid, "cycle": 10})
        )
        (beats / f"hb_{os.getpid()}.json").write_text(
            json.dumps({"pid": os.getpid(), "cycle": 10})
        )
        (beats / "hb_1.json").write_text(json.dumps({"pid": 1, "cycle": 1}))
        (beats / "hb_torn.json").write_text('{"pid": 12')  # torn write
        removed = runner.clean_stale_heartbeats(beats)
        assert removed == 2  # the dead pid and the torn file
        survivors = sorted(path.name for path in beats.glob("hb_*.json"))
        assert survivors == sorted(
            [f"hb_{os.getpid()}.json", "hb_1.json"]
        )

    def test_defaults_to_the_heartbeat_env_dir(self, tmp_path, monkeypatch):
        assert runner.clean_stale_heartbeats() == 0  # env unset: no-op
        beats = tmp_path / "hb"
        beats.mkdir()
        (beats / "hb_junk.json").write_text("not json")
        monkeypatch.setenv("REPRO_HEARTBEAT_DIR", str(beats))
        assert runner.clean_stale_heartbeats() == 1


_RACE_CHILD = r"""
import os, sys, time
from repro.experiments import runner
from repro.experiments.runner import RunSpec, result_digest

spec = RunSpec(scheme="baseline", workload="x264", accesses_per_core=40)
result = runner._simulate(spec)
deadline = float(os.environ["RACE_START"])
while time.time() < deadline:  # line both writers up on one instant
    time.sleep(0.001)
for _ in range(int(os.environ["RACE_ITERATIONS"])):
    runner._disk_store(spec, result)
    loaded = runner._disk_load(spec)
    assert loaded is not None, "reader saw a torn publish"
    assert result_digest(loaded) == result_digest(result)
print(result_digest(result))
"""


class TestConcurrentPublishRace:
    def test_two_processes_publishing_one_key_never_tear_it(
        self, tmp_path
    ):
        """Satellite regression: two processes repeatedly publishing and
        reading the same spec key against one shared cache directory.
        Atomic rename publish means every read returns a complete blob —
        no ``.corrupt`` quarantines, no leftover staging files."""
        cache = tmp_path / "shared-cache"
        env = dict(os.environ)
        env["REPRO_CACHE_DIR"] = str(cache)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
        env["RACE_START"] = str(time.time() + 2.0)
        env["RACE_ITERATIONS"] = "150"
        children = [
            subprocess.Popen(
                [sys.executable, "-c", _RACE_CHILD],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for _ in range(2)
        ]
        outputs = []
        for child in children:
            out, err = child.communicate(timeout=120)
            assert child.returncode == 0, err
            outputs.append(out.strip())
        assert outputs[0] == outputs[1]  # deterministic, identical bytes
        assert list(cache.glob("*.corrupt")) == []
        assert list(cache.glob("*.tmp")) == []
        assert len(list(cache.glob("*.pkl"))) == 1
