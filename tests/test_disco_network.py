"""DISCO-in-network integration tests under synthetic traffic."""

from repro.compression.registry import get_timing
from repro.core import DiscoConfig, disco_priority, make_disco_router_factory
from repro.noc import Network, NocConfig
from repro.noc.traffic import SyntheticTraffic, TrafficConfig


def build_disco(rate=0.06, seed=3, cycles=800, **disco_kwargs):
    network = Network(
        NocConfig(),
        router_factory=make_disco_router_factory(DiscoConfig(**disco_kwargs)),
    )
    network.packet_priority = disco_priority
    decomp = get_timing("delta").decompression_cycles

    def eject(node, packet):
        if packet.is_compressed and packet.decompress_at_dst:
            packet.apply_decompression()
            network.stats.ni_decompressions += 1
            return decomp
        return 0

    network.eject_transform = eject
    traffic = SyntheticTraffic(
        network, TrafficConfig(injection_rate=rate, seed=seed)
    )
    traffic.run(cycles)
    return network, traffic


def test_conservation_and_integrity_with_compression():
    network, traffic = build_disco()
    stats = network.stats
    assert stats.packets_ejected == traffic.generated
    assert stats.compressions > 0
    for packet in traffic.delivered:
        if packet.carries_data:
            assert not packet.is_compressed  # always raw at the endpoint
            assert len(packet.line) == 64


def test_compression_activity_grows_with_load():
    low, _ = build_disco(rate=0.02)
    high, _ = build_disco(rate=0.08)
    per_packet_low = low.stats.compressions / max(1, low.stats.packets_ejected)
    per_packet_high = high.stats.compressions / max(
        1, high.stats.packets_ejected
    )
    assert per_packet_high > per_packet_low


def test_flits_saved_reduce_link_traffic():
    disco, _ = build_disco(rate=0.06)
    baseline = Network(NocConfig())
    SyntheticTraffic(
        baseline, TrafficConfig(injection_rate=0.06, seed=3)
    ).run(800)
    assert disco.stats.flits_saved > 0
    assert disco.stats.link_flits < baseline.stats.link_flits


def test_decompressions_split_between_network_and_ni():
    network, _ = build_disco(rate=0.08)
    stats = network.stats
    total = stats.decompressions + stats.ni_decompressions
    assert total > 0
    # Every compressed data packet is decompressed exactly once somewhere:
    # compressions == decompressions (all RESPONSE packets here need raw).
    assert stats.compressions == total


def test_blocking_configuration_runs_clean():
    network, traffic = build_disco(rate=0.05, non_blocking=False)
    assert network.stats.packets_ejected == traffic.generated
    assert network.stats.aborted_jobs == 0


def test_whole_packet_only_mode():
    """separate_compression=False: wormhole 9-flit packets can't compress
    in 8-deep VCs, so no compressions happen — but nothing breaks."""
    network, traffic = build_disco(rate=0.05, separate_compression=False)
    assert network.stats.packets_ejected == traffic.generated
    assert network.stats.separate_compressions == 0


def test_engine_capacity_respected():
    network, _ = build_disco(rate=0.08, engines_per_router=1)
    for router in network.routers:
        assert len(router.engine.jobs) <= 1
