"""The simulation kernel: phases, component gating, stats, diagnostics."""

import pickle

import pytest

from repro.noc import Network, NocConfig
from repro.noc.flit import Packet, PacketType
from repro.sim import (
    CallbackComponent,
    Component,
    CounterSnapshot,
    SimKernel,
    StatsRegistry,
    merge_snapshots,
)


class Recorder:
    """A component that logs its ticks into a shared trace."""

    def __init__(self, name, trace, busy=True):
        self.name = name
        self.trace = trace
        self.busy = busy

    def has_work(self):
        return self.busy

    def tick(self, cycle):
        self.trace.append((cycle, self.name))


class TestKernelScheduling:
    def test_phase_order_is_registration_order(self):
        kernel = SimKernel()
        trace = []
        kernel.register(Recorder("b", trace), phase="beta")
        kernel.register(Recorder("a", trace), phase="alpha")
        kernel.step()
        assert trace == [(1, "b"), (1, "a")]
        assert kernel.phases() == ("beta", "alpha")

    def test_add_phase_before_reorders(self):
        kernel = SimKernel()
        trace = []
        kernel.register(Recorder("late", trace), phase="late")
        kernel.add_phase("early", before="late")
        kernel.register(Recorder("early", trace), phase="early")
        kernel.step()
        assert trace == [(1, "early"), (1, "late")]

    def test_add_phase_before_unknown_raises(self):
        with pytest.raises(KeyError):
            SimKernel().add_phase("x", before="nope")

    def test_shared_phase_by_name(self):
        kernel = SimKernel()
        phase = kernel.add_phase("shared")
        assert kernel.add_phase("shared") is phase
        trace = []
        kernel.register(Recorder("one", trace), phase="shared")
        kernel.register(Recorder("two", trace), phase="shared")
        assert len(kernel.components("shared")) == 2

    def test_has_work_gates_tick(self):
        kernel = SimKernel()
        trace = []
        idle = Recorder("idle", trace, busy=False)
        busy = Recorder("busy", trace, busy=True)
        kernel.register(idle)
        kernel.register(busy)
        kernel.step()
        kernel.step()
        assert trace == [(1, "busy"), (2, "busy")]

    def test_passive_components_never_tick_but_count_as_busy(self):
        kernel = SimKernel()
        trace = []
        passive = Recorder("passive", trace, busy=True)
        kernel.register(passive, phase="banks", tick=False)
        kernel.step()
        assert trace == []  # never ticked...
        assert not kernel.idle()  # ...but holds the kernel non-idle
        assert ("banks", passive) in kernel.busy_components()
        passive.busy = False
        assert kernel.idle()

    def test_run_until_predicate(self):
        kernel = SimKernel()
        stepped = kernel.run(until=lambda: kernel.cycle >= 10)
        assert stepped == 10
        assert kernel.cycle == 10

    def test_run_max_cycles_raises(self):
        kernel = SimKernel()
        with pytest.raises(RuntimeError, match="exceeded 5 cycles"):
            kernel.run(until=lambda: False, max_cycles=5)

    def test_callback_component(self):
        ticks = []
        comp = CallbackComponent(ticks.append, label="cb")
        assert isinstance(comp, Component)
        assert comp.has_work()
        comp.tick(7)
        assert ticks == [7]
        gated = CallbackComponent(
            ticks.append, label="gated", has_work_fn=lambda: False
        )
        assert not gated.has_work()

    def test_describe_mentions_phases(self):
        kernel = SimKernel()
        kernel.register(Recorder("r", [], busy=True), phase="net.routers")
        kernel.register(Recorder("p", [], busy=False), phase="banks", tick=False)
        text = kernel.describe()
        assert "net.routers" in text
        assert "passive" in text


class TestInstrumentation:
    def test_timing_accumulates_per_phase(self):
        kernel = SimKernel()
        kernel.register(Recorder("a", [], busy=True), phase="work")
        kernel.register(Recorder("b", [], busy=False), phase="work")
        kernel.enable_timing()
        for _ in range(3):
            kernel.step()
        assert kernel.phase_ticks == {"work": 3}  # idle b never counted
        assert kernel.phase_seconds["work"] >= 0.0

    def test_tracer_sees_every_tick_in_order(self):
        kernel = SimKernel()
        a = Recorder("a", [], busy=True)
        b = Recorder("b", [], busy=True)
        kernel.register(a, phase="p1")
        kernel.register(b, phase="p2")
        events = []
        kernel.set_tracer(lambda cycle, phase, comp: events.append((cycle, phase, comp)))
        kernel.step()
        assert events == [(1, "p1", a), (1, "p2", b)]
        kernel.set_tracer(None)
        kernel.step()
        assert len(events) == 2  # tracer off again


class TestStatsRegistry:
    def test_snapshot_samples_providers(self):
        registry = StatsRegistry()
        counters = {"hits": 1}
        registry.register("l1", lambda: dict(counters))
        snap1 = registry.snapshot()
        counters["hits"] = 5
        snap2 = registry.snapshot()
        assert snap1["l1"]["hits"] == 1  # immutable sample
        assert snap2["l1"]["hits"] == 5
        assert registry.groups() == ("l1",)
        assert "l1" in registry

    def test_duplicate_group_raises(self):
        registry = StatsRegistry()
        registry.register("g", dict)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("g", dict)

    def test_flat_and_collision(self):
        snap = CounterSnapshot({"a": {"x": 1}, "b": {"y": 2}})
        assert snap.flat() == {"x": 1, "y": 2}
        clash = CounterSnapshot({"a": {"x": 1}, "b": {"x": 2}})
        with pytest.raises(ValueError, match="collides"):
            clash.flat()

    def test_get_counter_searches_groups(self):
        snap = CounterSnapshot({"a": {"x": 1}, "b": {"y": 2}})
        assert snap.get_counter("y") == 2
        assert snap.get_counter("missing", default=-1) == -1

    def test_delta_is_steady_state_window(self):
        base = CounterSnapshot({"net": {"flits": 10, "cycles": 100}})
        final = CounterSnapshot({"net": {"flits": 25, "cycles": 300}, "l1": {"hits": 4}})
        window = final.delta(base)
        assert window["net"] == {"flits": 15, "cycles": 200}
        assert window["l1"] == {"hits": 4}  # missing base group counts as 0

    def test_merge_sums_counterwise(self):
        a = CounterSnapshot({"net": {"flits": 1}})
        b = CounterSnapshot({"net": {"flits": 2}, "l1": {"hits": 3}})
        merged = a.merge(b)
        assert merged["net"] == {"flits": 3}
        assert merged["l1"] == {"hits": 3}
        assert merge_snapshots([a, b, a]).flat() == {"flits": 4, "hits": 3}
        assert merge_snapshots([]) == CounterSnapshot()

    def test_snapshot_pickles(self):
        snap = CounterSnapshot({"net": {"flits": 7}})
        clone = pickle.loads(pickle.dumps(snap))
        assert clone == snap
        assert clone.flat() == {"flits": 7}


class TestNetworkOnKernel:
    def test_network_registers_phases_in_order(self):
        network = Network(NocConfig(width=2, height=2))
        assert network.kernel.phases() == (
            "net.frame",
            "net.arrivals",
            "net.routers",
            "net.nis",
            "net.delivery",
        )
        assert "network" in network.kernel.stats

    def test_network_counters_via_registry(self):
        network = Network(NocConfig(width=2, height=2))
        network.set_delivery_handler(lambda node, p: None)
        network.send(Packet(PacketType.REQUEST, 0, 3))
        network.run_until_quiescent()
        flat = network.kernel.stats.snapshot().flat()
        assert flat["packets_injected"] == 1
        assert flat["flits_ejected"] >= 1
        assert flat["cycles"] == network.cycle

    def test_wedge_snapshot_attached_to_drain_failure(self):
        network = Network(NocConfig(width=2, height=2))
        # A head flit whose tail never arrives: the router binds the packet
        # and waits forever, so the drain loop must wedge and explain where.
        packet = Packet(PacketType.RESPONSE, 0, 3, line=b"\x00" * 64)
        packet.injected_cycle = 0
        vc = network.routers[3].all_vcs[0]
        network.schedule_arrival(1, vc, packet, is_head=True, is_tail=False)
        with pytest.raises(RuntimeError) as excinfo:
            network.run_until_quiescent(max_cycles=200)
        message = str(excinfo.value)
        assert "wedge snapshot" in message
        assert "router 3" in message
        assert "RESPONSE" in message
        assert "0->3" in message

    def test_wedge_snapshot_reports_inflight_link_flits(self):
        network = Network(NocConfig(width=2, height=2))
        packet = Packet(PacketType.REQUEST, 0, 3)
        vc = network.routers[3].all_vcs[0]
        # Scheduled far in the future: stays "in flight" past the deadline.
        network.schedule_arrival(10_000, vc, packet, is_head=True, is_tail=True)
        with pytest.raises(RuntimeError, match="link flits in flight: 1"):
            network.run_until_quiescent(max_cycles=100)
