"""The simulation kernel: phases, component gating, stats, diagnostics."""

import pickle

import pytest

from repro.noc import Network, NocConfig
from repro.noc.flit import Packet, PacketType
from repro.sim import (
    CallbackComponent,
    Component,
    CounterSnapshot,
    SimKernel,
    StatsRegistry,
    merge_snapshots,
)


class Recorder:
    """A component that logs its ticks into a shared trace."""

    def __init__(self, name, trace, busy=True):
        self.name = name
        self.trace = trace
        self.busy = busy

    def has_work(self):
        return self.busy

    def tick(self, cycle):
        self.trace.append((cycle, self.name))


class TestKernelScheduling:
    def test_phase_order_is_registration_order(self):
        kernel = SimKernel()
        trace = []
        kernel.register(Recorder("b", trace), phase="beta")
        kernel.register(Recorder("a", trace), phase="alpha")
        kernel.step()
        assert trace == [(1, "b"), (1, "a")]
        assert kernel.phases() == ("beta", "alpha")

    def test_add_phase_before_reorders(self):
        kernel = SimKernel()
        trace = []
        kernel.register(Recorder("late", trace), phase="late")
        kernel.add_phase("early", before="late")
        kernel.register(Recorder("early", trace), phase="early")
        kernel.step()
        assert trace == [(1, "early"), (1, "late")]

    def test_add_phase_before_unknown_raises(self):
        with pytest.raises(KeyError):
            SimKernel().add_phase("x", before="nope")

    def test_shared_phase_by_name(self):
        kernel = SimKernel()
        phase = kernel.add_phase("shared")
        assert kernel.add_phase("shared") is phase
        trace = []
        kernel.register(Recorder("one", trace), phase="shared")
        kernel.register(Recorder("two", trace), phase="shared")
        assert len(kernel.components("shared")) == 2

    def test_has_work_gates_tick(self):
        kernel = SimKernel()
        trace = []
        idle = Recorder("idle", trace, busy=False)
        busy = Recorder("busy", trace, busy=True)
        kernel.register(idle)
        kernel.register(busy)
        kernel.step()
        kernel.step()
        assert trace == [(1, "busy"), (2, "busy")]

    def test_passive_components_never_tick_but_count_as_busy(self):
        kernel = SimKernel()
        trace = []
        passive = Recorder("passive", trace, busy=True)
        kernel.register(passive, phase="banks", tick=False)
        kernel.step()
        assert trace == []  # never ticked...
        assert not kernel.idle()  # ...but holds the kernel non-idle
        assert ("banks", passive) in kernel.busy_components()
        passive.busy = False
        assert kernel.idle()

    def test_run_until_predicate(self):
        kernel = SimKernel()
        stepped = kernel.run(until=lambda: kernel.cycle >= 10)
        assert stepped == 10
        assert kernel.cycle == 10

    def test_run_max_cycles_raises(self):
        kernel = SimKernel()
        with pytest.raises(RuntimeError, match="exceeded 5 cycles"):
            kernel.run(until=lambda: False, max_cycles=5)

    def test_callback_component(self):
        ticks = []
        comp = CallbackComponent(ticks.append, label="cb")
        assert isinstance(comp, Component)
        assert comp.has_work()
        comp.tick(7)
        assert ticks == [7]
        gated = CallbackComponent(
            ticks.append, label="gated", has_work_fn=lambda: False
        )
        assert not gated.has_work()

    def test_describe_mentions_phases(self):
        kernel = SimKernel()
        kernel.register(Recorder("r", [], busy=True), phase="net.routers")
        kernel.register(Recorder("p", [], busy=False), phase="banks", tick=False)
        text = kernel.describe()
        assert "net.routers" in text
        assert "passive" in text


class TestInstrumentation:
    def test_timing_accumulates_per_phase(self):
        kernel = SimKernel()
        kernel.register(Recorder("a", [], busy=True), phase="work")
        kernel.register(Recorder("b", [], busy=False), phase="work")
        kernel.enable_timing()
        for _ in range(3):
            kernel.step()
        assert kernel.phase_ticks == {"work": 3}  # idle b never counted
        assert kernel.phase_seconds["work"] >= 0.0

    def test_tracer_sees_every_tick_in_order(self):
        kernel = SimKernel()
        a = Recorder("a", [], busy=True)
        b = Recorder("b", [], busy=True)
        kernel.register(a, phase="p1")
        kernel.register(b, phase="p2")
        events = []
        kernel.set_tracer(lambda cycle, phase, comp: events.append((cycle, phase, comp)))
        kernel.step()
        assert events == [(1, "p1", a), (1, "p2", b)]
        kernel.set_tracer(None)
        kernel.step()
        assert len(events) == 2  # tracer off again


class TestStatsRegistry:
    def test_snapshot_samples_providers(self):
        registry = StatsRegistry()
        counters = {"hits": 1}
        registry.register("l1", lambda: dict(counters))
        snap1 = registry.snapshot()
        counters["hits"] = 5
        snap2 = registry.snapshot()
        assert snap1["l1"]["hits"] == 1  # immutable sample
        assert snap2["l1"]["hits"] == 5
        assert registry.groups() == ("l1",)
        assert "l1" in registry

    def test_duplicate_group_raises(self):
        registry = StatsRegistry()
        registry.register("g", dict)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("g", dict)

    def test_flat_and_collision(self):
        snap = CounterSnapshot({"a": {"x": 1}, "b": {"y": 2}})
        assert snap.flat() == {"x": 1, "y": 2}
        clash = CounterSnapshot({"a": {"x": 1}, "b": {"x": 2}})
        with pytest.raises(ValueError, match="collides"):
            clash.flat()

    def test_get_counter_searches_groups(self):
        snap = CounterSnapshot({"a": {"x": 1}, "b": {"y": 2}})
        assert snap.get_counter("y") == 2
        assert snap.get_counter("missing", default=-1) == -1

    def test_delta_is_steady_state_window(self):
        base = CounterSnapshot({"net": {"flits": 10, "cycles": 100}})
        final = CounterSnapshot({"net": {"flits": 25, "cycles": 300}, "l1": {"hits": 4}})
        window = final.delta(base)
        assert window["net"] == {"flits": 15, "cycles": 200}
        assert window["l1"] == {"hits": 4}  # missing base group counts as 0

    def test_merge_sums_counterwise(self):
        a = CounterSnapshot({"net": {"flits": 1}})
        b = CounterSnapshot({"net": {"flits": 2}, "l1": {"hits": 3}})
        merged = a.merge(b)
        assert merged["net"] == {"flits": 3}
        assert merged["l1"] == {"hits": 3}
        assert merge_snapshots([a, b, a]).flat() == {"flits": 4, "hits": 3}
        assert merge_snapshots([]) == CounterSnapshot()

    def test_snapshot_pickles(self):
        snap = CounterSnapshot({"net": {"flits": 7}})
        clone = pickle.loads(pickle.dumps(snap))
        assert clone == snap
        assert clone.flat() == {"flits": 7}


class SleepyRecorder(Recorder):
    """A Recorder with the explicit 'sleep unless woken' idleness contract.

    ``next_wake`` returning ``None`` opts out of the default busy →
    revisit-next-cycle re-arm, so the *only* thing that can keep this
    component running is an explicit :meth:`SimKernel.wake`.
    """

    def next_wake(self, cycle):
        return None


class TestWakeupEdgeCases:
    """Corner cases of the event-driven scheduler (wake normalisation,
    dedup, phase ordering, timed wakeups)."""

    def test_self_wake_during_tick_revisits_next_cycle(self):
        kernel = SimKernel()
        trace = []

        class SelfWaker(SleepyRecorder):
            def tick(self, cycle):
                super().tick(cycle)
                if len(trace) < 3:
                    kernel.wake(self)

        kernel.register(SelfWaker("self", trace))
        for _ in range(6):
            kernel.step()
        # Exactly one visit per cycle while self-waking, then sleep.
        assert trace == [(1, "self"), (2, "self"), (3, "self")]
        counters = kernel.kernel_counters()
        assert counters["component_wakes"] == 3
        assert counters["wakes_skipped"] == 0

    def test_busy_self_wake_does_not_double_tick(self):
        kernel = SimKernel()
        trace = []

        class Noisy(Recorder):
            def tick(self, cycle):
                super().tick(cycle)
                # Redundant with the default busy re-arm contract, and
                # with each other: all three must coalesce to one visit.
                kernel.wake(self)
                kernel.wake(self, cycle + 1)

        kernel.register(Noisy("noisy", trace, busy=True))
        for _ in range(4):
            kernel.step()
        assert trace == [(1, "noisy"), (2, "noisy"), (3, "noisy"), (4, "noisy")]

    def test_wake_in_the_past_rounds_up_to_next_cycle(self):
        kernel = SimKernel()
        trace = []
        comp = SleepyRecorder("one-shot", trace)
        kernel.register(comp)
        for _ in range(5):
            kernel.step()
        assert trace == [(1, "one-shot")]  # primed once, then slept
        kernel.wake(comp, cycle=2)  # cycle 2 is long gone
        kernel.step()
        assert trace == [(1, "one-shot"), (6, "one-shot")]

    def test_simultaneous_cross_phase_wakes_preserve_phase_order(self):
        kernel = SimKernel()
        trace = []
        beta = SleepyRecorder("b", trace)
        alpha = SleepyRecorder("a", trace)
        kernel.register(beta, phase="beta")
        kernel.register(alpha, phase="alpha")
        kernel.step()  # prime visits at cycle 1
        trace.clear()
        # Wake in reverse phase order for the same future cycle ...
        kernel.wake(alpha, cycle=4)
        kernel.wake(beta, cycle=4)
        for _ in range(3):
            kernel.step()
        # ... the sweep still runs them in phase (registration) order.
        assert trace == [(4, "b"), (4, "a")]

    def test_simultaneous_wakes_within_a_phase_follow_registration_order(self):
        kernel = SimKernel()
        trace = []
        first = SleepyRecorder("first", trace)
        second = SleepyRecorder("second", trace)
        kernel.register(first, phase="p")
        kernel.register(second, phase="p")
        kernel.step()
        trace.clear()
        kernel.wake(second, cycle=3)
        kernel.wake(first, cycle=3)
        kernel.step()
        kernel.step()
        assert trace == [(3, "first"), (3, "second")]

    def test_producer_wake_lands_same_cycle_only_downstream(self):
        kernel = SimKernel()
        up_trace, mid_trace, down_trace = [], [], []
        upstream = Recorder("up", up_trace, busy=False)
        downstream = Recorder("down", down_trace, busy=False)

        class Producer(SleepyRecorder):
            def tick(self, cycle):
                super().tick(cycle)
                upstream.busy = True
                downstream.busy = True
                kernel.wake(upstream)
                kernel.wake(downstream)

        kernel.register(upstream, phase="pre")
        kernel.register(Producer("prod", mid_trace), phase="mid")
        kernel.register(downstream, phase="post")
        kernel.step()
        kernel.step()
        assert mid_trace == [(1, "prod")]
        # The not-yet-swept phase is reached the same cycle; the
        # already-swept one must wait for the next cycle.
        assert down_trace[0] == (1, "down")
        assert up_trace[0] == (2, "up")

    def test_timed_next_wake_sleeps_between_deadlines(self):
        kernel = SimKernel()
        trace = []

        class Timer(Recorder):
            def next_wake(self, cycle):
                return cycle + 5

        kernel.register(Timer("timer", trace, busy=True))
        for _ in range(12):
            kernel.step()
        assert trace == [(1, "timer"), (6, "timer"), (11, "timer")]
        counters = kernel.kernel_counters()
        assert counters["cycles_total"] == 12
        assert counters["component_wakes"] == 3  # no visits in between
        assert counters["wakes_skipped"] == 0

    def test_superseded_heap_entry_never_causes_a_visit(self):
        kernel = SimKernel()
        trace = []
        comp = Recorder("sleeper", trace, busy=False)
        kernel.register(comp)
        kernel.wake(comp, cycle=10)
        kernel.wake(comp, cycle=3)  # supersedes the cycle-10 entry
        for _ in range(12):
            kernel.step()
        assert trace == []  # never busy, so never ticked
        counters = kernel.kernel_counters()
        # Prime visit at cycle 1 + the coalesced wake at cycle 3; the
        # stale cycle-10 heap entry is dropped in the drain, not visited.
        assert counters["wakes_skipped"] == 2
        assert counters["component_wakes"] == 0

    def test_wake_unregistered_or_passive_raises(self):
        kernel = SimKernel()
        with pytest.raises(KeyError, match="unregistered"):
            kernel.wake(Recorder("ghost", []))
        passive = Recorder("passive", [])
        kernel.register(passive, passive=True)
        with pytest.raises(ValueError, match="passive"):
            kernel.wake(passive)


class TestEventTickInvariance:
    """The two schedulers must be observationally identical: same
    deliveries, same cycle counts, same counters (minus the ``kernel``
    idle-efficiency group, which measures the scheduler itself)."""

    @staticmethod
    def _drain(event_driven):
        kernel = SimKernel(event_driven=event_driven)
        network = Network(NocConfig(width=4, height=4), kernel=kernel)
        delivered = []
        network.set_delivery_handler(
            lambda node, p: delivered.append((node, p.src, p.dst))
        )
        for i in range(12):
            network.send(Packet(PacketType.REQUEST, i % 16, (i * 5 + 3) % 16))
        network.run_until_quiescent(max_cycles=10_000)
        snapshot = dict(network.kernel.stats.snapshot())
        snapshot.pop("kernel", None)
        return delivered, snapshot, network.cycle

    def test_network_drain_is_mode_invariant(self):
        event = self._drain(event_driven=True)
        tick = self._drain(event_driven=False)
        assert event == tick

    @staticmethod
    def _recovered_drop(event_driven):
        """A retransmission deadline (timed wakeup) firing mid-drain."""
        from repro.faults import FaultController, FaultPlan, ScheduledFault

        kernel = SimKernel(event_driven=event_driven)
        network = Network(
            NocConfig(width=4, height=4, retransmission=True, retx_timeout=64),
            kernel=kernel,
        )
        delivered = []
        network.set_delivery_handler(lambda node, p: delivered.append(p))
        network.attach_faults(
            FaultController(
                FaultPlan(
                    seed=1, scheduled=(ScheduledFault(cycle=1, kind="drop"),)
                ),
                raise_on_violation=False,
            )
        )
        for _ in range(3):
            network.tick()  # arm the scheduled drop
        line = bytes(range(64))
        network.send(
            Packet(
                PacketType.RESPONSE, 0, 15, line=line,
                compressible=True, decompress_at_dst=True,
            )
        )
        network.run_until_quiescent(max_cycles=50_000)
        return delivered, network

    def test_retx_deadline_fires_identically_in_both_modes(self):
        event_delivered, event_net = self._recovered_drop(event_driven=True)
        tick_delivered, tick_net = self._recovered_drop(event_driven=False)
        # The drop really forced the retransmission timer to fire ...
        assert event_net.recovered.retransmissions >= 1
        # ... and both schedulers recovered identically.
        assert len(event_delivered) == len(tick_delivered) == 1
        assert event_delivered[0].line == tick_delivered[0].line
        assert (
            event_net.recovered.retransmissions
            == tick_net.recovered.retransmissions
        )
        assert event_net.cycle == tick_net.cycle


class TestNetworkOnKernel:
    def test_network_registers_phases_in_order(self):
        network = Network(NocConfig(width=2, height=2))
        assert network.kernel.phases() == (
            "net.frame",
            "net.arrivals",
            "net.routers",
            "net.nis",
            "net.delivery",
        )
        assert "network" in network.kernel.stats

    def test_network_counters_via_registry(self):
        network = Network(NocConfig(width=2, height=2))
        network.set_delivery_handler(lambda node, p: None)
        network.send(Packet(PacketType.REQUEST, 0, 3))
        network.run_until_quiescent()
        flat = network.kernel.stats.snapshot().flat()
        assert flat["packets_injected"] == 1
        assert flat["flits_ejected"] >= 1
        assert flat["cycles"] == network.cycle

    def test_wedge_snapshot_attached_to_drain_failure(self):
        network = Network(NocConfig(width=2, height=2))
        # A head flit whose tail never arrives: the router binds the packet
        # and waits forever, so the drain loop must wedge and explain where.
        packet = Packet(PacketType.RESPONSE, 0, 3, line=b"\x00" * 64)
        packet.injected_cycle = 0
        vc = network.routers[3].all_vcs[0]
        network.schedule_arrival(1, vc, packet, is_head=True, is_tail=False)
        with pytest.raises(RuntimeError) as excinfo:
            network.run_until_quiescent(max_cycles=200)
        message = str(excinfo.value)
        assert "wedge snapshot" in message
        assert "router 3" in message
        assert "RESPONSE" in message
        assert "0->3" in message

    def test_wedge_snapshot_reports_inflight_link_flits(self):
        network = Network(NocConfig(width=2, height=2))
        packet = Packet(PacketType.REQUEST, 0, 3)
        vc = network.routers[3].all_vcs[0]
        # Scheduled far in the future: stays "in flight" past the deadline.
        network.schedule_arrival(10_000, vc, packet, is_head=True, is_tail=True)
        with pytest.raises(RuntimeError, match="link flits in flight: 1"):
            network.run_until_quiescent(max_cycles=100)
