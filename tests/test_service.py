"""Tests for the always-on campaign service (:mod:`repro.service`).

Covers the admission layer (token buckets, queue-depth backpressure,
structured ``Overloaded`` sheds), the work-stealing scheduler (priority
ordering, retries, crash-loop quarantine, result streaming), the
cross-process file lock, and the stdlib HTTP frontend — all with the
same tiny specs the runner tests use, so the whole suite stays fast.
"""

import contextlib
import heapq
import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.experiments import runner
from repro.experiments.lockfile import FileLock, LockTimeout
from repro.experiments.runner import (
    RunSpec,
    clear_cache,
    clear_disk_cache,
    result_digest,
    run_spec,
    spec_key,
)
from repro.service import (
    CampaignService,
    Overloaded,
    OverloadedError,
    ServiceClient,
    serve,
    spec_from_payload,
)
from repro.service.admission import AdmissionController, TokenBucket
from repro.service.jobs import Job

#: Small enough to keep each simulation around a tenth of a second.
QUICK = dict(workload="x264", accesses_per_core=40)


@pytest.fixture(autouse=True)
def _fresh(tmp_path, monkeypatch):
    """Each test gets a private cache dir and a clean environment."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    for var in (
        "REPRO_DISK_CACHE",
        "REPRO_JOBS",
        "REPRO_RUNNER_FAULT",
        "REPRO_SPEC_TIMEOUT",
        "REPRO_RETRY_BACKOFF",
        "REPRO_QUARANTINE_AFTER",
        "REPRO_WATCHDOG_SECONDS",
        "REPRO_HEARTBEAT_DIR",
        "REPRO_SIM_LOG",
    ):
        monkeypatch.delenv(var, raising=False)
    clear_cache()
    yield
    clear_cache()


class FakeClock:
    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@contextlib.contextmanager
def running_service(**kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("rate", 1000.0)
    kwargs.setdefault("burst", 1000.0)
    service = CampaignService(**kwargs).start()
    try:
        yield service
    finally:
        service.shutdown(drain=False, timeout=10.0)


def _collect(job):
    """Stream a job to completion; returns (results, failures, done)."""
    results, failures, done = [], [], None
    for event in job.stream(timeout=60.0):
        if event["type"] == "result":
            results.append(event)
        elif event["type"] == "failed":
            failures.append(event)
        elif event["type"] == "done":
            done = event
        elif event["type"] == "timeout":
            raise AssertionError("job stream timed out")
    return results, failures, done


# --------------------------------------------------------------------------
# admission control
# --------------------------------------------------------------------------


class TestTokenBucket:
    def test_burst_then_deny_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=4.0, clock=clock)
        assert bucket.take(4.0)  # the whole burst at once
        assert not bucket.take(1.0)  # empty: denied, nothing spent
        clock.advance(0.5)  # 2/s * 0.5s = 1 token back
        assert bucket.take(1.0)
        assert not bucket.take(0.5)

    def test_refill_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=3.0, clock=clock)
        clock.advance(60.0)
        assert bucket.tokens == 3.0

    def test_refill_delay_is_exact(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=4.0, burst=8.0, clock=clock)
        assert bucket.refill_delay(2.0) == 0.0
        bucket.take(8.0)
        # 6 tokens short at 4/s = 1.5s.
        assert bucket.refill_delay(6.0) == pytest.approx(1.5)

    def test_failed_take_spends_nothing(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        assert not bucket.take(5.0)
        assert bucket.tokens == 2.0


class TestAdmissionController:
    def test_too_large_submission_is_futile(self):
        control = AdmissionController(max_queue_depth=8, clock=FakeClock())
        decision = control.admit("alice", units=9, queue_depth=0)
        assert decision is not None
        assert decision.reason == "too_large"
        assert control.stats.shed_too_large == 1
        assert control.stats.units_shed == 9

    def test_queue_full_hint_scales_with_drain_rate(self):
        control = AdmissionController(
            rate=100.0, burst=100.0, max_queue_depth=10, clock=FakeClock()
        )
        # 8 queued + 4 new = 2 over the bound, draining 4/s -> 0.5s hint.
        decision = control.admit("a", units=4, queue_depth=8, drain_rate=4.0)
        assert decision.reason == "queue_full"
        assert decision.retry_after == pytest.approx(0.5)
        # No drain-rate signal falls back to the 1s default.
        decision = control.admit("a", units=4, queue_depth=8, drain_rate=0.0)
        assert decision.retry_after == pytest.approx(1.0)

    def test_exactly_at_the_bound_admits(self):
        control = AdmissionController(
            rate=100.0, burst=100.0, max_queue_depth=10, clock=FakeClock()
        )
        assert control.admit("a", units=4, queue_depth=6) is None
        assert control.stats.jobs_admitted == 1

    def test_rate_limited_hint_is_the_refill_time(self):
        clock = FakeClock()
        control = AdmissionController(
            rate=2.0, burst=4.0, max_queue_depth=100, clock=clock
        )
        assert control.admit("bob", units=4, queue_depth=0) is None
        decision = control.admit("bob", units=2, queue_depth=0)
        assert decision.reason == "rate_limited"
        assert decision.retry_after == pytest.approx(1.0)  # 2 short at 2/s
        # The shed spent nothing: after exactly that long, the retry wins.
        clock.advance(1.0)
        assert control.admit("bob", units=2, queue_depth=0) is None

    def test_clients_have_independent_buckets(self):
        control = AdmissionController(
            rate=1.0, burst=1.0, max_queue_depth=100, clock=FakeClock()
        )
        assert control.admit("a", units=1, queue_depth=0) is None
        assert control.admit("a", units=1, queue_depth=0) is not None
        assert control.admit("b", units=1, queue_depth=0) is None

    def test_retry_after_is_capped(self):
        control = AdmissionController(
            rate=0.001, burst=1.0, max_queue_depth=2000, clock=FakeClock()
        )
        control.admit("a", units=1, queue_depth=0)
        decision = control.admit("a", units=1, queue_depth=0)
        assert decision.retry_after == AdmissionController.MAX_RETRY_AFTER

    def test_overloaded_payload_shape(self):
        decision = Overloaded(
            reason="queue_full", retry_after=1.2345, client="c", detail="d"
        )
        payload = decision.to_dict()
        assert payload == {
            "error": "overloaded",
            "reason": "queue_full",
            "retry_after": 1.234,
            "client": "c",
            "detail": "d",
        }


# --------------------------------------------------------------------------
# the cross-process file lock
# --------------------------------------------------------------------------


class TestFileLock:
    def test_mutual_exclusion_and_timeout(self, tmp_path):
        path = tmp_path / "x.lock"
        first = FileLock(path, timeout=1.0)
        second = FileLock(path, timeout=0.2, poll_interval=0.01)
        first.acquire()
        with pytest.raises(LockTimeout):
            second.acquire()
        first.release()
        second.acquire()  # released -> immediately acquirable
        second.release()

    def test_stale_lock_is_taken_over(self, tmp_path):
        path = tmp_path / "x.lock"
        holder = FileLock(path, timeout=0.5)
        holder.acquire()  # simulate a SIGKILLed holder: never released
        old = time.time() - 120.0
        os.utime(path, (old, old))
        taker = FileLock(path, stale_seconds=1.0, timeout=2.0)
        taker.acquire()
        assert taker.takeovers == 1
        assert taker.held
        taker.release()
        assert not path.exists()

    def test_fresh_lock_is_not_stolen(self, tmp_path):
        path = tmp_path / "x.lock"
        holder = FileLock(path, timeout=0.5)
        holder.acquire()
        taker = FileLock(
            path, stale_seconds=60.0, timeout=0.2, poll_interval=0.01
        )
        with pytest.raises(LockTimeout):
            taker.acquire()
        assert taker.takeovers == 0
        holder.release()

    def test_context_manager_releases_on_error(self, tmp_path):
        path = tmp_path / "x.lock"
        with pytest.raises(RuntimeError):
            with FileLock(path):
                assert path.exists()
                raise RuntimeError("boom")
        assert not path.exists()


# --------------------------------------------------------------------------
# job model
# --------------------------------------------------------------------------


class TestJobModel:
    def test_unknown_spec_fields_are_rejected_by_name(self):
        with pytest.raises(ValueError, match="acesses_per_core"):
            spec_from_payload(
                {"scheme": "baseline", "workload": "x264",
                 "acesses_per_core": 40}
            )

    def test_spec_needs_scheme_and_workload(self):
        with pytest.raises(ValueError, match="scheme"):
            spec_from_payload({"workload": "x264"})

    def test_late_joiner_replays_full_history(self):
        job = Job("c", 5, [("spec", RunSpec(scheme="baseline", **QUICK))])
        job.publish({"type": "result", "index": 0, "job": job.job_id})
        job.publish({"type": "done", "job": job.job_id})
        # Joined after completion: the stream replays everything, in order.
        events = list(job.stream(timeout=1.0))
        assert [e["type"] for e in events] == ["result", "done"]
        assert job.state == "done"

    def test_stream_timeout_yields_synthetic_event(self):
        job = Job("c", 5, [("spec", RunSpec(scheme="baseline", **QUICK))])
        events = list(job.stream(timeout=0.05, poll=0.01))
        assert events[-1]["type"] == "timeout"

    def test_claim_done_fires_exactly_once(self):
        job = Job("c", 5, [("spec", RunSpec(scheme="baseline", **QUICK))])
        assert not job.claim_done()  # nothing resolved yet
        job.publish({"type": "result", "index": 0, "job": job.job_id})
        assert job.claim_done()
        assert not job.claim_done()


# --------------------------------------------------------------------------
# the scheduler, end to end
# --------------------------------------------------------------------------


class TestCampaignService:
    def test_sweep_completes_with_bit_identical_digests(self):
        specs = [
            RunSpec(scheme="baseline", **QUICK),
            RunSpec(scheme="disco", **QUICK),
        ]
        # Golden digests from the in-process runner, then a cold start.
        expected = {
            spec_key(s): result_digest(run_spec(s)) for s in specs
        }
        clear_cache()
        clear_disk_cache()
        with running_service() as service:
            job = service.submit(specs=specs, client="tests")
            assert isinstance(job, Job)
            results, failures, done = _collect(job)
            assert failures == []
            assert done["completed"] == 2 and done["failed"] == 0
            for event in results:
                assert event["digest"] == expected[event["key"]]
                assert event["cached"] is False
            # Same sweep again: served from the caches, same digests.
            again = service.submit(specs=specs, client="tests")
            results2, _, _ = _collect(again)
            assert {e["key"]: e["digest"] for e in results2} == expected
            assert all(e["cached"] for e in results2)
            assert service.stats.cache_hits == 2
            assert service.stats.jobs_completed == 2
            # Spec units flow through the campaign journal.
            entries = runner._journal_read()
            for spec in specs:
                assert entries[spec_key(spec)]["state"] == "done"

    def test_accepts_client_dict_specs(self):
        with running_service(workers=1) as service:
            job = service.submit(
                specs=[dict(scheme="baseline", **QUICK)], client="dicts"
            )
            results, failures, _ = _collect(job)
            assert len(results) == 1 and not failures

    def test_priority_preempts_fifo_order(self):
        service = CampaignService(workers=1, rate=1000.0, burst=1000.0)
        service._accepting = True  # queue deterministically before start
        low = service.submit(
            specs=[RunSpec(scheme="baseline", seed=s, **QUICK)
                   for s in (1, 2)],
            client="low",
            priority=9,
        )
        high = service.submit(
            specs=[RunSpec(scheme="disco", seed=s, **QUICK)
                   for s in (1, 2)],
            client="high",
            priority=0,
        )
        # Both queued before any worker runs: the single worker must
        # drain every priority-0 unit before the first priority-9 one.
        service.start()
        try:
            _collect(high)
            _collect(low)
            assert high.finished_ts <= low.finished_ts
        finally:
            service.shutdown(drain=False, timeout=10.0)

    def test_idle_worker_steals_from_backlogged_peer(self):
        service = CampaignService(workers=2, rate=1000.0, burst=1000.0)
        job = Job(
            "c",
            5,
            [
                ("spec", RunSpec(scheme="baseline", seed=s, **QUICK))
                for s in (1, 2)
            ],
        )
        # Pile both units onto worker 0's heap; worker 1 must steal.
        for unit in job.units:
            heapq.heappush(service._heaps[0], (unit.order_key(), unit))
        stolen = service._next_unit(1)
        assert stolen is job.units[0]  # best unit, not an arbitrary one
        assert service.stats.steals == 1
        assert service._next_unit(0) is job.units[1]
        assert service.stats.steals == 1  # own heap: no steal counted

    def test_transient_error_retries_then_succeeds(
        self, tmp_path, monkeypatch
    ):
        marker = tmp_path / "fault.marker"
        monkeypatch.setenv(
            "REPRO_RUNNER_FAULT", f"crash-once:baseline:x264:{marker}"
        )
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
        with running_service(workers=1) as service:
            job = service.submit(
                specs=[RunSpec(scheme="baseline", **QUICK)], client="retry"
            )
            results, failures, _ = _collect(job)
            assert len(results) == 1 and not failures
            assert service.stats.retries == 1
            assert service.stats.units_completed == 1

    def test_persistent_error_fails_after_bounded_retries(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_RUNNER_FAULT", "crash:baseline:x264")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
        with running_service(workers=1) as service:
            spec = RunSpec(scheme="baseline", **QUICK)
            job = service.submit(specs=[spec], client="fail")
            results, failures, _ = _collect(job)
            assert results == [] and len(failures) == 1
            assert "injected runner fault" in failures[0]["error"]
            assert failures[0]["quarantined"] is False
            assert service.stats.retries == 1  # one retry, then failed
            assert service.stats.units_failed == 1
            assert service.stats.jobs_failed == 1
            assert job.state == "failed"
            entries = runner._journal_read()
            assert entries[spec_key(spec)]["state"] == "failed"

    def test_worker_death_loop_quarantines_at_the_bound(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUNNER_FAULT", "exit:baseline:x264")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
        monkeypatch.setenv("REPRO_QUARANTINE_AFTER", "2")
        with running_service(workers=1) as service:
            spec = RunSpec(scheme="baseline", **QUICK)
            job = service.submit(specs=[spec], client="chaos")
            results, failures, _ = _collect(job)
            assert results == [] and len(failures) == 1
            assert failures[0]["quarantined"] is True
            assert "2 interrupted attempts" in failures[0]["error"]
            assert service.stats.units_quarantined == 1
            assert service.stats.retries == 1  # N-1 retries before the bound
            assert service.stats.worker_respawns >= 1
            entries = runner._journal_read()
            assert entries[spec_key(spec)]["state"] == "quarantined"

    def test_queue_full_and_too_large_shed(self):
        service = CampaignService(
            workers=1, rate=1000.0, burst=1000.0, max_queue_depth=3
        )
        # Not started: admitted units stay queued, so depth is exact.
        service._accepting = True
        job = service.submit(
            specs=[RunSpec(scheme="baseline", seed=s, **QUICK)
                   for s in (1, 2, 3)],
            client="bulk",
        )
        assert isinstance(job, Job)
        shed = service.submit(
            specs=[RunSpec(scheme="disco", **QUICK)], client="late"
        )
        assert isinstance(shed, Overloaded)
        assert shed.reason == "queue_full"
        assert shed.retry_after >= 0.1
        too_big = service.submit(
            specs=[RunSpec(scheme="disco", seed=s, **QUICK)
                   for s in (1, 2, 3, 4)],
            client="huge",
        )
        assert too_big.reason == "too_large"
        stats = service.admission.stats
        assert stats.jobs_admitted == 1
        assert stats.jobs_shed == 2
        assert stats.shed_queue_full == 1
        assert stats.shed_too_large == 1

    def test_rate_limited_shed_carries_refill_hint(self):
        service = CampaignService(workers=1, rate=0.5, burst=2.0)
        service._accepting = True  # admission runs without workers
        for index in range(2):
            job = service.submit(
                specs=[RunSpec(scheme="baseline", seed=index, **QUICK)],
                client="greedy",
            )
            assert isinstance(job, Job)
        shed = service.submit(
            specs=[RunSpec(scheme="baseline", seed=9, **QUICK)],
            client="greedy",
        )
        assert isinstance(shed, Overloaded)
        assert shed.reason == "rate_limited"
        assert 0.05 <= shed.retry_after <= 2.0
        assert service.admission.stats.shed_rate_limited == 1

    def test_shutdown_drains_then_refuses_submissions(self):
        with running_service(workers=1) as service:
            job = service.submit(
                specs=[RunSpec(scheme="baseline", **QUICK)], client="c"
            )
            assert service.shutdown(drain=True, timeout=30.0)
            assert job.finished()
            shed = service.submit(
                specs=[RunSpec(scheme="disco", **QUICK)], client="c"
            )
            assert isinstance(shed, Overloaded)
            assert "shutting down" in shed.detail

    def test_counters_flow_through_the_registry(self):
        with running_service(workers=1) as service:
            job = service.submit(
                specs=[RunSpec(scheme="baseline", **QUICK)], client="c"
            )
            _collect(job)
            snapshot = service.snapshot().to_dict()
            assert snapshot["service"]["units_completed"] == 1
            assert snapshot["service"]["queue_age_samples"] == 1
            assert snapshot["admission"]["jobs_admitted"] == 1
            assert service.series.mean("queue_age_ms", 60.0) >= 0.0

    def test_campaign_units_run_through_the_pool(self):
        payload = {
            "spec": {
                "width": 2,
                "height": 2,
                "cycles": 200,
                "injection_rate": 0.05,
            },
            "plan": {"seed": 1, "drop_rate": 0.02},
        }
        with running_service(workers=1) as service:
            job = service.submit(campaigns=[payload], client="faults")
            results, failures, _ = _collect(job)
            assert not failures
            summary = results[0]["campaign"]
            assert summary["kind"] == "fault_campaign"
            assert summary["cycles_run"] >= 200
            assert summary["packets_sent"] > 0

    def test_malformed_campaign_payload_fails_the_unit(self):
        with running_service(workers=1, error_retries=0) as service:
            job = service.submit(
                campaigns=[{"plan": {"seed": 1, "bogus_knob": 3}}],
                client="faults",
            )
            results, failures, _ = _collect(job)
            assert results == [] and len(failures) == 1
            assert "bogus_knob" in failures[0]["error"]

    def test_two_services_share_one_cache_without_corruption(self):
        spec = RunSpec(scheme="baseline", **QUICK)
        with running_service(workers=1) as a, running_service(workers=1) as b:
            job_a = a.submit(specs=[spec], client="a")
            job_b = b.submit(specs=[spec], client="b")
            results_a, failures_a, _ = _collect(job_a)
            results_b, failures_b, _ = _collect(job_b)
        assert not failures_a and not failures_b
        assert results_a[0]["digest"] == results_b[0]["digest"]
        cache = runner.cache_dir()
        assert not list(cache.glob("*.corrupt"))
        assert not list(cache.glob("*.tmp"))


# --------------------------------------------------------------------------
# the HTTP frontend
# --------------------------------------------------------------------------


@pytest.fixture
def http_service():
    service = CampaignService(workers=2, rate=1000.0, burst=1000.0).start()
    server = serve(service, "127.0.0.1", 0)
    port = server.server_address[1]
    client = ServiceClient(f"http://127.0.0.1:{port}", timeout=60.0)
    try:
        yield service, client, port
    finally:
        server.shutdown()
        server.server_close()
        service.shutdown(drain=False, timeout=10.0)


class TestServiceHTTP:
    def test_submit_stream_status_stats_roundtrip(self, http_service):
        service, client, _ = http_service
        job_id = client.submit(
            specs=[
                dict(scheme="baseline", **QUICK),
                dict(scheme="disco", **QUICK),
            ],
            client="http-tests",
        )
        results, failures = client.wait(job_id)
        assert len(results) == 2 and failures == []
        assert {event["scheme"] for event in results} == {
            "baseline", "disco",
        }
        assert all(event["digest"] for event in results)
        status = client.status(job_id)
        assert status["state"] == "done"
        assert status["completed"] == 2
        stats = client.stats()
        assert stats["counters"]["service"]["units_completed"] == 2
        assert "queue_age_ms_mean_60s" in stats
        ok, _ = client.health("live")
        assert ok
        ok, detail = client.health("ready")
        assert ok and detail["workers_alive"]

    def test_bad_requests_get_structured_errors(self, http_service):
        _, client, port = http_service
        with pytest.raises(RuntimeError, match="unknown RunSpec fields"):
            client.submit(
                specs=[{"scheme": "baseline", "workload": "x264",
                        "bogus_field": 1}]
            )
        with pytest.raises(RuntimeError, match="404"):
            client.status("nonexistent")
        # Unknown routes 404 too.
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/nope", method="GET"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 404

    def test_shed_is_fast_structured_and_carries_retry_after(self):
        service = CampaignService(workers=1, rate=0.01, burst=1.0).start()
        server = serve(service, "127.0.0.1", 0)
        port = server.server_address[1]
        client = ServiceClient(f"http://127.0.0.1:{port}", timeout=10.0)
        try:
            client.submit(specs=[dict(scheme="baseline", **QUICK)],
                          client="greedy")
            started = time.monotonic()
            with pytest.raises(OverloadedError) as excinfo:
                client.submit(specs=[dict(scheme="disco", **QUICK)],
                              client="greedy")
            elapsed = time.monotonic() - started
            assert elapsed < 1.0  # sheds answer fast, even under load
            assert excinfo.value.reason == "rate_limited"
            assert excinfo.value.retry_after > 0
            # The raw response carries the Retry-After header as well.
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/submit",
                data=json.dumps(
                    {"client": "greedy",
                     "specs": [dict(scheme="disco", **QUICK)]}
                ).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as http_info:
                urllib.request.urlopen(request, timeout=10)
            assert http_info.value.code == 429
            assert float(http_info.value.headers["Retry-After"]) > 0
        finally:
            server.shutdown()
            server.server_close()
            service.shutdown(drain=False, timeout=10.0)


class TestServiceCLI:
    def test_main_serves_then_exits_cleanly_on_sigterm(self, tmp_path):
        port_file = tmp_path / "port"
        env = dict(os.environ)
        env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parents[1] / "src"
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.service",
                "--host", "127.0.0.1", "--port", "0",
                "--workers", "1", "--port-file", str(port_file),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
        )
        try:
            deadline = time.monotonic() + 30.0
            while not port_file.exists():
                assert process.poll() is None, process.stdout.read().decode()
                assert time.monotonic() < deadline, "service never came up"
                time.sleep(0.05)
            port = int(port_file.read_text())
            client = ServiceClient(f"http://127.0.0.1:{port}", timeout=30.0)
            ok, _ = client.health("ready")
            assert ok
            job_id = client.submit(
                specs=[dict(scheme="baseline", **QUICK)], client="cli"
            )
            results, failures = client.wait(job_id)
            assert len(results) == 1 and not failures
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30.0) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10.0)
