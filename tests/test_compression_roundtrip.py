"""Property-based round-trip tests for every compression algorithm.

The single most important invariant of the compression substrate: for any
64-byte line, ``decompress(compress(line)) == line`` and the reported size
never exceeds raw + the 1-bit tag.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import available_algorithms, get_algorithm
from repro.workloads.patterns import PATTERN_GENERATORS, generate_line

LINE = 64


def algorithms():
    return [get_algorithm(name, cached=False) for name in available_algorithms()]


@pytest.fixture(scope="module", params=available_algorithms())
def algorithm(request):
    return get_algorithm(request.param, cached=False)


@given(data=st.binary(min_size=LINE, max_size=LINE))
@settings(max_examples=60, deadline=None)
def test_roundtrip_random_bytes(data):
    for algo in algorithms():
        compressed = algo.compress(data)
        assert algo.decompress(compressed) == data
        assert compressed.size_bits <= 8 * LINE + 1
        assert compressed.size_bits >= 1


@given(
    pattern=st.sampled_from(sorted(PATTERN_GENERATORS)),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=120, deadline=None)
def test_roundtrip_patterned_lines(pattern, seed):
    line = generate_line(pattern, random.Random(seed), LINE)
    for algo in algorithms():
        compressed = algo.compress(line)
        assert algo.decompress(compressed) == line, (algo.name, pattern)


def test_zero_line_is_tiny_everywhere(algorithm):
    compressed = algorithm.compress(b"\x00" * LINE)
    assert compressed.compressible
    # Word-flag schemes (FVC) need a flag+index per word: 9 bytes worst.
    assert compressed.size_bytes <= 9


def test_sizes_are_deterministic(algorithm):
    rng = random.Random(3)
    for pattern in sorted(PATTERN_GENERATORS):
        line = generate_line(pattern, random.Random(17), LINE)
        first = algorithm.compress(line)
        second = algorithm.compress(line)
        assert first.size_bits == second.size_bits


def test_ratio_ordering_on_corpus():
    """The Table 1 landscape: statistical > delta-family > word-flag."""
    from repro.workloads import PARSEC_BENCHMARKS
    from repro.workloads.corpus import ValuePool

    ratios = {}
    for name in ("sc2", "delta", "fpc", "sfpc", "zero"):
        raw = comp = 0
        for profile in list(PARSEC_BENCHMARKS.values())[::3]:
            pool = ValuePool(profile, seed=2)
            algo = get_algorithm(name)
            if name == "sc2":
                algo.train(pool.sample(300, seed=5))
            for line in pool.sample(120, seed=9):
                raw += LINE
                comp += algo.compress(line).size_bytes
        ratios[name] = raw / comp
    assert ratios["sc2"] > ratios["delta"] > ratios["sfpc"]
    assert ratios["fpc"] > ratios["sfpc"] > ratios["zero"]
    # Everything should actually compress this corpus.
    assert all(r > 1.1 for r in ratios.values())
