"""Tests for value patterns, profiles, the value pool and trace generation."""

import random

import pytest
from hypothesis import strategies as st

from repro.workloads import (
    PARSEC_BENCHMARKS,
    ValuePool,
    WorkloadProfile,
    generate_line,
    generate_traces,
    get_profile,
    sample_corpus,
)
from repro.workloads.patterns import PATTERN_GENERATORS
from repro.workloads.trace import PRIVATE_BASE


class TestPatterns:
    @pytest.mark.parametrize("pattern", sorted(PATTERN_GENERATORS))
    def test_line_size(self, pattern):
        line = generate_line(pattern, random.Random(1), 64)
        assert len(line) == 64

    def test_unknown_pattern(self):
        with pytest.raises(KeyError):
            generate_line("nope", random.Random(1))

    def test_determinism(self):
        for pattern in PATTERN_GENERATORS:
            a = generate_line(pattern, random.Random(42), 64)
            b = generate_line(pattern, random.Random(42), 64)
            assert a == b

    def test_zero_line_is_zero(self):
        assert generate_line("zero", random.Random(0)) == b"\x00" * 64

    def test_pointer_lines_share_region_bases(self):
        """Pointers across lines fall into a small set of heap regions."""
        uppers = set()
        for seed in range(50):
            line = generate_line("pointer", random.Random(seed), 64)
            for i in range(0, 64, 8):
                value = int.from_bytes(line[i : i + 8], "little")
                uppers.add(value >> 24)
        assert len(uppers) <= 16

    def test_random_line_incompressible(self):
        from repro.compression import get_algorithm

        line = generate_line("random", random.Random(7), 64)
        compressed = get_algorithm("delta", cached=False).compress(line)
        assert not compressed.compressible


class TestProfiles:
    def test_thirteen_parsec_benchmarks(self):
        assert len(PARSEC_BENCHMARKS) == 13
        for name in ("blackscholes", "canneal", "x264", "streamcluster"):
            assert name in PARSEC_BENCHMARKS

    def test_get_profile_unknown(self):
        with pytest.raises(KeyError):
            get_profile("doom3")

    def test_pattern_mix_names_valid(self):
        for profile in PARSEC_BENCHMARKS.values():
            for pattern in profile.pattern_mix:
                assert pattern in PATTERN_GENERATORS

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadProfile(
                name="bad", pattern_mix={}, working_set_lines=100,
                shared_fraction=0.1, read_fraction=0.5, locality=0.5,
                sequential_run=1, mean_gap=1.0,
            )
        with pytest.raises(ValueError):
            WorkloadProfile(
                name="bad", pattern_mix={"zero": 1}, working_set_lines=100,
                shared_fraction=1.5, read_fraction=0.5, locality=0.5,
                sequential_run=1, mean_gap=1.0,
            )

    def test_normalized_mix_cumulative(self):
        profile = get_profile("ferret")
        mix = profile.normalized_mix()
        assert mix[-1][1] == pytest.approx(1.0)
        values = [c for _, c in mix]
        assert values == sorted(values)


class TestValuePool:
    def test_line_deterministic(self):
        pool_a = ValuePool(get_profile("dedup"), seed=3)
        pool_b = ValuePool(get_profile("dedup"), seed=3)
        for addr in (0, 17, 123456):
            assert pool_a.line(addr) == pool_b.line(addr)

    def test_different_seeds_differ(self):
        profile = get_profile("dedup")
        lines_a = [ValuePool(profile, seed=1).line(a) for a in range(20)]
        lines_b = [ValuePool(profile, seed=2).line(a) for a in range(20)]
        assert lines_a != lines_b

    def test_write_advances_version(self):
        pool = ValuePool(get_profile("dedup"), seed=3)
        original = pool.line(5)
        updated = pool.fresh_write_value(5)
        assert pool.line(5) == updated
        again = pool.fresh_write_value(5)
        assert pool.line(5) == again
        # versions are deterministic too
        pool_b = ValuePool(get_profile("dedup"), seed=3)
        pool_b.line(5)
        assert pool_b.fresh_write_value(5) == updated

    def test_sample_sizes(self):
        pool = ValuePool(get_profile("vips"), seed=1)
        sample = pool.sample(37)
        assert len(sample) == 37
        assert all(len(line) == 64 for line in sample)

    def test_sample_corpus(self):
        corpus = sample_corpus(
            list(PARSEC_BENCHMARKS.values())[:3], lines_per_profile=10
        )
        assert len(corpus) == 30


class TestTraces:
    def test_determinism(self):
        profile = get_profile("x264")
        a = generate_traces(profile, 4, 100, seed=9)
        b = generate_traces(profile, 4, 100, seed=9)
        assert a.traces == b.traces

    def test_shape_with_sweep(self):
        profile = get_profile("x264")
        ts = generate_traces(profile, 4, 100, seed=9, warmup_sweep=True)
        assert ts.n_cores == 4
        assert len(ts.sweep_lengths) == 4
        for trace, sweep in zip(ts.traces, ts.sweep_lengths):
            assert len(trace) == sweep + 100
            assert sweep > 0
            # sweep prefix is all reads with gap 1
            for access in trace[:sweep]:
                assert not access.is_write
                assert access.gap == 1

    def test_no_sweep_by_default(self):
        """LLC warm-start uses CmpSystem prefill, not a trace sweep."""
        profile = get_profile("x264")
        ts = generate_traces(profile, 2, 50, seed=9)
        assert ts.sweep_lengths == [0, 0]
        assert all(len(t) == 50 for t in ts.traces)

    def test_address_regions_disjoint(self):
        profile = get_profile("bodytrack")
        ts = generate_traces(profile, 4, 300, seed=5)
        shared_limit = int(
            profile.working_set_lines * 0.25
        ) + 16  # generous bound
        for core, trace in enumerate(ts.traces):
            base = PRIVATE_BASE * (core + 1)
            for access in trace:
                addr = access.address
                private = base <= addr < base + (1 << 31)
                shared = 0 <= addr <= shared_limit
                assert private or shared, hex(addr)

    def test_gaps_positive(self):
        ts = generate_traces(get_profile("dedup"), 2, 200, seed=1)
        assert all(a.gap >= 1 for t in ts.traces for a in t)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_traces(get_profile("dedup"), 0, 10)

    def test_writes_match_read_fraction_roughly(self):
        profile = get_profile("dedup")  # read_fraction 0.58
        ts = generate_traces(profile, 2, 4000, seed=3, warmup_sweep=False)
        writes = sum(a.is_write for t in ts.traces for a in t)
        total = sum(len(t) for t in ts.traces)
        assert 0.3 < writes / total < 0.55
