"""Directory/L1 protocol tests driven through a stub system.

The stub delivers messages synchronously (zero-latency network, immediate
events), so each test exercises one protocol scenario deterministically —
including the grant/recall and writeback races the tile defers.
"""

from repro.cmp.bank import DIR_M, DIR_S, DIR_U, HomeBank
from repro.cmp.config import SystemConfig
from repro.cmp.core_model import CoreModel
from repro.cmp.messages import Message, MessageKind
from repro.cmp.schemes import make_scheme
from repro.cmp.tile import Tile
from repro.workloads import ValuePool, get_profile
from repro.workloads.trace import MemoryAccess


class StubSystem:
    """Synchronous in-place 'network': messages dispatch immediately."""

    def __init__(self, scheme_name="baseline", n_nodes=4):
        self.config = SystemConfig.scaled_mesh(2, 2)
        self.scheme = make_scheme(scheme_name)
        self.algorithm = self.scheme.make_algorithm()
        self.pool = ValuePool(get_profile("blackscholes"), seed=1)
        self.cycle = 0
        self.tiles = {}
        self.banks = {}
        self.memory_store = {}
        self.sent = []  # full message log
        self._deferred = []

    def memory_line(self, addr):
        return self.memory_store.setdefault(addr, self.pool.line(addr))

    def schedule(self, delay, fn, *args):
        self._deferred.append((fn, args))

    def run_deferred(self):
        while self._deferred:
            fn, args = self._deferred.pop(0)
            fn(*args)

    def send_message(self, msg, compressed_payload=None):
        self.sent.append(msg)
        kind = msg.kind
        if kind is MessageKind.MEM_READ:
            reply = Message(
                kind=MessageKind.MEM_DATA, addr=msg.addr,
                src=msg.dst, dst=msg.src, requester=msg.requester,
                data=self.memory_line(msg.addr),
            )
            self.send_message(reply)
            return
        if kind is MessageKind.MEM_WB:
            self.memory_store[msg.addr] = msg.data
            return
        if kind in (
            MessageKind.GETS, MessageKind.GETX, MessageKind.WB_DATA,
            MessageKind.INV_ACK, MessageKind.RECALL_DATA,
            MessageKind.RECALL_NACK, MessageKind.MEM_DATA,
        ):
            self.banks[msg.dst].handle(msg, None)
            self.run_deferred()
        else:
            self.tiles[msg.dst].handle(msg, None)
            self.run_deferred()


def build(n_tiles=4, scheme="baseline"):
    system = StubSystem(scheme)
    for node in range(n_tiles):
        core = CoreModel(node, [MemoryAccess(1, False, 0)], window=4)
        system.tiles[node] = Tile(node, system, core)
        system.banks[node] = HomeBank(node, system)
    return system


def gets(system, core, addr):
    system.tiles[core].l1.mshr.allocate(addr, False, system.cycle)
    system.tiles[core].core.outstanding += 1
    system.send_message(Message(
        kind=MessageKind.GETS, addr=addr, src=core,
        dst=system.config.home_node(addr), requester=core,
    ))


def getx(system, core, addr):
    system.tiles[core].l1.mshr.allocate(addr, True, system.cycle)
    system.tiles[core].core.outstanding += 1
    system.send_message(Message(
        kind=MessageKind.GETX, addr=addr, src=core,
        dst=system.config.home_node(addr), requester=core,
    ))


class TestReadSharing:
    def test_gets_fills_shared(self):
        system = build()
        gets(system, core=1, addr=0)
        line = system.tiles[1].l1.lookup(0)
        assert line is not None and line.state == "S"
        entry = system.banks[0].directory[0]
        assert entry.state == DIR_S and 1 in entry.sharers

    def test_multiple_readers_share(self):
        system = build()
        for core in (1, 2, 3):
            gets(system, core, 0)
        entry = system.banks[0].directory[0]
        assert entry.sharers == {1, 2, 3}
        assert system.memory_store  # fetched exactly once
        reads = [m for m in system.sent if m.kind is MessageKind.MEM_READ]
        assert len(reads) == 1

    def test_data_value_flows_from_memory(self):
        system = build()
        gets(system, 2, 0)
        assert system.tiles[2].l1.lookup(0).data == system.memory_line(0)


class TestWriteOwnership:
    def test_getx_invalidates_sharers(self):
        system = build()
        gets(system, 1, 0)
        gets(system, 2, 0)
        getx(system, 3, 0)
        entry = system.banks[0].directory[0]
        assert entry.state == DIR_M and entry.owner == 3
        assert system.tiles[1].l1.lookup(0) is None
        assert system.tiles[2].l1.lookup(0) is None
        assert system.tiles[3].l1.lookup(0).state == "M"
        invs = [m for m in system.sent if m.kind is MessageKind.INV]
        assert len(invs) == 2

    def test_store_commits_on_m_fill(self):
        system = build()
        getx(system, 1, 0)
        line = system.tiles[1].l1.lookup(0)
        assert line.dirty  # the waiting store committed

    def test_recall_moves_ownership(self):
        system = build()
        getx(system, 1, 0)
        written = system.tiles[1].l1.lookup(0).data
        gets(system, 2, 0)
        # owner 1 got recalled; 2 now shares the written value
        assert system.tiles[1].l1.lookup(0) is None
        assert system.tiles[2].l1.lookup(0).data == written
        entry = system.banks[0].directory[0]
        assert entry.state == DIR_S and entry.sharers == {2}
        recalls = [m for m in system.sent if m.kind is MessageKind.RECALL]
        assert len(recalls) == 1

    def test_upgrade_from_shared(self):
        system = build()
        gets(system, 1, 0)
        gets(system, 2, 0)
        getx(system, 2, 0)  # upgrade; INV goes to 1 only
        invs = [m for m in system.sent if m.kind is MessageKind.INV]
        assert [m.dst for m in invs] == [1]
        assert system.tiles[2].l1.lookup(0).state == "M"


class TestWritebacks:
    def test_wb_updates_bank_and_directory(self):
        system = build()
        getx(system, 1, 0)
        line = system.tiles[1].l1.lookup(0)
        system.tiles[1].l1.invalidate(0)
        system.tiles[1]._writeback(0, line.data)
        entry = system.banks[0].directory[0]
        assert entry.state == DIR_U
        stored = system.banks[0].array.lookup(0, touch=False)
        assert stored.data == line.data and stored.dirty

    def test_wb_race_with_recall_nack_path(self):
        """WB leaves; a GETS from another core recalls; NACK then WB."""
        system = build()
        getx(system, 1, 0)
        line = system.tiles[1].l1.lookup(0)
        data = line.data
        system.tiles[1].l1.invalidate(0)
        # Hold the WB back: simulate it being slower than the recall.
        bank = system.banks[0]
        gets_msg = Message(kind=MessageKind.GETS, addr=0, src=2, dst=0,
                           requester=2)
        system.tiles[2].l1.mshr.allocate(0, False, 0)
        system.tiles[2].core.outstanding += 1
        bank.handle(gets_msg, None)  # dir M@1 -> RECALL to 1 (delivered now)
        system.run_deferred()
        # tile 1 no longer has the line and wb is "in flight":
        # _recall already replied NACK because _wb_in_flight wasn't set...
        # now deliver the writeback.
        wb = Message(kind=MessageKind.WB_DATA, addr=0, src=1, dst=0,
                     data=data)
        bank.handle(wb, None)
        system.run_deferred()
        assert system.tiles[2].l1.lookup(0) is not None
        assert system.tiles[2].l1.lookup(0).data == data


class TestDiscoBankBehaviour:
    def test_bank_stores_compressed_and_sends_payload(self):
        system = build(scheme="disco")
        gets(system, 1, 0)
        stored = system.banks[0].array.lookup(0, touch=False)
        assert stored is not None
        assert stored.stored_bytes <= 64
        # compressible content -> compressed payload retained
        if stored.compressed_payload is not None:
            assert stored.stored_bytes == stored.compressed_payload.size_bytes

    def test_cc_counts_bank_compressor_ops(self):
        system = build(scheme="cc")
        gets(system, 1, 0)
        bank = system.banks[0]
        assert bank.side_stats.compressions >= 1  # fill compression
        gets(system, 2, 0)
        assert bank.side_stats.decompressions >= 1  # read decompression
