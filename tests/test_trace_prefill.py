"""Tests for trace tiering and the LLC prefill order."""

import pytest

from repro.workloads import generate_traces, get_profile
from repro.workloads.trace import PRIVATE_BASE


@pytest.fixture(scope="module")
def traces():
    return generate_traces(get_profile("canneal"), 4, 400, seed=3)


class TestTiering:
    def test_tiers_partition_regions(self, traces):
        tiers = {0: 0, 1: 0, 2: 0}
        for addr in traces.touched_addresses():
            tiers[traces._tier_of(addr)] += 1
        assert all(count > 0 for count in tiers.values())

    def test_hot_offsets_are_small(self, traces):
        for addr in traces.touched_addresses():
            if traces._tier_of(addr) == 2:
                offset = traces._region_offset(addr)
                n = (
                    traces.shared_lines
                    if addr < PRIVATE_BASE
                    else traces.private_lines
                )
                assert offset < max(1, int(n * 0.04)) + 1

    def test_region_offset(self, traces):
        assert traces._region_offset(5) == 5
        base = PRIVATE_BASE * 2
        assert traces._region_offset(base + 17) == 17


class TestPrefillOrder:
    def test_order_is_cold_to_hot(self, traces):
        order = traces.prefill_order()
        tiers = [traces._tier_of(addr) for addr in order]
        assert tiers == sorted(tiers)

    def test_order_covers_footprint_exactly(self, traces):
        order = traces.prefill_order()
        assert set(order) == traces.touched_addresses()
        assert len(order) == len(set(order))

    def test_same_tier_interleaves_regions(self, traces):
        """Warm lines of different regions alternate rather than block."""
        order = traces.prefill_order()
        warm = [a for a in order if traces._tier_of(a) == 1]
        # consecutive warm entries should frequently switch regions
        def region(addr):
            return addr // PRIVATE_BASE

        switches = sum(
            1
            for a, b in zip(warm, warm[1:])
            if region(a) != region(b)
        )
        assert switches > len(warm) // 4

    def test_deterministic(self, traces):
        again = generate_traces(get_profile("canneal"), 4, 400, seed=3)
        assert traces.prefill_order() == again.prefill_order()


@pytest.mark.parametrize("name", sorted(
    __import__("repro.workloads", fromlist=["PARSEC_BENCHMARKS"])
    .PARSEC_BENCHMARKS
))
def test_every_benchmark_generates(name):
    ts = generate_traces(get_profile(name), 2, 60, seed=1)
    assert ts.total_accesses == 120
    assert ts.prefill_order()
