"""Pattern-level tests for FPC and SFPC."""

from repro.compression.fpc import (
    FPCCompressor,
    SFPCCompressor,
    _HALF_PADDED,
    _REPEATED_BYTES,
    _SIGNED_1BYTE,
    _SIGNED_4BIT,
    _SIGNED_HALF,
    _TWO_HALF_BYTES,
    _UNCOMPRESSED,
    _classify,
)


def word_line(words):
    return b"".join(w.to_bytes(4, "little") for w in words)


class TestClassify:
    def test_4bit(self):
        assert _classify(5)[0] == _SIGNED_4BIT
        assert _classify(0xFFFFFFF9)[0] == _SIGNED_4BIT  # -7

    def test_byte(self):
        assert _classify(100)[0] == _SIGNED_1BYTE
        assert _classify(0xFFFFFF80)[0] == _SIGNED_1BYTE  # -128

    def test_halfword(self):
        assert _classify(30000)[0] == _SIGNED_HALF
        assert _classify(0xFFFF8000)[0] == _SIGNED_HALF

    def test_half_padded(self):
        assert _classify(0xABCD0000)[0] == _HALF_PADDED

    def test_two_half_bytes(self):
        word = (0x0042 << 16) | 0x00FF  # hmm low=0x00FF is +255: not byte
        # choose halves that sign-extend from a byte: 0x0011 and 0xFFF0
        word = (0xFFF0 << 16) | 0x0011
        assert _classify(word)[0] == _TWO_HALF_BYTES

    def test_repeated_bytes(self):
        assert _classify(0xABABABAB)[0] == _REPEATED_BYTES

    def test_uncompressed(self):
        assert _classify(0x12345678)[0] == _UNCOMPRESSED


class TestFPC:
    def test_zero_run_collapses(self):
        algo = FPCCompressor()
        line = word_line([0] * 16)
        compressed = algo.compress(line)
        # two runs of 8 (max run) -> 2 x (3 prefix + 3 data) + tag
        assert compressed.size_bits == 2 * 6 + 1
        assert algo.decompress(compressed) == line

    def test_mixed_patterns_roundtrip(self):
        words = [0, 0, 5, 100, 30000, 0xABCD0000, 0xABABABAB, 0x12345678,
                 0, 7, 0xFFFFFFFF, 0xFFFF8000, 3, 0, 0, 1]
        line = word_line(words)
        algo = FPCCompressor()
        compressed = algo.compress(line)
        assert algo.decompress(compressed) == line
        assert compressed.compressible

    def test_exact_size_for_known_line(self):
        # 8 zero words (one run) + 8 4-bit words
        words = [0] * 8 + [1] * 8
        algo = FPCCompressor()
        compressed = algo.compress(word_line(words))
        assert compressed.size_bits == (3 + 3) + 8 * (3 + 4) + 1


class TestSFPC:
    def test_patterns(self):
        algo = SFPCCompressor()
        words = [0, 100, 0xFFFFFF9C, 0x12345678] * 4
        line = word_line(words)
        compressed = algo.compress(line)
        assert algo.decompress(compressed) == line
        # per group of 4: zero (2) + byte (10) + byte (10) + raw (34)
        assert compressed.size_bits == 4 * (2 + 10 + 10 + 34) + 1

    def test_lower_ratio_than_fpc_on_halfword_data(self):
        """SFPC lacks the halfword patterns FPC has."""
        words = [20000 + i for i in range(16)]
        line = word_line(words)
        fpc = FPCCompressor().compress(line)
        sfpc = SFPCCompressor().compress(line)
        assert fpc.size_bits < sfpc.size_bits
