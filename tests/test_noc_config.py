"""NocConfig validation and derived-quantity tests."""

import pytest

from repro.noc.config import FlowControl, NocConfig


def test_defaults_match_table2():
    config = NocConfig()
    assert (config.width, config.height) == (4, 4)
    assert config.vcs_per_port == 2
    assert config.vc_depth == 8
    assert config.flit_bytes == 8
    assert config.flow_control is FlowControl.WORMHOLE
    assert config.topology == "mesh"
    assert config.make_routing().name == "xy"


def test_vnet_vc_partitioning():
    config = NocConfig(vnets=2, vcs_per_vnet=2)
    assert list(config.vnet_vcs(0)) == [0, 1]
    assert list(config.vnet_vcs(1)) == [2, 3]
    assert config.vcs_per_port == 4


def test_n_nodes():
    assert NocConfig(width=8, height=8).n_nodes == 64


@pytest.mark.parametrize(
    "kwargs",
    [
        {"width": 0},
        {"vnets": 0},
        {"vcs_per_vnet": 0},
        {"vc_depth": 0},
        {"flit_bytes": 0},
        {"link_latency": 0},
        {"ejection_bandwidth": 0},
        {"concentration": 0},
        {"max_line_bytes": 0},
        # Unknown fabric / routing names.
        {"topology": "hypercube"},
        {"routing": "spiral"},
        # Routing that does not fit the topology.
        {"topology": "ring", "routing": "xy", "vcs_per_vnet": 2},
        # Wrap-around fabrics too small to wrap.
        {"topology": "torus", "width": 1, "vcs_per_vnet": 2},
        {"topology": "ring", "width": 1, "height": 1, "vcs_per_vnet": 2},
        # Dateline routings need escape VCs.
        {"topology": "torus"},
        {"topology": "ring"},
        # VCT/SAF must hold a whole max-size packet per VC.
        {"flow_control": FlowControl.VIRTUAL_CUT_THROUGH, "vc_depth": 8},
        {"flow_control": FlowControl.STORE_AND_FORWARD, "vc_depth": 8},
        {
            "flow_control": FlowControl.VIRTUAL_CUT_THROUGH,
            "vc_depth": 9,
            "max_line_bytes": 128,
        },
    ],
)
def test_validation(kwargs):
    with pytest.raises(ValueError):
        NocConfig(**kwargs)


def test_max_packet_flits():
    assert NocConfig().max_packet_flits == 9  # head + 64/8 data flits
    assert NocConfig(flit_bytes=16).max_packet_flits == 5
    assert NocConfig(max_line_bytes=72).max_packet_flits == 10


def test_vct_accepts_whole_packet_buffers():
    config = NocConfig(
        flow_control=FlowControl.VIRTUAL_CUT_THROUGH, vc_depth=9
    )
    assert config.vc_depth == config.max_packet_flits


def test_escape_class_partitioning():
    config = NocConfig(topology="torus", vcs_per_vnet=2)
    assert list(config.escape_class_vcs(0, 0)) == [0]
    assert list(config.escape_class_vcs(0, 1)) == [1]
    assert list(config.escape_class_vcs(1, 0)) == [2]
    assert list(config.escape_class_vcs(1, 1)) == [3]
    # The two classes partition each vnet's VC range.
    for vnet in range(config.vnets):
        union = set(config.escape_class_vcs(vnet, 0)) | set(
            config.escape_class_vcs(vnet, 1)
        )
        assert union == set(config.vnet_vcs(vnet))


def test_fabric_n_nodes_per_topology():
    assert NocConfig(topology="torus", vcs_per_vnet=2).n_nodes == 16
    assert NocConfig(topology="ring", vcs_per_vnet=2).n_nodes == 16
    assert NocConfig(topology="cmesh", concentration=4).n_nodes == 64
    assert NocConfig(topology="cmesh", width=2, height=2).n_nodes == 16


def test_make_topology_matches_config():
    for kwargs in (
        {"topology": "mesh"},
        {"topology": "torus", "vcs_per_vnet": 2},
        {"topology": "ring", "vcs_per_vnet": 2},
        {"topology": "cmesh", "width": 2, "height": 2},
    ):
        config = NocConfig(**kwargs)
        topology = config.make_topology()
        assert topology.name == config.topology
        assert topology.n_nodes == config.n_nodes


def test_flow_control_values():
    assert FlowControl("wormhole") is FlowControl.WORMHOLE
    assert FlowControl("vct") is FlowControl.VIRTUAL_CUT_THROUGH
    assert FlowControl("saf") is FlowControl.STORE_AND_FORWARD
