"""NocConfig validation and derived-quantity tests."""

import pytest

from repro.noc.config import FlowControl, NocConfig


def test_defaults_match_table2():
    config = NocConfig()
    assert (config.width, config.height) == (4, 4)
    assert config.vcs_per_port == 2
    assert config.vc_depth == 8
    assert config.flit_bytes == 8
    assert config.flow_control is FlowControl.WORMHOLE


def test_vnet_vc_partitioning():
    config = NocConfig(vnets=2, vcs_per_vnet=2)
    assert list(config.vnet_vcs(0)) == [0, 1]
    assert list(config.vnet_vcs(1)) == [2, 3]
    assert config.vcs_per_port == 4


def test_n_nodes():
    assert NocConfig(width=8, height=8).n_nodes == 64


@pytest.mark.parametrize(
    "kwargs",
    [
        {"width": 0},
        {"vnets": 0},
        {"vcs_per_vnet": 0},
        {"vc_depth": 0},
        {"flit_bytes": 0},
        {"link_latency": 0},
        {"ejection_bandwidth": 0},
    ],
)
def test_validation(kwargs):
    with pytest.raises(ValueError):
        NocConfig(**kwargs)


def test_flow_control_values():
    assert FlowControl("wormhole") is FlowControl.WORMHOLE
    assert FlowControl("vct") is FlowControl.VIRTUAL_CUT_THROUGH
    assert FlowControl("saf") is FlowControl.STORE_AND_FORWARD
