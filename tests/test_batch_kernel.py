"""Batch kernel mode: fallback matrix, sweep counters, fabric state.

The digest matrix in ``test_golden_mesh`` pins batch mode against the
five golden schemes end to end.  Here the :class:`BatchFabricDriver` is
driven directly against :class:`Network` instances with correctness
instrumentation attached — faults, a packet tracer, the retransmission
layer, an overridden ejection policy — proving each one forces the
scalar fallback while the simulation stays bit-identical to event mode,
and that the batch sweep counters move exactly where expected.
"""

import pytest

from repro.faults import FaultController, FaultPlan
from repro.noc import Network, NocConfig
from repro.noc.fabric_state import HAS_NUMPY
from repro.noc.traffic import SyntheticTraffic, TrafficConfig

CYCLES = 700


def _run(mode, monkeypatch, *, config=None, network_cls=Network,
         faults=None, rate=0.05, seed=11, **noc_kwargs):
    """One synthetic-traffic run under ``mode``; returns (network, traffic)."""
    from repro.noc.flit import pid_watermark

    monkeypatch.setenv("REPRO_KERNEL_MODE", mode)
    base_pid = pid_watermark()
    network = network_cls(config if config is not None else NocConfig(**noc_kwargs))
    if faults is not None:
        network.attach_faults(
            FaultController(faults, raise_on_violation=False)
        )
    traffic = SyntheticTraffic(
        network, TrafficConfig(injection_rate=rate, seed=seed)
    )
    traffic.run(CYCLES)
    return network, traffic, base_pid


def _fingerprint(network, traffic, base_pid):
    """Everything observable about a run except scheduler-internal
    counters: final cycle, the flat network counter block, degraded /
    recovered accounting, and the exact delivery order.  Pids are
    process-global, so they are rebased to the run's own watermark."""
    return {
        "cycle": network.cycle,
        "network": network._network_counters(),
        "degraded": network.degraded.counters(),
        "recovered": network.recovered.counters(),
        "delivered": [
            (p.pid - base_pid, p.src, p.dst, p.ptype.value)
            for p in traffic.delivered
        ],
    }


def _pair(monkeypatch, **kwargs):
    event = _fingerprint(*_run("event", monkeypatch, **kwargs))
    network, traffic, base_pid = _run("batch", monkeypatch, **kwargs)
    batch = _fingerprint(network, traffic, base_pid)
    return event, batch, network.kernel


class TestCleanRunsBatch:
    @pytest.mark.parametrize("vector_min", ["0", "999999999"])
    def test_matches_event_and_counts_fast_ticks(self, monkeypatch, vector_min):
        """A hook-free plain-router mesh runs the fast path in both batch
        regimes (forced-vectorized and forced fused-scalar) and is
        bit-identical to event mode."""
        monkeypatch.setenv("REPRO_BATCH_VECTOR_MIN", vector_min)
        event, batch, kernel = _pair(monkeypatch)
        assert batch == event
        assert kernel.mode == "batch"
        assert kernel.batch_sweeps > 0
        assert kernel.batch_fast_ticks > 0
        assert kernel.batch_fallback_ticks == 0

    def test_batch_counters_in_kernel_stat_group(self, monkeypatch):
        _network, _traffic, _base = _run("batch", monkeypatch)
        counters = _network.kernel.kernel_counters()
        for key in ("batch_sweeps", "batch_fast_ticks", "batch_fallback_ticks"):
            assert key in counters
        assert counters["batch_sweeps"] == _network.kernel.batch_sweeps

    def test_event_mode_never_touches_batch_counters(self, monkeypatch):
        network, _traffic, _base = _run("event", monkeypatch)
        kernel = network.kernel
        assert network.batch_driver is None
        assert kernel.batch_sweeps == 0
        assert kernel.batch_fast_ticks == 0
        assert kernel.batch_fallback_ticks == 0


class TestHookForcedFallback:
    """Each attached correctness layer must force the scalar fallback
    (its hook points fire inside the scalar stage code) and still match
    the event-mode run exactly."""

    def _assert_fell_back(self, kernel):
        assert kernel.batch_sweeps > 0
        assert kernel.batch_fallback_ticks > 0
        assert kernel.batch_fast_ticks == 0

    def test_fault_controller(self, monkeypatch):
        plan = FaultPlan(seed=5, drop_rate=0.01, wedge_rate=0.0005)
        event, batch, kernel = _pair(monkeypatch, faults=plan)
        assert batch == event
        assert batch["degraded"]["packets_dropped"] > 0  # faults really fired
        self._assert_fell_back(kernel)

    def test_packet_tracer(self, monkeypatch):
        event, batch, kernel = _pair(
            monkeypatch, trace_packets=True, trace_sample_interval=1
        )
        assert batch == event
        self._assert_fell_back(kernel)

    def test_tracer_event_streams_are_identical(self, monkeypatch):
        def events(mode):
            network, _traffic, base = _run(
                mode, monkeypatch,
                trace_packets=True, trace_sample_interval=1,
            )
            return [
                (e.cycle, e.kind, e.pid - base, e.node, e.info)
                for e in network.tracer.events
            ]

        assert events("batch") == events("event")

    def test_retransmission_layer(self, monkeypatch):
        event, batch, kernel = _pair(monkeypatch, retransmission=True)
        assert batch == event
        self._assert_fell_back(kernel)

    def test_overridden_eject_policy(self, monkeypatch):
        class ThrottledNetwork(Network):
            def can_eject(self, node):
                # Even nodes only eject on even cycles (a real policy
                # change, but starvation-free).
                if node % 2 == 0 and self.cycle % 2:
                    return False
                return super().can_eject(node)

        event, batch, kernel = _pair(
            monkeypatch, network_cls=ThrottledNetwork
        )
        assert batch == event
        self._assert_fell_back(kernel)

    def test_disco_routers_fall_back_per_router(self, monkeypatch):
        """DiscoRouter overrides stage hooks, so it is not batch-eligible
        (exact-type check); a disco fabric must run entirely on the
        scalar path yet stay bit-identical to event mode."""
        from repro.core import DiscoConfig, make_disco_router_factory
        from repro.noc.flit import pid_watermark

        def run(mode):
            monkeypatch.setenv("REPRO_KERNEL_MODE", mode)
            base_pid = pid_watermark()
            network = Network(
                NocConfig(),
                router_factory=make_disco_router_factory(DiscoConfig()),
            )
            traffic = SyntheticTraffic(
                network, TrafficConfig(injection_rate=0.05, seed=11)
            )
            traffic.run(CYCLES)
            return _fingerprint(network, traffic, base_pid), network.kernel

        event_fp, _event_kernel = run("event")
        batch_fp, batch_kernel = run("batch")
        assert batch_fp == event_fp
        self._assert_fell_back(batch_kernel)


class TestFabricState:
    def test_roundtrip_is_bit_identical(self, monkeypatch):
        """FabricState.state_dict -> load_state restores every array
        byte-for-byte, and the restored network finishes identically."""
        network, _traffic, _base = _run("event", monkeypatch)
        state = network.fabric.state_dict()

        from repro.noc.fabric_state import VC_FIELDS

        monkeypatch.setenv("REPRO_KERNEL_MODE", "event")
        fresh = Network(NocConfig())
        fresh.fabric.load_state(state)
        for field in VC_FIELDS:
            assert getattr(fresh.fabric, field).tolist() == (
                getattr(network.fabric, field).tolist()
            )
        assert fresh.fabric.eject_tokens.tolist() == (
            network.fabric.eject_tokens.tolist()
        )

    def test_eject_tokens_alias_survives_restore(self, monkeypatch):
        """``Network._eject_tokens`` must stay an alias of the fabric
        array across state loads (never reassigned)."""
        network, _traffic, _base = _run("event", monkeypatch)
        assert network._eject_tokens is network.fabric.eject_tokens

    def test_vectors_require_numpy(self):
        fs = Network(NocConfig()).fabric
        if HAS_NUMPY:
            vec = fs.vectors()
            assert vec.state.shape == (fs.n_vcs,)
        else:
            with pytest.raises(RuntimeError, match="fast"):
                fs.vectors()


class TestRouteCache:
    def test_small_fabrics_precompute_all_pairs(self):
        network = Network(NocConfig())  # 4x4: 240 pairs <= 4096
        n = network.topology.n_nodes
        assert len(network._route_cache) == n * (n - 1)
        assert network._route_cache_cap == 0
        before = dict(network._route_cache)
        for src in range(n):
            for dst in range(n):
                if src != dst:
                    network.route(src, dst)
        assert network._route_cache == before  # route() never grows it
        assert network._route_cache_evictions == 0

    def test_large_fabrics_cap_and_evict(self, monkeypatch):
        monkeypatch.setattr(Network, "ROUTE_PRECOMPUTE_MAX_PAIRS", 0)
        monkeypatch.setattr(Network, "ROUTE_CACHE_CAP", 8)
        network = Network(NocConfig())
        assert network._route_cache == {}
        assert network._route_cache_cap == 8
        n = network.topology.n_nodes
        decisions = {}
        for src in range(n):
            for dst in range(n):
                if src != dst:
                    decisions[(src, dst)] = network.route(src, dst)
        assert len(network._route_cache) <= 8
        assert network._route_cache_evictions > 0
        # Evicted entries recompute to the same deterministic decision.
        for (src, dst), decision in list(decisions.items())[:32]:
            assert network.route(src, dst) == decision

    def test_route_cache_not_checkpointed(self, monkeypatch):
        """The cache is pure derived state: it never appears in a
        checkpoint, and a capped cache's eviction counter resets on a
        fresh build without affecting restored behaviour."""
        network, _traffic, _base = _run("event", monkeypatch)
        state = network.state_dict()
        for key in state:
            assert "route_cache" not in key
        for key in state["fabric"]:
            assert "route_cache" not in key
