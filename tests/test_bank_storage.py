"""Scheme-dependent bank storage tests via small full-system runs."""

import pytest

from repro.cmp import CmpSystem, SystemConfig, make_scheme
from repro.workloads import generate_traces, get_profile


def build(scheme, accesses=150, workload="swaptions", prefill=True):
    config = SystemConfig.scaled_4x4()
    traces = generate_traces(
        get_profile(workload), config.n_cores, accesses, seed=4
    )
    system = CmpSystem(config, make_scheme(scheme), traces, prefill=prefill)
    return system


def stored_lines(system):
    out = []
    for bank in system.banks:
        for cache_set in bank.array._sets:
            out.extend(cache_set.lines.values())
    return out


def test_baseline_stores_full_lines():
    system = build("baseline")
    system.run()
    lines = stored_lines(system)
    assert lines
    assert all(line.stored_bytes == 64 for line in lines)
    assert all(line.compressed_payload is None for line in lines)


@pytest.mark.parametrize("scheme", ["ideal", "cc", "disco"])
def test_compressed_schemes_store_small(scheme):
    system = build(scheme)
    system.run()
    lines = stored_lines(system)
    assert lines
    compressed = [l for l in lines if l.compressed_payload is not None]
    assert compressed, "no line stored in compressed form"
    for line in compressed:
        assert line.stored_bytes == line.compressed_payload.size_bytes
        assert line.stored_bytes < 64
    avg = sum(l.stored_bytes for l in lines) / len(lines)
    assert avg < 56  # real capacity benefit


def test_stored_sizes_identical_across_compressed_schemes():
    """The paper's fairness condition: same algorithm -> same footprint.

    DISCO lines that were compressed by the *streaming* engine may be
    slightly larger (the §3.3-A ratio sacrifice); prefilled/fallback lines
    are identical to CC's.
    """
    cc = build("cc")
    cc.run()
    disco = build("disco")
    disco.run()
    cc_sizes = {
        l.addr: l.stored_bytes for l in stored_lines(cc)
    }
    disco_sizes = {
        l.addr: l.stored_bytes for l in stored_lines(disco)
    }
    common = set(cc_sizes) & set(disco_sizes)
    assert common
    for addr in common:
        assert disco_sizes[addr] >= cc_sizes[addr] - 1
        assert disco_sizes[addr] <= 64


def test_prefill_populates_footprint():
    warm = build("baseline", prefill=True)
    cold = build("baseline", prefill=False)
    warm_resident = sum(b.array.resident_lines() for b in warm.banks)
    cold_resident = sum(b.array.resident_lines() for b in cold.banks)
    assert warm_resident > 0
    assert cold_resident == 0


def test_prefill_reduces_memory_traffic():
    warm = build("baseline", prefill=True)
    rw = warm.run()
    cold = build("baseline", prefill=False)
    rc = cold.run()
    assert rw.memory_reads < rc.memory_reads
