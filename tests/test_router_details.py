"""Router micro-behaviour tests: VC lifecycle, credits, arbitration."""

import pytest

from repro.noc import Network, NocConfig
from repro.noc.flit import Packet, PacketType
from repro.noc.router import VC_IDLE, VC_ROUTING
from repro.noc.topology import PORT_EAST, PORT_LOCAL, PORT_WEST


def test_input_vc_free_slots_clamp():
    network = Network(NocConfig(vc_depth=4))
    vc = network.routers[0].inputs[PORT_WEST][0]
    assert vc.free_slots() == 4
    vc.flits_present = 3
    vc.incoming = 2
    assert vc.free_slots() == 0  # never negative
    assert vc.occupancy() == 5


def test_accept_flit_head_collision_guard():
    network = Network(NocConfig())
    vc = network.routers[0].inputs[PORT_WEST][0]
    p1 = Packet(PacketType.REQUEST, 0, 1)
    p2 = Packet(PacketType.REQUEST, 0, 1)
    vc.accept_flit(p1, is_head=True)
    with pytest.raises(RuntimeError):
        vc.accept_flit(p2, is_head=True)


def test_vc_release_resets_state():
    network = Network(NocConfig())
    vc = network.routers[0].inputs[PORT_WEST][0]
    packet = Packet(PacketType.REQUEST, 0, 1)
    vc.accept_flit(packet, is_head=True)
    assert vc.state == VC_ROUTING
    vc.release()
    assert vc.state == VC_IDLE
    assert vc.packet is None
    assert vc.is_free()


def test_wormhole_vc_not_reallocated_midpacket():
    """A second packet cannot enter a VC while the first is in flight."""
    network = Network(NocConfig())
    delivered = []
    network.set_delivery_handler(lambda n, p: delivered.append(p.pid))
    # Two data packets from node 0 to node 1 on the same vnet: the second
    # must wait for the first's tail (single VC per vnet).
    a = Packet(PacketType.RESPONSE, 0, 1, line=b"\x00" * 64)
    b = Packet(PacketType.RESPONSE, 0, 1, line=b"\x00" * 64)
    network.send(a)
    network.send(b)
    network.run_until_quiescent()
    assert delivered == [a.pid, b.pid]  # strictly ordered
    # And the second one observed extra queueing.
    assert (b.ejected_cycle - b.injected_cycle) > (
        a.ejected_cycle - a.injected_cycle
    )


def test_downstream_occupancy_and_local_contention():
    network = Network(NocConfig())
    router = network.routers[5]
    neighbor = network.routers[6]  # east of 5
    neighbor.inputs[PORT_WEST][0].flits_present = 3
    neighbor.inputs[PORT_WEST][1].incoming = 2
    assert router.downstream_occupancy(PORT_EAST) == 5
    assert router.downstream_occupancy(PORT_LOCAL) == 0
    vc_a = router.inputs[PORT_WEST][1]
    vc_b = router.inputs[PORT_EAST][1]
    vc_a.packet = Packet(PacketType.RESPONSE, 0, 7, line=b"\x00" * 64)
    vc_a.out_port = PORT_EAST
    vc_a.flits_present = 4
    vc_b.packet = Packet(PacketType.RESPONSE, 0, 7, line=b"\x00" * 64)
    vc_b.out_port = PORT_EAST
    vc_b.flits_present = 2
    assert router.local_contention(PORT_EAST, exclude=vc_b) == 4
    assert router.local_contention(PORT_EAST, exclude=vc_a) == 2


def test_ejection_bandwidth_limits_flits_per_cycle():
    config = NocConfig(ejection_bandwidth=1)
    network = Network(config)
    delivered = []
    network.set_delivery_handler(lambda n, p: delivered.append(p))
    # Two packets from different directions converge on node 5.
    a = Packet(PacketType.RESPONSE, 4, 5, line=b"\x00" * 64)
    b = Packet(PacketType.RESPONSE, 6, 5, line=b"\x00" * 64)
    network.send(a)
    network.send(b)
    network.run_until_quiescent()
    assert len(delivered) == 2
    # 18 head+payload flits share a 1-flit/cycle ejection port, so both
    # packets run well past a solo transfer.
    solo_net = Network(config)
    solo_net.set_delivery_handler(lambda n, p: None)
    solo = Packet(PacketType.RESPONSE, 4, 5, line=b"\x00" * 64)
    solo_net.send(solo)
    solo_net.run_until_quiescent()
    solo_latency = solo.ejected_cycle - solo.injected_cycle
    for packet in delivered:
        latency = packet.ejected_cycle - packet.injected_cycle
        assert latency >= solo_latency + 5


def test_stats_flit_conservation_detail():
    network = Network(NocConfig())
    network.set_delivery_handler(lambda n, p: None)
    packet = Packet(PacketType.RESPONSE, 0, 15, line=b"\x00" * 64)
    network.send(packet)
    network.run_until_quiescent()
    stats = network.stats
    assert stats.flits_injected == 9
    assert stats.flits_ejected == 9
    # One link traversal per flit per hop (0 -> 15 crosses 6 links).
    assert packet.hops_traversed == 6
    assert stats.link_flits == 9 * 6
