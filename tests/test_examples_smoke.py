"""Smoke tests: every example script runs to completion.

Examples are part of the public deliverable; these tests keep them from
rotting as the library evolves.  Each example's knobs are shrunk to keep
the suite fast.
"""

import os
import sys

import pytest

_EXAMPLES = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "examples")
)
if _EXAMPLES not in sys.path:
    sys.path.insert(0, _EXAMPLES)


@pytest.fixture(autouse=True)
def _clean_argv(monkeypatch):
    monkeypatch.setattr(sys, "argv", ["example"])


def test_quickstart_components(capsys):
    quickstart = __import__("quickstart")
    quickstart.demo_compression()
    output = capsys.readouterr().out
    assert "Cache-line compression" in output
    assert "ratio" in output


def test_compression_survey_small(capsys):
    survey = __import__("compression_survey")
    survey.survey(lines_per_benchmark=20)
    output = capsys.readouterr().out
    assert "average" in output


def test_full_system_comparison_small(capsys):
    comparison = __import__("full_system_comparison")
    comparison.main("swaptions", 120)
    output = capsys.readouterr().out
    assert "disco" in output
    assert "vs ideal" in output


def test_flow_control_study_components():
    study = __import__("flow_control_study")
    from repro.noc.config import FlowControl

    stats = study.run(FlowControl.WORMHOLE, 8, True)
    assert stats.packets_ejected > 0


def test_noc_congestion_study_components():
    study = __import__("noc_congestion_study")
    network = study.build_disco_network()
    from repro.noc.traffic import SyntheticTraffic, TrafficConfig

    SyntheticTraffic(
        network, TrafficConfig(injection_rate=0.05, seed=1)
    ).run(300)
    assert network.stats.packets_ejected > 0
