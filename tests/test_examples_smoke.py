"""Smoke tests: every example script runs to completion.

Examples are part of the public deliverable; these tests keep them from
rotting as the library evolves.  Each example's knobs are shrunk to keep
the suite fast.
"""

import os
import sys

import pytest

_EXAMPLES = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "examples")
)
if _EXAMPLES not in sys.path:
    sys.path.insert(0, _EXAMPLES)


@pytest.fixture(autouse=True)
def _clean_argv(monkeypatch):
    monkeypatch.setattr(sys, "argv", ["example"])


def test_quickstart_components(capsys):
    quickstart = __import__("quickstart")
    quickstart.demo_compression()
    output = capsys.readouterr().out
    assert "Cache-line compression" in output
    assert "ratio" in output


def test_compression_survey_small(capsys):
    survey = __import__("compression_survey")
    survey.survey(lines_per_benchmark=20)
    output = capsys.readouterr().out
    assert "average" in output


def test_full_system_comparison_small(capsys):
    comparison = __import__("full_system_comparison")
    comparison.main("swaptions", 120)
    output = capsys.readouterr().out
    assert "disco" in output
    assert "vs ideal" in output


def test_flow_control_study_components():
    study = __import__("flow_control_study")
    from repro.noc.config import FlowControl

    stats = study.run(FlowControl.WORMHOLE, 8, True)
    assert stats.packets_ejected > 0


def test_telemetry_demo_writes_artifacts(tmp_path, monkeypatch, capsys):
    demo = __import__("telemetry_demo")
    monkeypatch.setattr(sys, "argv", ["telemetry_demo", str(tmp_path)])
    demo.main()
    output = capsys.readouterr().out
    assert "packet spans" in output
    assert "hop events per router" in output
    for name in ("trace.json", "trace.jsonl", "profile.json"):
        assert (tmp_path / name).stat().st_size > 0
    from repro.telemetry.check import main as check_main

    assert check_main([str(tmp_path / "trace.json")]) == 0


def test_chaos_resume_single_seed(capsys):
    chaos = __import__("chaos_resume")
    chaos.drill(seeds=(1,), accesses=60)
    output = capsys.readouterr().out
    assert "chaos drill passed" in output


def test_noc_congestion_study_components():
    study = __import__("noc_congestion_study")
    network = study.build_disco_network()
    from repro.noc.traffic import SyntheticTraffic, TrafficConfig

    SyntheticTraffic(
        network, TrafficConfig(injection_rate=0.05, seed=1)
    ).run(300)
    assert network.stats.packets_ejected > 0
