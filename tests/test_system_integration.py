"""Full-system integration tests: every scheme completes, conserves
packets, keeps coherence invariants and flows real data end-to-end."""

import pytest

from repro.cmp import CmpSystem, SystemConfig, make_scheme
from repro.cmp.bank import DIR_M, DIR_S
from repro.cmp.schemes import SCHEME_NAMES
from repro.workloads import generate_traces, get_profile

ACCESSES = 200  # small but exercises every protocol path


def run_system(scheme="baseline", workload="bodytrack", seed=11,
               accesses=ACCESSES, algorithm="delta", **sys_kwargs):
    config = SystemConfig.scaled_4x4()
    traces = generate_traces(
        get_profile(workload), config.n_cores, accesses, seed=seed
    )
    system = CmpSystem(
        config, make_scheme(scheme, algorithm=algorithm), traces, **sys_kwargs
    )
    return system, system.run()


@pytest.mark.parametrize("scheme", SCHEME_NAMES)
def test_all_schemes_complete(scheme):
    system, result = run_system(scheme)
    assert all(tile.core.done() for tile in system.tiles)
    assert result.cycles > 0
    assert result.total_primary_misses > 0
    assert result.avg_miss_latency > 0


@pytest.mark.parametrize("scheme", SCHEME_NAMES)
def test_packet_conservation(scheme):
    system, result = run_system(scheme)
    stats = system.network.stats
    assert stats.packets_injected == stats.packets_ejected
    assert not system.events.has_work()
    assert system.network.quiescent()


def test_coherence_invariants_at_end():
    """At quiescence: one M owner max, dir owner actually holds the line."""
    system, _ = run_system("baseline", workload="canneal")
    for bank in system.banks:
        assert not bank.pending
        for addr, entry in bank.directory.items():
            if entry.state == DIR_M:
                line = system.tiles[entry.owner].l1.lookup(addr)
                assert line is not None and line.state == "M", hex(addr)
                holders = [
                    t.node for t in system.tiles if t.l1.lookup(addr)
                ]
                assert holders == [entry.owner]
            elif entry.state == DIR_S:
                for tile in system.tiles:
                    line = tile.l1.lookup(addr)
                    if line is not None:
                        assert line.state == "S"
                        assert tile.node in entry.sharers


def test_value_flow_end_to_end():
    """The last committed store value for a line is what the system holds."""
    system, _ = run_system("baseline", workload="dedup")
    pool = system.pool
    for bank in system.banks:
        for addr, entry in bank.directory.items():
            expected = pool.line(addr)  # pool tracks latest committed value
            if entry.state == DIR_M:
                line = system.tiles[entry.owner].l1.lookup(addr)
                assert line.data == expected, hex(addr)
            else:
                stored = bank.array.lookup(addr, touch=False)
                if stored is not None:
                    assert stored.data == expected, hex(addr)


def test_disco_value_flow_with_compression():
    """Same value-flow invariant with in-network compression active."""
    system, result = run_system("disco", workload="canneal")
    assert result.network.compressions + result.counters_full[
        "bank_compressions"
    ] > 0
    pool = system.pool
    mismatches = 0
    for bank in system.banks:
        for addr, entry in bank.directory.items():
            if entry.state == DIR_M:
                line = system.tiles[entry.owner].l1.lookup(addr)
                assert line.data == pool.line(addr), hex(addr)
            else:
                stored = bank.array.lookup(addr, touch=False)
                if stored is not None and stored.data != pool.line(addr):
                    mismatches += 1
    assert mismatches == 0


def test_determinism():
    _, a = run_system("disco", seed=5)
    _, b = run_system("disco", seed=5)
    assert a.cycles == b.cycles
    assert a.total_miss_latency == b.total_miss_latency
    assert a.counters_full == b.counters_full


def test_seed_changes_results():
    _, a = run_system("baseline", seed=5)
    _, b = run_system("baseline", seed=6)
    assert a.cycles != b.cycles


def test_warmup_snapshot_mechanics():
    system, result = run_system("baseline", warmup_fraction=0.5)
    assert result.measure_start_cycle > 0
    assert result.measured_cycles < result.cycles
    assert result.measured_primary_misses <= result.total_primary_misses
    for key, value in result.counters_measured.items():
        assert value <= result.counters_full[key], key
        assert value >= 0, key


def test_compressed_llc_holds_more_lines():
    """Under capacity pressure the compressed LLC retains more lines."""
    config = SystemConfig.scaled_4x4(l2_sets_per_bank=8)  # 1024-line LLC
    results = {}
    for scheme in ("baseline", "ideal"):
        traces = generate_traces(
            get_profile("canneal"), config.n_cores, 400, seed=11
        )
        assert len(traces.touched_addresses()) > 1024  # real pressure
        system = CmpSystem(config, make_scheme(scheme), traces)
        results[scheme] = system.run()
    assert (
        results["ideal"].llc_resident_lines
        > results["baseline"].llc_resident_lines
    )
    assert results["ideal"].memory_reads < results["baseline"].memory_reads


def test_cnc_ni_activity():
    _, result = run_system("cnc")
    assert result.counters_full["ni_compressions"] > 0
    assert result.counters_full["ni_decompressions"] > 0


def test_disco_compresses_in_network():
    _, result = run_system("disco", workload="canneal", accesses=400)
    counters = result.counters_full
    assert counters["router_compressions"] > 0
    assert counters["router_decompressions"] + counters[
        "ni_decompressions"
    ] > 0


def test_fpc_and_sc2_schemes_run():
    for algorithm in ("fpc", "sc2"):
        _, result = run_system("disco", algorithm=algorithm, accesses=150)
        assert result.algorithm == algorithm
        assert result.cycles > 0


def test_mismatched_trace_cores_rejected():
    config = SystemConfig.scaled_4x4()
    traces = generate_traces(get_profile("dedup"), 4, 50)
    with pytest.raises(ValueError):
        CmpSystem(config, make_scheme("baseline"), traces)


def test_bad_warmup_fraction_rejected():
    config = SystemConfig.scaled_4x4()
    traces = generate_traces(get_profile("dedup"), config.n_cores, 50)
    with pytest.raises(ValueError):
        CmpSystem(config, make_scheme("baseline"), traces, warmup_fraction=1.0)
