"""Network-interface tests: injection queues, eject transforms, priorities."""

from repro.compression import get_algorithm
from repro.noc import Network, NocConfig
from repro.noc.flit import Packet, PacketType


def test_inject_transform_delays_injection():
    network = Network(NocConfig())
    calls = []

    def inject(node, packet):
        calls.append(node)
        return 7

    network.inject_transform = inject
    packet = Packet(PacketType.RESPONSE, 0, 3, line=b"\x00" * 64)
    network.set_delivery_handler(lambda n, p: None)
    network.send(packet)
    network.run_until_quiescent()
    assert calls == [0]
    baseline = Network(NocConfig())
    p2 = Packet(PacketType.RESPONSE, 0, 3, line=b"\x00" * 64)
    baseline.set_delivery_handler(lambda n, p: None)
    baseline.send(p2)
    baseline.run_until_quiescent()
    delay = (packet.ejected_cycle - packet.injected_cycle) - (
        p2.ejected_cycle - p2.injected_cycle
    )
    assert 6 <= delay <= 7  # the charge may overlap the first idle cycle


def test_eject_transform_delays_delivery():
    network = Network(NocConfig())
    network.eject_transform = lambda node, packet: 5
    delivered = []
    network.set_delivery_handler(lambda n, p: delivered.append(network.cycle))
    packet = Packet(PacketType.REQUEST, 0, 3)
    network.send(packet)
    network.run_until_quiescent()
    assert len(delivered) == 1
    assert network.stats.eject_decompress_stall_cycles == 5


def test_cnc_style_transform_compresses_wire_form():
    algorithm = get_algorithm("delta")
    network = Network(NocConfig())
    wire_sizes = []

    def inject(node, packet):
        if packet.carries_data and not packet.is_compressed:
            compressed = algorithm.compress(packet.line)
            if compressed.compressible:
                packet.apply_compression(compressed)
            return 1
        return 0

    def eject(node, packet):
        if packet.is_compressed:
            wire_sizes.append(packet.size_flits)
            packet.apply_decompression()
            return 3
        return 0

    network.inject_transform = inject
    network.eject_transform = eject
    received = []
    network.set_delivery_handler(lambda n, p: received.append(p))
    line = b"\x00" * 64
    network.send(Packet(PacketType.RESPONSE, 0, 15, line=line))
    network.run_until_quiescent()
    assert wire_sizes and wire_sizes[0] < 9
    assert received[0].line == line
    assert not received[0].is_compressed


def test_priority_hook_influences_arbitration():
    """Two packets contending for one port: priority wins the switch."""
    config = NocConfig()
    results = {}
    for policy in ("fifo", "favor_b"):
        network = Network(config)
        order = []
        network.set_delivery_handler(lambda n, p: order.append(p.pid))
        a = Packet(PacketType.RESPONSE, 0, 3, line=b"\x00" * 64)
        b = Packet(PacketType.RESPONSE, 4, 3, line=b"\x00" * 64)
        if policy == "favor_b":
            network.packet_priority = lambda p: 2 if p is b else 1
        network.send(a)
        network.send(b)
        network.run_until_quiescent()
        results[policy] = (
            a.ejected_cycle - a.injected_cycle,
            b.ejected_cycle - b.injected_cycle,
        )
    # Favoring b should not make b slower than in FIFO mode.
    assert results["favor_b"][1] <= results["fifo"][1]


def test_local_traffic_applies_both_transforms():
    network = Network(NocConfig())
    network.inject_transform = lambda n, p: 2
    network.eject_transform = lambda n, p: 3
    got = []
    network.set_delivery_handler(lambda n, p: got.append(network.cycle))
    network.send(Packet(PacketType.REQUEST, 5, 5))
    network.run_until_quiescent()
    assert got and got[0] >= 6  # 1 base + 2 + 3
