"""Randomized full-system stress tests.

Short runs across random (scheme, workload, seed) combinations, each
checked against the invariants that must hold regardless of configuration:
packet conservation, protocol quiescence, single-writer coherence, and
end-to-end value integrity through compression.
"""

import random

import pytest

from repro.cmp import CmpSystem, SystemConfig, make_scheme
from repro.cmp.bank import DIR_M
from repro.cmp.schemes import SCHEME_NAMES
from repro.core import DiscoConfig
from repro.noc.config import FlowControl, NocConfig
from repro.workloads import PARSEC_BENCHMARKS, generate_traces, get_profile


def check_invariants(system):
    stats = system.network.stats
    assert stats.packets_injected == stats.packets_ejected
    assert system.network.quiescent()
    assert not system.events.has_work()
    for bank in system.banks:
        assert not bank.pending
        for addr, entry in bank.directory.items():
            if entry.state == DIR_M:
                holders = [
                    t.node
                    for t in system.tiles
                    if t.l1.lookup(addr) is not None
                ]
                assert holders == [entry.owner], hex(addr)
                line = system.tiles[entry.owner].l1.lookup(addr)
                assert line.state == "M"
    # Value integrity: M owners hold the latest committed value.
    pool = system.pool
    for bank in system.banks:
        for addr, entry in bank.directory.items():
            if entry.state == DIR_M:
                line = system.tiles[entry.owner].l1.lookup(addr)
                assert line.data == pool.line(addr), hex(addr)


def _combos(n=10, seed=2024):
    rng = random.Random(seed)
    names = sorted(PARSEC_BENCHMARKS)
    out = []
    for i in range(n):
        out.append(
            (
                rng.choice(SCHEME_NAMES),
                rng.choice(names),
                rng.randrange(1, 10_000),
            )
        )
    return out


@pytest.mark.parametrize("scheme,workload,seed", _combos())
def test_random_combination(scheme, workload, seed):
    config = SystemConfig.scaled_4x4()
    traces = generate_traces(
        get_profile(workload), config.n_cores, 120, seed=seed
    )
    system = CmpSystem(
        config, make_scheme(scheme), traces, warmup_fraction=0.2
    )
    result = system.run()
    assert result.cycles > 0
    check_invariants(system)


@pytest.mark.parametrize(
    "algorithm", ["delta", "fpc", "sc2", "bdi", "cpack"]
)
def test_disco_with_every_algorithm(algorithm):
    config = SystemConfig.scaled_4x4()
    traces = generate_traces(get_profile("x264"), config.n_cores, 100, seed=5)
    system = CmpSystem(config, make_scheme("disco", algorithm=algorithm),
                       traces)
    system.run()
    check_invariants(system)


def test_full_system_with_vct_flow_control():
    """The §3.3-A alternative: whole-packet residency via VCT."""
    from dataclasses import replace

    config = replace(
        SystemConfig.scaled_4x4(),
        noc=NocConfig(flow_control=FlowControl.VIRTUAL_CUT_THROUGH,
                      vc_depth=10),
    )
    traces = generate_traces(get_profile("canneal"), 16, 150, seed=9)
    system = CmpSystem(config, make_scheme("disco"), traces)
    result = system.run()
    check_invariants(system)
    # With whole-packet residency the engine can run non-streaming jobs.
    assert result.network.compressions >= result.network.separate_compressions


def test_full_system_with_adaptive_thresholds_and_high_sharing():
    config = SystemConfig.scaled_4x4()
    scheme = make_scheme(
        "disco",
        disco=DiscoConfig(adaptive_thresholds=True, adaptation_rate=0.1),
    )
    traces = generate_traces(get_profile("canneal"), 16, 200, seed=13)
    system = CmpSystem(config, scheme, traces)
    system.run()
    check_invariants(system)


def test_deep_window_core_configuration():
    from dataclasses import replace

    config = replace(SystemConfig.scaled_4x4(), core_window=8)
    traces = generate_traces(get_profile("streamcluster"), 16, 150, seed=3)
    system = CmpSystem(config, make_scheme("disco"), traces)
    system.run()
    check_invariants(system)
