"""Tests for LRU, the segmented compressed bank, MSHRs, L1 and DRAM."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import (
    CompressedBankArray,
    L1Cache,
    LRUPolicy,
    MemoryController,
    MSHRFile,
)
from repro.cache.l1 import HIT, MISS, STATE_M, STATE_S, UPGRADE


class TestLRU:
    def test_order(self):
        lru = LRUPolicy()
        for key in (1, 2, 3):
            lru.touch(key)
        assert lru.lru() == 1
        lru.touch(1)
        assert lru.lru() == 2
        lru.remove(2)
        assert lru.lru() == 3
        assert len(lru) == 2
        assert 3 in lru

    def test_empty_lru_raises(self):
        with pytest.raises(LookupError):
            LRUPolicy().lru()


class TestCompressedBank:
    def make(self, **kwargs):
        defaults = dict(n_sets=4, ways=4, line_size=64, tag_factor=2,
                        segment_bytes=8)
        defaults.update(kwargs)
        return CompressedBankArray(**defaults)

    def test_insert_lookup(self):
        bank = self.make()
        bank.insert(0, b"\x01" * 64, stored_bytes=16)
        line = bank.lookup(0)
        assert line is not None and line.data == b"\x01" * 64
        assert line.segments(8) == 2

    def test_capacity_in_segments(self):
        bank = self.make(n_sets=1, ways=2, tag_factor=2)
        # budget: 2 ways x 8 segments = 16 segments, 4 tags
        bank.insert(0, b"\x00" * 64, stored_bytes=32)  # 4 segments
        bank.insert(1, b"\x00" * 64, stored_bytes=32)
        bank.insert(2, b"\x00" * 64, stored_bytes=32)
        bank.insert(3, b"\x00" * 64, stored_bytes=32)
        assert bank.resident_lines() == 4  # 2x the uncompressed capacity
        victims = bank.insert(4, b"\x00" * 64, stored_bytes=32)
        assert len(victims) == 1  # tag limit: LRU evicted
        assert victims[0].addr == 0

    def test_segment_pressure_evicts_multiple(self):
        bank = self.make(n_sets=1, ways=2, tag_factor=2)
        for addr in range(4):
            bank.insert(addr, b"\x00" * 64, stored_bytes=32)
        victims = bank.insert(9, b"\x00" * 64, stored_bytes=64)
        # needs 8 segments; each resident uses 4 -> evict 2 LRU lines
        assert [v.addr for v in victims] == [0, 1]

    def test_uncompressed_mode_is_plain_set_assoc(self):
        bank = self.make(n_sets=1, ways=2, tag_factor=1)
        bank.insert(0, b"\x00" * 64)
        bank.insert(1, b"\x00" * 64)
        victims = bank.insert(2, b"\x00" * 64)
        assert [v.addr for v in victims] == [0]
        assert bank.resident_lines() == 2

    def test_overwrite_merges_dirty(self):
        bank = self.make()
        bank.insert(0, b"\x01" * 64, dirty=True)
        victims = bank.insert(0, b"\x02" * 64, stored_bytes=16, dirty=False)
        assert victims == []
        line = bank.lookup(0)
        assert line.dirty  # dirtiness sticks until written back
        assert line.data == b"\x02" * 64

    def test_invalidate(self):
        bank = self.make()
        bank.insert(0, b"\x01" * 64)
        assert bank.invalidate(0) is not None
        assert bank.lookup(0) is None
        assert bank.invalidate(0) is None

    def test_mark_dirty_missing_raises(self):
        with pytest.raises(KeyError):
            self.make().mark_dirty(5)

    def test_index_stride(self):
        bank = self.make(n_sets=4, index_stride=16)
        assert bank.set_index(0) == 0
        assert bank.set_index(16) == 1
        assert bank.set_index(64) == 0

    def test_oversized_line_rejected(self):
        bank = self.make()
        with pytest.raises(ValueError):
            bank.insert(0, b"\x00" * 64, stored_bytes=65)
        with pytest.raises(ValueError):
            bank.insert(0, b"\x00" * 32)

    @given(
        footprints=st.lists(
            st.tuples(st.integers(0, 63), st.integers(8, 64)),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_segment_budget_invariant(self, footprints):
        """No set ever exceeds its tag or segment budget."""
        bank = self.make(n_sets=4, ways=4, tag_factor=2)
        for addr, stored in footprints:
            bank.insert(addr, b"\x00" * 64, stored_bytes=stored)
        for cache_set in bank._sets:
            used = sum(l.segments(8) for l in cache_set.lines.values())
            assert used <= bank.segment_budget
            assert len(cache_set.lines) <= bank.max_tags


class TestMSHR:
    def test_allocate_coalesce_release(self):
        mshr = MSHRFile(2)
        entry = mshr.allocate(5, False, cycle=10)
        assert entry.waiters == [(10, False, True, True)]
        mshr.coalesce(5, True, cycle=12)
        assert entry.pending_upgrade
        assert len(entry.waiters) == 2
        released = mshr.release(5)
        assert released is entry
        assert len(mshr) == 0

    def test_full(self):
        mshr = MSHRFile(1)
        mshr.allocate(1, False, 0)
        assert mshr.full()
        with pytest.raises(RuntimeError):
            mshr.allocate(2, False, 0)
        assert mshr.allocation_failures == 1

    def test_double_allocate_rejected(self):
        mshr = MSHRFile(4)
        mshr.allocate(1, False, 0)
        with pytest.raises(ValueError):
            mshr.allocate(1, True, 1)


class TestL1:
    def make(self):
        return L1Cache(n_sets=2, ways=2, mshrs=4)

    def test_miss_then_fill_then_hit(self):
        l1 = self.make()
        assert l1.access(0, False) == MISS
        l1.fill(0, b"\x01" * 64, STATE_S)
        assert l1.access(0, False) == HIT

    def test_write_to_shared_is_upgrade(self):
        l1 = self.make()
        l1.fill(0, b"\x01" * 64, STATE_S)
        assert l1.access(0, True) == UPGRADE

    def test_write_to_modified_hits_and_dirties(self):
        l1 = self.make()
        l1.fill(0, b"\x01" * 64, STATE_M)
        assert l1.access(0, True) == HIT
        l1.write_data(0, b"\x02" * 64)
        assert l1.lookup(0).dirty

    def test_eviction_returns_dirty_m_victim(self):
        l1 = self.make()
        l1.fill(0, b"\x01" * 64, STATE_M)
        l1.access(0, True)
        l1.write_data(0, b"\x09" * 64)
        l1.fill(2, b"\x02" * 64, STATE_S)  # same set (2 % 2 == 0)
        victim = l1.fill(4, b"\x03" * 64, STATE_S)
        assert victim is not None and victim.addr == 0
        assert victim.data == b"\x09" * 64

    def test_clean_victims_dropped_silently(self):
        l1 = self.make()
        l1.fill(0, b"\x01" * 64, STATE_S)
        l1.fill(2, b"\x02" * 64, STATE_S)
        victim = l1.fill(4, b"\x03" * 64, STATE_S)
        assert victim is None

    def test_invalidate(self):
        l1 = self.make()
        l1.fill(0, b"\x01" * 64, STATE_S)
        assert l1.invalidate(0) is not None
        assert l1.lookup(0) is None
        assert l1.stats.invalidations == 1

    def test_store_commit_requires_m(self):
        l1 = self.make()
        l1.fill(0, b"\x01" * 64, STATE_S)
        with pytest.raises(RuntimeError):
            l1.write_data(0, b"\x02" * 64)

    def test_bad_fill_state(self):
        with pytest.raises(ValueError):
            self.make().fill(0, b"\x00" * 64, "X")


class TestMemoryController:
    def test_read_latency_and_content(self):
        mc = MemoryController(
            access_latency=100, n_banks=2,
            line_source=lambda addr: bytes([addr % 256]) * 64,
        )
        done, data = mc.read(3, cycle=10)
        assert done == 110
        assert data == b"\x03" * 64

    def test_bank_queueing(self):
        mc = MemoryController(access_latency=100, n_banks=2)
        done_a, _ = mc.read(0, cycle=0)
        done_b, _ = mc.read(2, cycle=0)  # same bank (2 % 2 == 0)
        done_c, _ = mc.read(1, cycle=0)  # other bank
        assert done_a == 100
        assert done_b == 200  # serialized behind a
        assert done_c == 100  # parallel
        assert mc.stats.total_queue_cycles == 100

    def test_write_updates_backing_store(self):
        mc = MemoryController()
        mc.write(7, b"\xaa" * 64, cycle=0)
        assert mc.line(7) == b"\xaa" * 64

    def test_write_size_check(self):
        with pytest.raises(ValueError):
            MemoryController().write(0, b"\x00" * 8, 0)
