"""Registry and synthetic-traffic unit tests."""

import pytest

from repro.compression import (
    CachedCompressor,
    available_algorithms,
    get_algorithm,
    get_timing,
)
from repro.noc import Mesh2D, Network, NocConfig, Ring
from repro.noc.traffic import (
    SyntheticTraffic,
    TrafficConfig,
    hotspot,
    transpose,
    uniform_random,
)

import random


class TestRegistry:
    def test_all_algorithms_available(self):
        names = available_algorithms()
        assert set(names) >= {
            "delta", "bdi", "fpc", "sfpc", "cpack", "sc2", "fvc", "zero",
        }

    def test_every_algorithm_has_timing(self):
        for name in available_algorithms():
            timing = get_timing(name)
            assert timing.compression_cycles >= 0
            assert timing.decompression_cycles >= 0

    def test_table1_timings(self):
        assert get_timing("delta").compression_cycles == 1
        assert get_timing("delta").decompression_cycles == 3
        assert get_timing("fpc").decompression_cycles == 5
        assert get_timing("sfpc").decompression_cycles == 4
        assert get_timing("sc2").compression_cycles == 6
        assert get_timing("sc2").decompression_cycles == 8

    def test_cached_wrapper_default(self):
        algo = get_algorithm("fpc")
        assert isinstance(algo, CachedCompressor)
        raw = get_algorithm("fpc", cached=False)
        assert not isinstance(raw, CachedCompressor)

    def test_unknown_names(self):
        with pytest.raises(KeyError):
            get_algorithm("zip")
        with pytest.raises(KeyError):
            get_timing("zip")


class TestTrafficPatterns:
    MESH = Mesh2D(4, 4)

    def test_uniform_never_self(self):
        rng = random.Random(1)
        for _ in range(200):
            src = rng.randrange(16)
            assert uniform_random(rng, src, self.MESH) != src

    def test_transpose_mapping(self):
        rng = random.Random(1)
        # node 1 = (1,0) -> (0,1) = node 4 on a 4x4
        assert transpose(rng, 1, self.MESH) == 4
        assert transpose(rng, 7, self.MESH) == 13

    def test_transpose_on_a_ring_reverses_indices(self):
        rng = random.Random(1)
        ring = Ring(8)
        assert transpose(rng, 1, ring) == 6
        assert transpose(rng, 6, ring) == 1

    def test_hotspot_bias(self):
        rng = random.Random(1)
        hits = sum(
            hotspot(rng, 5, self.MESH, hotspots=(0,), weight=0.5) == 0
            for _ in range(1000)
        )
        assert hits > 300

    def test_config_validation(self):
        network = Network(NocConfig())
        with pytest.raises(ValueError):
            SyntheticTraffic(network, TrafficConfig(injection_rate=0.0))
        with pytest.raises(KeyError):
            SyntheticTraffic(network, TrafficConfig(pattern="spiral"))

    def test_deterministic_generation(self):
        results = []
        for _ in range(2):
            network = Network(NocConfig())
            traffic = SyntheticTraffic(
                network, TrafficConfig(injection_rate=0.05, seed=12)
            )
            traffic.run(300)
            results.append(
                (traffic.generated, network.stats.total_packet_latency)
            )
        assert results[0] == results[1]
