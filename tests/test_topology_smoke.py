"""Deadlock-freedom smoke tests for every fabric under random stress.

Each topology runs its default (deadlock-free) routing under open-loop
random traffic at a rate chosen to congest the fabric, across several
seeds and patterns, and must drain to quiescence with every generated
packet delivered — no watchdog, no wedge.  For the wrap-around fabrics
(torus, ring) this is the acceptance test of the dateline escape-VC
scheme: plain dimension-order routing on a torus *does* deadlock.

``REPRO_SMOKE_TOPOLOGY`` narrows the run to one fabric (the CI topology
matrix sets it per job).
"""

import os

import pytest

from repro.core import DiscoConfig, disco_priority, make_disco_router_factory
from repro.noc import FlowControl, Network, NocConfig
from repro.noc.routing import resolve_routing
from repro.noc.traffic import SyntheticTraffic, TrafficConfig

ALL_TOPOLOGIES = ("mesh", "torus", "ring", "cmesh")
_FILTER = os.environ.get("REPRO_SMOKE_TOPOLOGY", "")
TOPOLOGIES = (_FILTER,) if _FILTER else ALL_TOPOLOGIES

SEEDS = (1, 2, 3)


def smoke_config(topology: str, **overrides) -> NocConfig:
    vcs = 2 if resolve_routing(topology).needs_escape_vcs else 1
    return NocConfig(topology=topology, vcs_per_vnet=vcs, **overrides)


def run_stress(config: NocConfig, seed: int, pattern: str = "uniform",
               cycles: int = 400, injection_rate: float = 0.08,
               router_factory=None) -> SyntheticTraffic:
    network = Network(config, router_factory=router_factory)
    if router_factory is not None:
        network.packet_priority = disco_priority

        def eject(node, packet):
            if packet.is_compressed and packet.decompress_at_dst:
                packet.apply_decompression()
                network.stats.ni_decompressions += 1
                return 2
            return 0

        network.eject_transform = eject
    traffic = SyntheticTraffic(
        network,
        TrafficConfig(
            pattern=pattern, injection_rate=injection_rate, seed=seed
        ),
    )
    # run() drains via run_until_quiescent, whose watchdog raises on a
    # wedged fabric — the deadlock check is the absence of that raise.
    traffic.run(cycles)
    assert network.quiescent()
    assert len(traffic.delivered) == traffic.generated
    return traffic


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_uniform_stress_drains(topology, seed):
    run_stress(smoke_config(topology), seed)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_adversarial_pattern_drains(topology, seed):
    # Transpose concentrates traffic on the dimension-order turn points
    # (and on the ring's datelines) — the classic deadlock provocation.
    run_stress(smoke_config(topology), seed, pattern="transpose")


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_disco_routers_drain(topology, seed):
    # The DISCO router (compression engines + priority scheduling) rides
    # on the same fabric contract; it must not break deadlock freedom.
    run_stress(
        smoke_config(topology), seed,
        router_factory=make_disco_router_factory(DiscoConfig()),
    )


@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_vct_whole_packet_drains(topology):
    # VCT holds whole packets per node — a tighter buffer economy that
    # historically exposes allocation deadlocks first.
    config = smoke_config(
        topology,
        flow_control=FlowControl.VIRTUAL_CUT_THROUGH,
        vc_depth=10,
    )
    run_stress(config, seed=1)
