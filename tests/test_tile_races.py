"""Targeted tests for the grant/recall/writeback races the tile defers.

These reconstruct, message by message, the orderings that wedged earlier
versions of the protocol (see DESIGN.md): a recall overtaking an in-flight
M grant, an invalidation overtaking an S grant, and the stale-writeback-
marker case that WB_ACK makes precise.
"""

from repro.cmp.config import SystemConfig
from repro.cmp.core_model import CoreModel
from repro.cmp.messages import Message, MessageKind
from repro.cmp.schemes import make_scheme
from repro.cmp.tile import Tile
from repro.workloads import ValuePool, get_profile
from repro.workloads.trace import MemoryAccess


class RecordingSystem:
    """Tile harness that records outbound messages without delivering."""

    def __init__(self):
        self.config = SystemConfig.scaled_mesh(2, 2)
        self.scheme = make_scheme("baseline")
        self.algorithm = self.scheme.make_algorithm()
        self.pool = ValuePool(get_profile("blackscholes"), seed=2)
        self.cycle = 100
        self.sent = []

    def send_message(self, msg, compressed_payload=None):
        self.sent.append(msg)

    def schedule(self, delay, fn, *args):  # pragma: no cover - unused here
        fn(*args)

    def kinds(self):
        return [m.kind for m in self.sent]


def make_tile(node=1):
    system = RecordingSystem()
    core = CoreModel(node, [MemoryAccess(1, False, 0)], window=4)
    return Tile(node, system, core), system


def data_msg(addr, dst, grant, data=None):
    return Message(
        kind=MessageKind.DATA, addr=addr, src=0, dst=dst, requester=dst,
        data=data or b"\x11" * 64, grant_state=grant,
    )


class TestRecallGrantRace:
    def test_recall_before_m_grant_is_deferred(self):
        tile, system = make_tile()
        tile.l1.mshr.allocate(0, True, cycle=90)
        tile.core.outstanding += 1
        # RECALL arrives before the DATA(M) the home already sent.
        tile.handle(Message(kind=MessageKind.RECALL, addr=0, src=0, dst=1))
        assert system.sent == []  # no NACK: the reply waits for the fill
        entry = tile.l1.mshr.lookup(0)
        assert entry.pending_recall_from == 0
        # The grant lands; the store commits; the line goes straight back.
        tile.handle(data_msg(0, dst=1, grant="M"))
        kinds = system.kinds()
        assert MessageKind.RECALL_DATA in kinds
        assert tile.l1.lookup(0) is None  # invalidated by the recall
        recall_data = [
            m for m in system.sent if m.kind is MessageKind.RECALL_DATA
        ][0]
        assert recall_data.data == tile.system.pool.line(0)

    def test_recall_with_wb_in_flight_nacks(self):
        tile, system = make_tile()
        tile._writeback(0, b"\x22" * 64)
        assert 0 in tile._wb_in_flight
        tile.l1.mshr.allocate(0, True, cycle=95)  # new GETX, queued at home
        tile.core.outstanding += 1
        tile.handle(Message(kind=MessageKind.RECALL, addr=0, src=0, dst=1))
        assert MessageKind.RECALL_NACK in system.kinds()

    def test_wb_ack_clears_marker_so_recall_defers(self):
        """The stale-marker deadlock scenario, fixed by WB_ACK."""
        tile, system = make_tile()
        tile._writeback(0, b"\x22" * 64)
        tile.l1.mshr.allocate(0, True, cycle=95)
        tile.core.outstanding += 1
        # The home consumed the WB (serving our GETX) and acked it; the
        # ack arrives before the racing recall (FIFO per src/vnet).
        tile.handle(Message(kind=MessageKind.WB_ACK, addr=0, src=0, dst=1))
        assert 0 not in tile._wb_in_flight
        tile.handle(Message(kind=MessageKind.RECALL, addr=0, src=0, dst=1))
        assert MessageKind.RECALL_NACK not in system.kinds()
        assert tile.l1.mshr.lookup(0).pending_recall_from == 0

    def test_recall_for_gets_entry_nacks(self):
        """dir M@me + my outstanding GETS => my WB is in flight."""
        tile, system = make_tile()
        tile.l1.mshr.allocate(0, False, cycle=95)
        tile.core.outstanding += 1
        tile.handle(Message(kind=MessageKind.RECALL, addr=0, src=0, dst=1))
        assert MessageKind.RECALL_NACK in system.kinds()


class TestInvGrantRace:
    def test_inv_before_s_grant_invalidates_after_use(self):
        tile, system = make_tile()
        tile.l1.mshr.allocate(0, False, cycle=90)
        tile.core.outstanding += 1
        tile.handle(Message(kind=MessageKind.INV, addr=0, src=0, dst=1))
        assert MessageKind.INV_ACK in system.kinds()
        assert tile.l1.mshr.lookup(0).pending_inv
        tile.handle(data_msg(0, dst=1, grant="S"))
        # use-once: the reader completed, then the line was dropped.
        assert tile.l1.lookup(0) is None
        assert tile.core.outstanding == 0

    def test_stale_inv_ignored_on_m_grant(self):
        tile, system = make_tile()
        tile.l1.mshr.allocate(0, True, cycle=90)
        tile.core.outstanding += 1
        tile.handle(Message(kind=MessageKind.INV, addr=0, src=0, dst=1))
        tile.handle(data_msg(0, dst=1, grant="M"))
        # The M grant is the newest serialization point; the line stays.
        line = tile.l1.lookup(0)
        assert line is not None and line.state == "M"

    def test_inv_on_present_line_needs_no_deferral(self):
        tile, system = make_tile()
        tile.l1.fill(0, b"\x01" * 64, "S")
        tile.handle(Message(kind=MessageKind.INV, addr=0, src=0, dst=1))
        assert tile.l1.lookup(0) is None
        assert MessageKind.INV_ACK in system.kinds()


class TestWritebackBookkeeping:
    def test_data_receipt_clears_wb_marker(self):
        tile, system = make_tile()
        tile._writeback(0, b"\x22" * 64)
        tile.l1.mshr.allocate(0, False, cycle=95)
        tile.core.outstanding += 1
        tile.handle(data_msg(0, dst=1, grant="S"))
        assert 0 not in tile._wb_in_flight

    def test_victim_writeback_sets_marker_and_sends(self):
        tile, system = make_tile()
        # fill the one set (2-way in scaled config? use distinct addrs in
        # same set): l1 has 32 sets, ways 4 -> same set = addr % 32
        for i in range(4):
            tile.l1.fill(i * 32, b"\x01" * 64, "M")
            tile.l1.access(i * 32, True)
            tile.l1.write_data(i * 32, b"\x02" * 64)
        tile.l1.mshr.allocate(4 * 32, False, cycle=99)
        tile.core.outstanding += 1
        tile.handle(data_msg(4 * 32, dst=1, grant="S"))
        wbs = [m for m in system.sent if m.kind is MessageKind.WB_DATA]
        assert len(wbs) == 1
        assert wbs[0].addr in tile._wb_in_flight
