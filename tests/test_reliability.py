"""The end-to-end recovery layer: retransmission + invariant monitor.

The load-bearing claim on top of the fault layer's zero-silent contract:
with retransmission on, every detected fault becomes a *recovered*
bit-exact delivery (or an explicitly-accounted degradation) — zero lost
payloads, zero silent outcomes.

Environment knobs (the CI reliability-matrix job sweeps these):

- ``REPRO_FAULT_SEED`` — fault-plan seed for the campaign tests;
- ``REPRO_FAULT_TOPOLOGY`` — fabric for the campaign tests (mesh/torus);
- ``REPRO_RETRANSMISSION`` — ``0`` runs the campaign with recovery off
  (the zero-silent contract must hold either way);
- ``REPRO_WEDGE_DIR`` — when set, campaign failures write their summary
  and wedge snapshot there (CI uploads them as artifacts).
"""

import os
from pathlib import Path

import pytest

from repro.faults import (
    PERMANENT,
    CampaignSpec,
    FaultController,
    FaultPlan,
    ScheduledFault,
    run_fault_campaign,
)
from repro.noc import (
    InvariantViolation,
    Network,
    NocConfig,
    payload_crc,
)
from repro.noc.flit import Packet, PacketType

FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", "3"))
FAULT_TOPOLOGY = os.environ.get("REPRO_FAULT_TOPOLOGY", "mesh")
RETRANSMISSION = os.environ.get("REPRO_RETRANSMISSION", "1") != "0"

LINE = bytes(range(64))


def data_packet(src=0, dst=3, line=LINE):
    return Packet(
        PacketType.RESPONSE, src, dst, line=line,
        compressible=True, decompress_at_dst=True,
    )


def reliable_network(**overrides):
    overrides.setdefault("retransmission", True)
    network = Network(NocConfig(**overrides))
    delivered = []
    network.set_delivery_handler(lambda node, p: delivered.append(p))
    return network, delivered


class TestProtocolBasics:
    def test_payload_crc_sensitive_to_any_byte(self):
        a = data_packet()
        b = data_packet(line=LINE[:-1] + b"\x00")
        assert payload_crc(a) != payload_crc(b)
        assert payload_crc(Packet(PacketType.REQUEST, 0, 1)) == payload_crc(
            Packet(PacketType.REQUEST, 2, 3)
        )  # control packets share the empty-payload CRC

    def test_send_stamps_seq_and_crc(self):
        network, _ = reliable_network()
        first, second = data_packet(), data_packet()
        network.send(first)
        network.send(second)
        assert (first.seq, second.seq) == (0, 1)  # per-flow, in order
        assert first.crc == payload_crc(first)
        local = data_packet(src=2, dst=2)
        network.send(local)
        assert local.seq == -1  # same-tile traffic rides unprotected

    def test_recovered_group_registered_only_when_enabled(self):
        plain = Network(NocConfig())
        assert "recovered" not in plain.kernel.stats.groups()
        wired, _ = reliable_network()
        assert "recovered" in wired.kernel.stats.groups()

    def test_clean_run_acks_everything_and_retransmits_nothing(self):
        network, delivered = reliable_network()
        packets = [data_packet(src=i, dst=15 - i) for i in range(8)]
        for packet in packets:
            network.send(packet)
        network.run_until_quiescent(max_cycles=50_000)
        assert sorted(p.pid for p in delivered) == sorted(
            p.pid for p in packets
        )
        stats = network.recovered
        assert stats.acks_sent == len(packets)
        assert stats.retransmissions == 0
        assert stats.duplicates_dropped == 0
        assert stats.crc_rejections == 0
        assert stats.recovered_packets == 0


class TestRetransmissionRecovery:
    def test_ni_drop_is_recovered_bit_exact(self):
        network, delivered = reliable_network(retx_timeout=64)
        controller = FaultController(
            FaultPlan(seed=1, scheduled=(
                ScheduledFault(cycle=1, kind="drop"),
            )),
            raise_on_violation=False,
        )
        network.attach_faults(controller)
        for _ in range(3):
            network.tick()  # arm the scheduled drop
        packet = data_packet()
        network.send(packet)
        network.run_until_quiescent(max_cycles=50_000)
        # The first copy was swallowed at the NI; the replayed clone made it.
        assert [p.pid for p in delivered] == [packet.pid]
        assert delivered[0].line == LINE
        assert delivered[0].retransmissions >= 1
        stats = network.recovered
        assert stats.retransmissions >= 1
        assert stats.recovered_packets == 1
        counts = controller.reconcile(network.cycle)
        assert counts == {
            "detected": 0, "degraded": 0, "recovered": 1, "silent": 0,
        }
        assert not controller.checker.violations  # nothing was lost

    def test_corruption_is_nacked_and_redelivered_bit_exact(self):
        network, delivered = reliable_network(retx_timeout=64)
        controller = FaultController(
            FaultPlan(seed=1, scheduled=(
                ScheduledFault(cycle=1, kind="payload"),
            )),
            raise_on_violation=False,
        )
        network.attach_faults(controller)
        packet = data_packet()
        network.send(packet)
        network.run_until_quiescent(max_cycles=50_000)
        # The corrupted copy was CRC-rejected before the endpoint saw it.
        assert [p.pid for p in delivered] == [packet.pid]
        assert delivered[0].line == LINE
        stats = network.recovered
        assert stats.crc_rejections >= 1
        assert stats.nacks_sent >= 1
        assert stats.recovered_packets == 1
        counts = controller.reconcile(network.cycle)
        assert counts["recovered"] == 1
        assert counts["silent"] == 0
        assert controller.checker.mismatches == 0  # endpoint never saw dirt

    def test_duplicates_from_premature_timeouts_are_suppressed(self):
        # A timeout far below the round trip makes the source replay while
        # the original is still in flight: the destination must deliver
        # exactly once and drop the rest as duplicates.
        network, delivered = reliable_network(retx_timeout=8)
        packet = data_packet(src=0, dst=15)
        network.send(packet)
        network.run_until_quiescent(max_cycles=50_000)
        assert [p.pid for p in delivered] == [packet.pid]
        assert delivered[0].line == LINE
        stats = network.recovered
        assert stats.retransmissions >= 1
        assert stats.duplicates_dropped >= 1

    def test_retry_cap_abandons_to_loss_detection(self):
        # Every injection (original and clones alike) is swallowed at the
        # NI, so the replay buffer exhausts its retry budget and must hand
        # the packet to the integrity layer as an explicit loss.
        network, delivered = reliable_network(
            retx_timeout=32, retx_max_retries=2
        )
        controller = FaultController(
            FaultPlan(seed=1, drop_rate=1.0), raise_on_violation=False
        )
        network.attach_faults(controller)
        packet = data_packet()
        network.send(packet)
        network.run_until_quiescent(max_cycles=50_000)
        assert delivered == []
        assert network.recovered.retries_exhausted == 1
        counts = controller.reconcile(network.cycle)
        assert counts["silent"] == 0
        assert counts["recovered"] == 0
        assert counts["detected"] == controller.faults_injected
        violations = controller.checker.violations
        assert [v.reason for v in violations] == ["lost"]
        capsule = violations[0].capsule
        assert capsule.pid == packet.pid
        assert capsule.seq == 0
        assert "retransmissions" in capsule.describe()


class TestInvariantMonitor:
    def test_clean_traffic_passes_every_check(self):
        network, delivered = reliable_network(
            invariant_interval=16, retransmission=False
        )
        for i in range(8):
            network.send(data_packet(src=i, dst=15 - i))
        network.run_until_quiescent(max_cycles=50_000)
        assert len(delivered) == 8
        assert network.monitor is not None
        assert network.monitor.checks_run > 0
        assert network.monitor.violations_raised == 0

    def test_permanent_wedge_raises_structured_violation(self):
        network, _ = reliable_network(
            retransmission=False, invariant_interval=16,
            invariant_patience=3,
        )
        controller = FaultController(
            FaultPlan(seed=1, scheduled=(
                ScheduledFault(
                    cycle=3, kind="wedge", node=0, duration=PERMANENT
                ),
            )),
            raise_on_violation=False,
        )
        network.attach_faults(controller)
        network.send(data_packet())
        with pytest.raises(InvariantViolation) as excinfo:
            network.run_until_quiescent(max_cycles=50_000)
        violation = excinfo.value
        assert violation.kind == "forward-progress"
        assert "made no progress" in violation.detail
        assert "wedge snapshot" in violation.snapshot
        assert "wedged_until" in violation.snapshot
        assert violation.cycle > 0

    def test_permanent_wedge_is_squashed_and_recovered(self):
        network, delivered = reliable_network(
            retx_timeout=512, invariant_interval=16,
            invariant_patience=3, invariant_recovery=True,
        )
        controller = FaultController(
            FaultPlan(seed=1, scheduled=(
                ScheduledFault(
                    cycle=3, kind="wedge", node=0, duration=PERMANENT
                ),
            )),
            raise_on_violation=False,
        )
        network.attach_faults(controller)
        packet = data_packet()
        network.send(packet)
        network.run_until_quiescent(max_cycles=50_000)
        # The wedged chain was evicted and the victim replayed bit-exact.
        assert [p.pid for p in delivered] == [packet.pid]
        assert delivered[0].line == LINE
        stats = network.recovered
        assert stats.invariant_recoveries >= 1
        assert stats.flits_squashed > 0
        assert stats.recovered_packets == 1
        counts = controller.reconcile(network.cycle)
        assert counts["recovered"] == 1
        assert counts["silent"] == 0


def _artifact(report, name: str) -> None:
    """Drop the failing report (summary + wedge snapshot) where CI can
    pick it up as an artifact (``REPRO_WEDGE_DIR``)."""
    wedge_dir = os.environ.get("REPRO_WEDGE_DIR")
    if not wedge_dir:
        return
    directory = Path(wedge_dir)
    directory.mkdir(parents=True, exist_ok=True)
    (directory / f"{name}.txt").write_text(report.summary() + "\n")


class TestRecoveryCampaign:
    """The acceptance bar: mixed campaigns with zero lost payloads."""

    PLAN = FaultPlan(
        seed=FAULT_SEED,
        payload_rate=0.006,
        drop_rate=0.03,
        credit_rate=0.006,
        wedge_rate=0.003,
        engine_stall_rate=0.15,
        engine_bitflip_rate=0.15,
    )

    def spec(self, **kwargs) -> CampaignSpec:
        kwargs.setdefault("topology", FAULT_TOPOLOGY)
        kwargs.setdefault("cycles", 900)
        kwargs.setdefault("injection_rate", 0.06)
        kwargs.setdefault("retransmission", RETRANSMISSION)
        return CampaignSpec(**kwargs)

    def test_campaign_matrix_no_silent_no_lost(self):
        spec = self.spec()
        report = run_fault_campaign(spec, self.PLAN)
        try:
            assert report.faults_injected > 0
            assert report.silent == 0, report.summary()
            if spec.retransmission:
                # Recovery on: every payload arrives, bit-exact, and at
                # least some of the faults were healed by retransmission.
                assert report.recovered > 0, report.summary()
                assert report.lost_payloads == 0, report.summary()
                assert report.packets_delivered == report.packets_sent
                assert report.watchdog is None, report.summary()
            ledger = (
                report.detected + report.degraded + report.recovered
            )
            assert ledger == report.faults_injected
        except AssertionError:
            _artifact(report, f"campaign-{spec.topology}-seed{FAULT_SEED}")
            raise

    def test_retransmission_off_is_still_never_silent(self):
        report = run_fault_campaign(
            self.spec(cycles=400, retransmission=False),
            FaultPlan(seed=FAULT_SEED, drop_rate=0.03, credit_rate=0.006),
        )
        try:
            assert report.faults_injected > 0
            assert report.silent == 0, report.summary()
            assert report.recovered == 0  # nothing claims recovery
        except AssertionError:
            _artifact(
                report, f"campaign-off-{report.spec.topology}-seed{FAULT_SEED}"
            )
            raise

    def test_report_summary_shows_recovery_accounting(self):
        report = run_fault_campaign(
            self.spec(cycles=300, retransmission=True),
            FaultPlan(seed=FAULT_SEED, drop_rate=0.05),
        )
        text = report.summary()
        assert "retransmission on" in text
        assert "recovered=" in text
        assert "recovery:" in text
        assert "lost payloads" in text
