"""Crash-safe checkpoint/restore: round-trip invariance and envelopes.

The tentpole guarantee: a simulation snapshotted mid-run and restored
into a *fresh process-equivalent* system finishes bit-identical to an
uninterrupted run — pinned against the five golden fabric digests of
``test_golden_mesh``, so checkpointing can never drift the physics.
Around it: RDK1 envelope corruption handling (quarantine + generation
fallback), the provably-inert default, and the SIGKILL/resume campaign
path exercised with real processes.
"""

import hashlib
import os
import pickle
import signal
import subprocess
import sys
import time

import pytest

from repro.experiments import checkpoint, runner
from repro.experiments.runner import QUICK_ACCESSES, RunSpec, run_spec, spec_key
from tests.test_golden_mesh import GOLDEN_DIGESTS, result_digest

QUICK = dict(workload="blackscholes", accesses_per_core=QUICK_ACCESSES)


@pytest.fixture(autouse=True)
def _fresh_caches(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    for var in (
        "REPRO_CHECKPOINT_INTERVAL",
        "REPRO_CHECKPOINT_DIR",
        "REPRO_RESUME",
        "REPRO_SIM_LOG",
    ):
        monkeypatch.delenv(var, raising=False)
    runner.clear_cache()
    yield
    runner.clear_cache()


def _build_cold(spec):
    """Full cold-start construction, as ``runner._simulate`` does it."""
    from repro.cmp.schemes import make_scheme
    from repro.cmp.system import CmpSystem
    from repro.workloads.trace import generate_traces

    config = spec.config()
    traces = generate_traces(
        spec.profile(),
        config.n_cores,
        spec.accesses_per_core,
        seed=spec.seed,
        line_size=config.line_size,
    )
    system = CmpSystem(
        config,
        make_scheme(spec.scheme, algorithm=spec.algorithm),
        traces,
        warmup_fraction=spec.warmup_fraction,
    )
    runner._train_if_needed(system, spec)
    return system


class TestRoundTripInvariance:
    @pytest.mark.parametrize("scheme", sorted(GOLDEN_DIGESTS))
    def test_restore_reproduces_the_golden_digest(self, scheme):
        """Pause mid-run, pickle the state (as a checkpoint would),
        restore into a *fresh* system, finish: bit-identical to the
        uninterrupted golden run — same full/measured snapshots, cycles
        and latency, byte for byte."""
        spec = RunSpec(scheme=scheme, **QUICK)
        paused = _build_cold(spec)
        assert paused.run(pause_at=1500) is None
        assert paused.cycle >= 1500  # genuinely mid-run
        state = pickle.loads(
            pickle.dumps(paused.state_dict(), pickle.HIGHEST_PROTOCOL)
        )
        fresh = checkpoint.build_system(spec)
        fresh.load_state(state)
        result = fresh.run()
        assert result_digest(result) == GOLDEN_DIGESTS[scheme], (
            f"restored {scheme} run diverged from the golden digest — "
            f"checkpoint/restore is not state-complete"
        )

    @pytest.mark.parametrize("scheme", ["cc", "disco"])
    def test_restore_under_batch_mode_reproduces_the_golden_digest(
        self, scheme, monkeypatch
    ):
        """The pause/pickle/restore round trip under the batched sweep
        (``REPRO_KERNEL_MODE=batch``): FabricState travels through the
        version-2 Network envelope and the finished run still hits the
        golden digest.  ``cc`` exercises the fast path, ``disco`` the
        per-router fallback."""
        monkeypatch.setenv("REPRO_KERNEL_MODE", "batch")
        spec = RunSpec(scheme=scheme, **QUICK)
        paused = _build_cold(spec)
        assert paused.run(pause_at=1500) is None
        state = pickle.loads(
            pickle.dumps(paused.state_dict(), pickle.HIGHEST_PROTOCOL)
        )
        fresh = checkpoint.build_system(spec)
        fresh.load_state(state)
        result = fresh.run()
        assert result_digest(result) == GOLDEN_DIGESTS[scheme]

    def test_batch_snapshot_rejected_under_event_restore(self, monkeypatch):
        """Mode is part of the kernel envelope: a snapshot taken under
        batch scheduling must refuse to restore into an event kernel."""
        monkeypatch.setenv("REPRO_KERNEL_MODE", "batch")
        spec = RunSpec(scheme="baseline", **QUICK)
        system = _build_cold(spec)
        assert system.run(pause_at=200) is None
        state = system.state_dict()
        assert state["kernel"]["mode"] == "batch"
        monkeypatch.setenv("REPRO_KERNEL_MODE", "event")
        with pytest.raises(ValueError, match="kernel mode mismatch"):
            checkpoint.build_system(spec).load_state(state)

    def test_kernel_rejects_version_and_mode_mismatch(self):
        spec = RunSpec(scheme="baseline", **QUICK)
        system = _build_cold(spec)
        assert system.run(pause_at=200) is None
        state = system.state_dict()
        bad_version = dict(state, version=99)
        with pytest.raises(ValueError, match="version"):
            checkpoint.build_system(spec).load_state(bad_version)
        kernel_state = dict(state["kernel"], event_driven=not
                            state["kernel"]["event_driven"])
        with pytest.raises(ValueError, match="kernel mode mismatch"):
            checkpoint.build_system(spec).load_state(
                dict(state, kernel=kernel_state)
            )


class TestInertDefault:
    def test_off_by_default_no_session_no_files(self):
        spec = RunSpec(scheme="baseline", **QUICK)
        assert checkpoint.session_for(spec) is None
        run_spec(spec)
        assert not checkpoint.checkpoint_dir().exists()

    def test_interval_zero_keeps_golden_digest_and_cache_envelope(self):
        """Checkpointing off must be *provably* inert: the result hits the
        pre-checkpoint golden digest and the disk-cache envelope format is
        untouched."""
        spec = RunSpec(scheme="disco", **QUICK)
        result = run_spec(spec)
        assert result_digest(result) == GOLDEN_DIGESTS["disco"]
        blob = runner._disk_path(spec).read_bytes()
        assert blob.startswith(runner._CACHE_MAGIC)
        payload = blob[runner._ENVELOPE_HEADER:]
        assert (
            blob[len(runner._CACHE_MAGIC):runner._ENVELOPE_HEADER]
            == hashlib.sha256(payload).digest()
        )

    def test_periodic_checkpointing_does_not_change_results(
        self, monkeypatch
    ):
        """With checkpointing *on*, the digest still matches golden and
        the envelopes are discarded once the run completes."""
        monkeypatch.setenv("REPRO_CHECKPOINT_INTERVAL", "500")
        spec = RunSpec(scheme="disco", **QUICK)
        result = run_spec(spec)
        assert result_digest(result) == GOLDEN_DIGESTS["disco"]
        current, previous = checkpoint.checkpoint_paths(spec_key(spec))
        assert not current.exists() and not previous.exists()


class TestEnvelopes:
    def _saved(self, key="k" * 8, cycle=123):
        checkpoint.save_checkpoint(key, cycle, {"payload": list(range(8))})
        return key

    def test_save_load_round_trip(self):
        key = self._saved()
        envelope = checkpoint.load_checkpoint(key)
        assert envelope["cycle"] == 123
        assert envelope["state"] == {"payload": list(range(8))}

    def test_last_two_generations_retained(self):
        key = self._saved(cycle=100)
        checkpoint.save_checkpoint(key, 200, {"payload": "newer"})
        current, previous = checkpoint.checkpoint_paths(key)
        assert current.exists() and previous.exists()
        assert checkpoint.load_checkpoint(key)["cycle"] == 200

    def test_truncated_envelope_quarantined_falls_back(self):
        key = self._saved(cycle=100)
        checkpoint.save_checkpoint(key, 200, {"payload": "newer"})
        current, _ = checkpoint.checkpoint_paths(key)
        current.write_bytes(current.read_bytes()[:-5])
        envelope = checkpoint.load_checkpoint(key)
        assert envelope["cycle"] == 100  # older generation served
        assert current.with_name(current.name + ".corrupt").exists()

    def test_wrong_magic_quarantined(self):
        key = self._saved()
        current, _ = checkpoint.checkpoint_paths(key)
        current.write_bytes(b"RDK0" + current.read_bytes()[4:])
        assert checkpoint.load_checkpoint(key) is None
        assert current.with_name(current.name + ".corrupt").exists()

    def test_checksum_valid_but_unpicklable_quarantined(self):
        key = self._saved()
        current, _ = checkpoint.checkpoint_paths(key)
        payload = b"not a pickle, but faithfully checksummed"
        current.write_bytes(
            checkpoint.CHECKPOINT_MAGIC
            + hashlib.sha256(payload).digest()
            + payload
        )
        assert checkpoint.load_checkpoint(key) is None
        assert current.with_name(current.name + ".corrupt").exists()

    def test_misfiled_key_quarantined(self):
        key = self._saved()
        current, _ = checkpoint.checkpoint_paths(key)
        other = checkpoint.checkpoint_paths("other-key")[0]
        other.parent.mkdir(parents=True, exist_ok=True)
        os.replace(current, other)
        assert checkpoint.load_checkpoint("other-key") is None
        assert other.with_name(other.name + ".corrupt").exists()

    def test_discard_removes_both_generations(self):
        key = self._saved(cycle=100)
        checkpoint.save_checkpoint(key, 200, {"payload": "newer"})
        checkpoint.discard_checkpoints(key)
        current, previous = checkpoint.checkpoint_paths(key)
        assert not current.exists() and not previous.exists()


_CHILD = """\
import sys
from repro.experiments.runner import RunSpec, run_spec, QUICK_ACCESSES
spec = RunSpec(scheme="disco", workload="blackscholes",
               accesses_per_core=QUICK_ACCESSES)
result = run_spec(spec)
from tests.test_golden_mesh import result_digest
print("digest:" + result_digest(result))
from repro.experiments.checkpoint import restores
print("restores:" + str(restores()))
"""


class TestKillResume:
    def test_sigkilled_run_resumes_from_checkpoint(self, tmp_path):
        """Real-process crash/recover: SIGKILL a checkpointing child
        mid-run, relaunch with ``REPRO_RESUME=1``, and require (a) the
        resumed child actually restored a checkpoint and (b) its final
        digest is byte-identical to the golden uninterrupted run."""
        env = dict(
            os.environ,
            REPRO_CACHE_DIR=str(tmp_path / "cache"),
            REPRO_CHECKPOINT_INTERVAL="200",
            PYTHONPATH=os.pathsep.join(sys.path),
        )
        child = subprocess.Popen(
            [sys.executable, "-c", _CHILD],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        spec = RunSpec(scheme="disco", **QUICK)
        ckpt = (
            tmp_path / "cache" / "checkpoints" / f"{spec_key(spec)}.ckpt"
        )
        deadline = time.monotonic() + 120
        while not ckpt.exists():
            if child.poll() is not None:
                pytest.fail(
                    "child finished before writing any checkpoint — "
                    "shrink the interval"
                )
            if time.monotonic() > deadline:
                child.kill()
                pytest.fail("no checkpoint appeared within 120s")
            time.sleep(0.02)
        child.send_signal(signal.SIGKILL)
        child.wait()

        env["REPRO_RESUME"] = "1"
        resumed = subprocess.run(
            [sys.executable, "-c", _CHILD],
            env=env,
            capture_output=True,
            text=True,
            check=True,
            timeout=300,
        )
        lines = dict(
            line.split(":", 1)
            for line in resumed.stdout.splitlines()
            if ":" in line
        )
        assert int(lines["restores"]) >= 1, resumed.stdout
        assert lines["digest"] == GOLDEN_DIGESTS["disco"], (
            "resumed run diverged from the golden digest"
        )
        # Success discards the envelopes; the disk-cache result remains.
        assert not ckpt.exists()
