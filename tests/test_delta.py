"""Tests for the DISCO delta compressor and separate-compression session."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.delta import (
    DeltaCompressor,
    SeparateDeltaSession,
    _HEADER_BITS,
)


def make_line_from_chunks(values, width=8, line=64):
    return b"".join(v.to_bytes(width, "little") for v in values)[:line]


class TestDeltaCompressor:
    def test_zero_line(self):
        algo = DeltaCompressor()
        compressed = algo.compress(b"\x00" * 64)
        assert compressed.size_bits == _HEADER_BITS + 1
        assert algo.decompress(compressed) == b"\x00" * 64

    def test_repeated_chunk_line(self):
        algo = DeltaCompressor()
        line = (0xDEADBEEFCAFEF00D).to_bytes(8, "little") * 8
        compressed = algo.compress(line)
        assert compressed.size_bits == _HEADER_BITS + 64 + 1
        assert algo.decompress(compressed) == line

    def test_first_chunk_base_compression(self):
        base = 0x7000_0000_0000
        values = [base + i * 8 for i in range(8)]  # deltas fit one byte
        line = make_line_from_chunks(values)
        algo = DeltaCompressor()
        compressed = algo.compress(line)
        # header + 8B base + 7 x (select bit + 1B delta) + tag bit
        assert compressed.size_bits == _HEADER_BITS + 64 + 7 * 9 + 1
        assert algo.decompress(compressed) == line

    def test_zero_base_handles_small_values(self):
        values = [100, 3, 250, 17, 99, 0, 255, 42]
        line = make_line_from_chunks(values)
        algo = DeltaCompressor()
        compressed = algo.compress(line)
        assert compressed.compressible
        assert algo.decompress(compressed) == line

    def test_mixed_bases(self):
        base = 1 << 40
        values = [base, base + 4, 7, base + 100, 0, base + 9, 3, base + 80]
        line = make_line_from_chunks(values)
        algo = DeltaCompressor()
        compressed = algo.compress(line)
        assert compressed.compressible
        assert algo.decompress(compressed) == line

    def test_negative_deltas(self):
        base = 1 << 30
        values = [base, base - 100, base - 1, base + 127, base - 128,
                  base + 1, base - 50, base + 50]
        line = make_line_from_chunks(values)
        algo = DeltaCompressor()
        assert algo.decompress(algo.compress(line)) == line

    def test_incompressible_random(self):
        rng = random.Random(99)
        line = rng.getrandbits(512).to_bytes(64, "little")
        algo = DeltaCompressor()
        compressed = algo.compress(line)
        assert algo.decompress(compressed) == line

    def test_unit_validation(self):
        with pytest.raises(ValueError):
            DeltaCompressor(units=((8, 8),))  # delta not narrower
        with pytest.raises(ValueError):
            DeltaCompressor(line_size=64, units=((48, 1),))

    def test_four_byte_base_geometry_wins_for_narrow32(self):
        values32 = [1000 + i for i in range(16)]
        line = b"".join(v.to_bytes(4, "little") for v in values32)
        algo = DeltaCompressor()
        compressed = algo.compress(line)
        # (4,1) geometry: header + 32 base + 15*(1+8) bits
        assert compressed.size_bits == _HEADER_BITS + 32 + 15 * 9 + 1
        assert algo.decompress(compressed) == line


class TestSeparateDeltaSession:
    def test_matches_content_after_streaming(self):
        base = 0x5000_0000
        values = [base + i for i in range(8)]
        line = make_line_from_chunks(values)
        session = SeparateDeltaSession()
        session.feed(line[:16])  # two flits arrive first (paper example)
        session.feed(line[16:])
        assert session.reconstruct() == line

    def test_streaming_size_never_smaller_than_whole(self):
        """§3.3-A: separate compression sacrifices compression rate."""
        rng = random.Random(5)
        algo = DeltaCompressor()
        for _ in range(40):
            base = rng.randrange(1 << 40)
            values = [
                (base + rng.randrange(-100, 100)) & ((1 << 64) - 1)
                for _ in range(8)
            ]
            line = make_line_from_chunks(values)
            whole = algo.compress(line)
            session = SeparateDeltaSession()
            session.feed(line)
            separate = session.result()
            assert separate.size_bits >= whole.size_bits - _HEADER_BITS

    def test_partial_feed_requires_whole_chunks(self):
        session = SeparateDeltaSession()
        with pytest.raises(ValueError):
            session.feed(b"\x00" * 3)

    def test_escape_chunks_roundtrip(self):
        rng = random.Random(11)
        line = rng.getrandbits(512).to_bytes(64, "little")
        session = SeparateDeltaSession()
        for i in range(0, 64, 8):
            session.feed(line[i : i + 8])
        assert session.reconstruct() == line
        result = session.result()
        assert result.size_bits <= 8 * 64 + 1 + 2 * 8  # tags bounded

    def test_bits_accumulate_per_feed(self):
        session = SeparateDeltaSession()
        added_first = session.feed(b"\x01" * 8)
        added_second = session.feed(b"\x01" * 8)
        assert added_first == 2 + 64  # raw base chunk + tag
        assert added_second == 2 + 8  # one-byte delta vs base + tag
        assert session.size_bits == added_first + added_second

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            SeparateDeltaSession(chunk_width=4, delta_width=4)

    @given(st.lists(st.integers(0, 2**64 - 1), min_size=8, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_streaming_roundtrip_property(self, values):
        line = make_line_from_chunks(values)
        session = SeparateDeltaSession()
        session.feed(line[:24])
        session.feed(line[24:])
        assert session.reconstruct() == line
