"""Shared test fixtures.

The experiment runner persists simulation results to a user-level disk
cache (``~/.cache/repro-disco``).  Tests must neither read stale results
from it (a cache hit would mask a behaviour change) nor pollute it, so
every test session gets a private, throwaway cache directory.
"""

import pytest


@pytest.fixture(autouse=True, scope="session")
def _isolated_disk_cache(tmp_path_factory):
    cache_root = tmp_path_factory.mktemp("repro-disco-cache")
    mp = pytest.MonkeyPatch()
    mp.setenv("REPRO_CACHE_DIR", str(cache_root))
    yield
    mp.undo()
