"""Unit tests for CMP-layer pieces: messages, schemes, config, core model."""

import pytest

from repro.cmp.config import SystemConfig
from repro.cmp.core_model import CoreModel
from repro.cmp.messages import Message, MessageKind
from repro.cmp.schemes import SCHEME_NAMES, make_scheme
from repro.core.config import DiscoConfig
from repro.core.scheduling import (
    PRIORITY_DEMOTED,
    PRIORITY_NORMAL,
    baseline_priority,
    disco_priority,
)
from repro.noc.flit import Packet, PacketType
from repro.workloads.trace import MemoryAccess


class TestMessages:
    def test_packet_type_mapping(self):
        assert MessageKind.GETS.packet_type is PacketType.REQUEST
        assert MessageKind.DATA.packet_type is PacketType.RESPONSE
        assert MessageKind.WB_DATA.packet_type is PacketType.RESPONSE
        assert MessageKind.INV.packet_type is PacketType.COHERENCE
        assert MessageKind.WB_ACK.packet_type is PacketType.COHERENCE
        assert MessageKind.MEM_READ.packet_type is PacketType.REQUEST
        assert MessageKind.MEM_WB.packet_type is PacketType.RESPONSE

    def test_data_kinds_require_payload(self):
        with pytest.raises(ValueError):
            Message(kind=MessageKind.DATA, addr=0, src=0, dst=1)
        message = Message(
            kind=MessageKind.DATA, addr=0, src=0, dst=1, data=b"\x00" * 64
        )
        assert message.kind.carries_data

    def test_raw_at_destination(self):
        data = b"\x00" * 64
        to_core = Message(kind=MessageKind.DATA, addr=0, src=0, dst=1,
                          data=data)
        to_bank = Message(kind=MessageKind.WB_DATA, addr=0, src=0, dst=1,
                          data=data)
        to_dram = Message(kind=MessageKind.MEM_WB, addr=0, src=0, dst=1,
                          data=data)
        assert to_core.needs_raw_at_dst  # MSHRs hold raw blocks (§1)
        assert not to_bank.needs_raw_at_dst  # banks store compressed
        assert to_dram.needs_raw_at_dst  # DRAM cannot hold compressed


class TestSchemes:
    def test_all_names_buildable(self):
        for name in SCHEME_NAMES:
            scheme = make_scheme(name)
            assert scheme.name == name

    def test_unknown_scheme(self):
        with pytest.raises(KeyError):
            make_scheme("magic")

    def test_latency_placement(self):
        cc = make_scheme("cc")
        assert cc.bank_read_decompress_cycles > 0
        assert not cc.ni_compression
        cnc = make_scheme("cnc")
        assert cnc.ni_compression and cnc.bank_read_decompress_cycles > 0
        disco = make_scheme("disco")
        assert disco.bank_read_decompress_cycles == 0
        assert disco.use_disco_routers and disco.send_compressed_from_bank
        ideal = make_scheme("ideal")
        assert ideal.store_compressed
        assert ideal.bank_read_decompress_cycles == 0

    def test_algorithm_propagates_into_disco_config(self):
        scheme = make_scheme("disco", algorithm="sc2")
        assert scheme.disco.algorithm == "sc2"
        assert scheme.compression_cycles == 6
        assert scheme.decompression_cycles == 8

    def test_custom_disco_config_respected(self):
        disco = DiscoConfig(cc_threshold=5.0)
        scheme = make_scheme("disco", disco=disco)
        assert scheme.disco.cc_threshold == 5.0


class TestSystemConfig:
    def test_table2_values(self):
        config = SystemConfig.table2()
        assert config.n_cores == 16
        assert config.llc_capacity_bytes == 4 * 1024 * 1024
        assert config.home_node(17) == 1

    def test_scaled_preserves_hierarchy_ratio(self):
        scaled = SystemConfig.scaled_4x4()
        l1_bytes = scaled.l1_sets * scaled.l1_ways * scaled.line_size
        assert l1_bytes * scaled.n_cores < scaled.llc_capacity_bytes

    def test_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(l1_sets=0)
        with pytest.raises(ValueError):
            SystemConfig(mc_nodes=(99,))
        with pytest.raises(ValueError):
            SystemConfig(core_window=0)


class TestCoreModel:
    def make_core(self, n=5, gap=3, warmup=0):
        trace = [MemoryAccess(gap, False, i) for i in range(n)]
        return CoreModel(0, trace, window=2, warmup=warmup)

    def test_issue_pacing(self):
        core = self.make_core(gap=5)
        assert not core.can_issue(cycle=4)
        assert core.can_issue(cycle=5)
        core.issued(5, was_hit=True)
        assert not core.can_issue(cycle=9)
        assert core.can_issue(cycle=10)

    def test_window_limits_outstanding(self):
        core = self.make_core(gap=1)
        core.issued(1, was_hit=False)
        core.issued(2, was_hit=False)
        assert core.outstanding == 2
        assert not core.can_issue(cycle=100)
        core.miss_completed(1, 50, primary=True)
        assert core.can_issue(cycle=100)

    def test_latency_accounting(self):
        core = self.make_core()
        core.issued(3, was_hit=False)
        core.miss_completed(3, 103, primary=True)
        assert core.stats.total_miss_latency == 100
        assert core.stats.avg_miss_latency == 100

    def test_warmup_excluded_from_measured(self):
        core = self.make_core(n=4, warmup=2)
        assert core.in_warmup()
        core.issued(1, was_hit=False)
        core.miss_completed(1, 11, primary=True, measured=False)
        assert core.stats.measured_primary_misses == 0
        core.issued(2, was_hit=True)
        assert core.in_warmup() is False
        core.issued(3, was_hit=False)
        core.miss_completed(3, 23, primary=True, measured=True)
        assert core.stats.measured_primary_misses == 1
        assert core.stats.avg_miss_latency == 20  # measured only

    def test_done(self):
        core = self.make_core(n=1)
        assert not core.done()
        core.issued(1, was_hit=True)
        assert core.done()

    def test_negative_outstanding_guard(self):
        core = self.make_core()
        with pytest.raises(RuntimeError):
            core.miss_completed(0, 1, primary=False)


class TestSchedulingPolicy:
    def test_baseline_uniform(self):
        data = Packet(PacketType.RESPONSE, 0, 1, line=b"\x00" * 64,
                      compressible=True)
        assert baseline_priority(data) == PRIORITY_NORMAL

    def test_disco_demotes_compressible_uncompressed(self):
        data = Packet(PacketType.RESPONSE, 0, 1, line=b"\x00" * 64,
                      compressible=True)
        assert disco_priority(data) == PRIORITY_DEMOTED

    def test_disco_restores_after_compression(self):
        from repro.compression import get_algorithm

        line = b"\x00" * 64
        packet = Packet(PacketType.RESPONSE, 0, 1, line=line,
                        compressible=True)
        packet.apply_compression(get_algorithm("delta").compress(line))
        assert disco_priority(packet) == PRIORITY_NORMAL

    def test_disco_keeps_control_normal(self):
        request = Packet(PacketType.REQUEST, 0, 1)
        assert disco_priority(request) == PRIORITY_NORMAL
