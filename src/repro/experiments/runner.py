"""Shared simulation runner with memoization.

A :class:`RunSpec` pins every degree of freedom of one simulation; results
are cached per spec so experiments that share runs (Fig. 5's latency view
and Fig. 7's energy view of the identical simulations) only pay once.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as _dc_replace
from typing import Dict, Iterable

from repro.cmp.config import SystemConfig
from repro.cmp.schemes import make_scheme
from repro.cmp.system import CmpSystem, SimulationResult
from repro.workloads.profiles import get_profile
from repro.workloads.trace import generate_traces

#: Benchmarks used by the figure experiments (a PARSEC subset keeps the
#: pure-Python cycle-level runs tractable; pass ``workloads=...`` to the
#: experiment functions for the full suite).
DEFAULT_WORKLOADS = (
    "blackscholes",
    "bodytrack",
    "canneal",
    "dedup",
    "fluidanimate",
    "freqmine",
    "streamcluster",
    "x264",
)

#: Accesses per core for figure-quality runs and for quick (test) runs.
FIGURE_ACCESSES = 1500
QUICK_ACCESSES = 300

#: Default warmup fraction (cold-start exclusion).
WARMUP_FRACTION = 0.25

#: Sample size used to train statistical algorithms (SC², FVC) per run.
TRAIN_LINES = 512


@dataclass(frozen=True)
class RunSpec:
    """Everything that identifies one simulation."""

    scheme: str
    workload: str
    algorithm: str = "delta"
    width: int = 4
    height: int = 4
    accesses_per_core: int = FIGURE_ACCESSES
    seed: int = 7
    warmup_fraction: float = WARMUP_FRACTION
    l2_sets_per_bank: int = 32
    l2_hit_latency: int = 4
    #: Working-set multiplier (for weak-scaling studies; Fig. 8 uses the
    #: paper's strong scaling — fixed workload and total cache).
    ws_scale: float = 1.0

    def config(self) -> SystemConfig:
        base = SystemConfig.scaled_mesh(
            self.width, self.height, l2_sets_per_bank=self.l2_sets_per_bank
        )
        if self.l2_hit_latency != base.l2_hit_latency:
            base = _dc_replace(base, l2_hit_latency=self.l2_hit_latency)
        return base

    def profile(self):
        profile = get_profile(self.workload)
        if self.ws_scale != 1.0:
            profile = _dc_replace(
                profile,
                working_set_lines=max(
                    64, int(profile.working_set_lines * self.ws_scale)
                ),
            )
        return profile


_CACHE: Dict[RunSpec, SimulationResult] = {}


def clear_cache() -> None:
    """Drop all memoized results (tests use this for isolation)."""
    _CACHE.clear()


def run_spec(spec: RunSpec, verbose: bool = False) -> SimulationResult:
    """Run (or recall) one simulation."""
    cached = _CACHE.get(spec)
    if cached is not None:
        return cached
    config = spec.config()
    scheme = make_scheme(spec.scheme, algorithm=spec.algorithm)
    traces = generate_traces(
        spec.profile(),
        config.n_cores,
        spec.accesses_per_core,
        seed=spec.seed,
        line_size=config.line_size,
    )
    system = CmpSystem(
        config, scheme, traces, warmup_fraction=spec.warmup_fraction
    )
    _train_if_needed(system, spec)
    if verbose:
        print(f"running {spec.scheme}/{spec.algorithm} on {spec.workload} "
              f"({spec.width}x{spec.height})...")
    result = system.run()
    _CACHE[spec] = result
    return result


def _train_if_needed(system: CmpSystem, spec: RunSpec) -> None:
    """Train statistical algorithms on a workload sample (SC²'s offline
    sampling phase; the same training is applied in every scheme)."""
    train = getattr(system.algorithm, "train", None)
    if train is None:
        return
    if spec.algorithm not in ("sc2", "fvc"):
        return
    sample = system.pool.sample(TRAIN_LINES, seed=spec.seed + 1)
    train(sample)


def run_matrix(
    schemes: Iterable[str],
    workloads: Iterable[str],
    verbose: bool = False,
    **spec_kwargs,
) -> Dict[str, Dict[str, SimulationResult]]:
    """Run scheme x workload; returns ``results[scheme][workload]``."""
    out: Dict[str, Dict[str, SimulationResult]] = {}
    for scheme in schemes:
        row: Dict[str, SimulationResult] = {}
        for workload in workloads:
            spec = RunSpec(scheme=scheme, workload=workload, **spec_kwargs)
            row[workload] = run_spec(spec, verbose=verbose)
        out[scheme] = row
    return out
