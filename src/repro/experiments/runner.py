"""Shared simulation runner: parallel fan-out + two-level result cache.

A :class:`RunSpec` pins every degree of freedom of one simulation.  The
simulator is deterministic (seeded RNGs, no wall-clock — see
:mod:`repro.sim`), so a spec fully determines its
:class:`~repro.cmp.system.SimulationResult`; that makes results cacheable
and simulations embarrassingly parallel:

- **Memo cache** (per process): experiments that share runs — Fig. 5's
  latency view and Fig. 7's energy view of the identical simulations —
  only pay once per process, as before.
- **Disk cache** (cross-process, content-addressed): results are pickled
  under ``~/.cache/repro-disco/`` (override with ``REPRO_CACHE_DIR``)
  keyed by a stable hash of the spec plus a code fingerprint
  (:data:`CODE_VERSION` + a digest of the ``repro`` sources), so
  re-running a figure is free and any code change invalidates stale
  results automatically.  Disable with ``REPRO_DISK_CACHE=0``; clear with
  :func:`clear_disk_cache` (or just delete the directory).
- **Parallel fan-out**: :func:`run_specs` / :func:`run_matrix` dispatch
  uncached specs over a ``ProcessPoolExecutor`` (workers default to the
  CPU count; pin with ``REPRO_JOBS``, ``REPRO_JOBS=1`` forces serial).
  Determinism guarantees the parallel results are bit-identical to serial
  runs — the acceptance tests assert it field for field.

The batch path is hardened against worker failure: each spec gets its own
future with a per-spec timeout (``REPRO_SPEC_TIMEOUT`` seconds, default
600; ``0`` disables) and one retry; a worker that dies abruptly
(``BrokenProcessPool``) triggers a serial in-process fallback that keeps
every already-completed result; and a batch with unrecoverable failures
raises :class:`RunnerError` naming exactly the failed specs while the
survivors stay in the memo/disk caches.  Disk-cache entries carry a
magic + SHA-256 envelope; an entry that fails validation is quarantined
(renamed ``*.corrupt``) once and recomputed.

Crash safety (see :mod:`repro.experiments.checkpoint`): a campaign keeps
an append-only JSONL journal (``campaign.journal.jsonl`` in the cache
directory) recording each spec's state (pending/running/done/failed/
quarantined); ``run_specs(resume=True)`` (or ``REPRO_RESUME=1``) replays
the journal to skip completed specs, restores partially-run ones from
their latest checkpoint, and quarantines poison specs after
``REPRO_QUARANTINE_AFTER`` crash-loops (with a capped, seeded backoff).
With ``REPRO_WATCHDOG_SECONDS`` set, pool workers write per-pid
heartbeat files carrying their simulated cycle, and a watchdog thread
SIGKILLs any worker whose cycle counter freezes past the stall budget —
wedged, as opposed to merely slow.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pickle
import random
import signal
import tempfile
import threading
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, TimeoutError as _FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, replace as _dc_replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cmp.config import SystemConfig
from repro.cmp.schemes import make_scheme
from repro.cmp.system import CmpSystem, SimulationResult
from repro.telemetry.log import (
    correlation_scope,
    current_correlation,
    ensure_level,
    get_logger,
)
from repro.telemetry.profiler import (
    RunProfile,
    merge_profiles,
    render_profile,
    write_profile,
)
from repro.workloads.profiles import get_profile
from repro.workloads.trace import generate_traces

#: Structured runner log (stdlib logging under the ``repro`` tree; level
#: from ``REPRO_LOG_LEVEL``, raised to INFO by ``verbose=True`` calls).
_LOG = get_logger("repro.runner")

#: Benchmarks used by the figure experiments (a PARSEC subset keeps the
#: pure-Python cycle-level runs tractable; pass ``workloads=...`` to the
#: experiment functions for the full suite).
DEFAULT_WORKLOADS = (
    "blackscholes",
    "bodytrack",
    "canneal",
    "dedup",
    "fluidanimate",
    "freqmine",
    "streamcluster",
    "x264",
)

#: Accesses per core for figure-quality runs and for quick (test) runs.
FIGURE_ACCESSES = 1500
QUICK_ACCESSES = 300

#: Default warmup fraction (cold-start exclusion).
WARMUP_FRACTION = 0.25

#: Sample size used to train statistical algorithms (SC², FVC) per run.
TRAIN_LINES = 512

#: Bumped when simulation semantics change in a way the source fingerprint
#: cannot see (e.g. a data-file format change).  Part of every disk-cache
#: key, so bumping it invalidates all cached results at once.
CODE_VERSION = "1"

#: Disk-cache envelope: magic (format version) + SHA-256 of the pickle
#: payload.  Bump the magic when the envelope layout changes; entries with
#: any other prefix are quarantined, not parsed.
_CACHE_MAGIC = b"RDC1"
_ENVELOPE_HEADER = len(_CACHE_MAGIC) + hashlib.sha256().digest_size

#: Default per-spec timeout for pool futures (seconds).
_DEFAULT_SPEC_TIMEOUT = 600.0

#: Pid of the process that imported this module.  Fork workers inherit the
#: parent's value, so ``os.getpid() != _MAIN_PID`` identifies pool workers
#: — the destructive test fault modes (``exit``/``hang``) only fire there,
#: never in the orchestrating process or its serial fallback.
_MAIN_PID = os.getpid()


class RunnerError(RuntimeError):
    """One or more specs in a batch failed after retries.

    ``failures`` maps each failed :class:`RunSpec` to its exception;
    ``completed`` holds every survivor — also already published to the
    memo/disk caches, so a rerun only repeats the failures.  ``prior``
    maps specs to the exception their *first* attempt raised, so a
    flaky-then-fatal sequence (say, a timeout followed by a crash) is
    fully visible in the message instead of only the last symptom.
    ``correlation`` (defaulting to the ambient correlation id when the
    batch ran inside a service/submit context) is appended to the
    message, so a failed-spec report in a client's traceback joins the
    service log, journal and flight records on one token.
    """

    def __init__(
        self,
        failures: Dict[RunSpec, BaseException],
        completed: Dict[RunSpec, "SimulationResult"],
        prior: Optional[Dict[RunSpec, BaseException]] = None,
        correlation: Optional[str] = None,
    ):
        self.failures = dict(failures)
        self.completed = dict(completed)
        self.prior = dict(prior) if prior else {}
        self.correlation = (
            correlation if correlation is not None else current_correlation()
        )

        def describe(spec: RunSpec) -> str:
            name = (
                f"{spec.scheme}/{spec.algorithm}:{spec.workload}"
                f"({spec.topology} {spec.width}x{spec.height}, "
                f"seed {spec.seed})"
            )
            earlier = self.prior.get(spec)
            if earlier is not None:
                name += f" (first attempt: {earlier!r})"
            return name

        names = ", ".join(describe(spec) for spec in failures)
        first = next(iter(failures.values()))
        suffix = f" [corr={self.correlation}]" if self.correlation else ""
        super().__init__(
            f"{len(failures)} of {len(failures) + len(completed)} specs "
            f"failed [{names}]; first error: {first!r}{suffix}"
        )


@dataclass(frozen=True)
class RunSpec:
    """Everything that identifies one simulation."""

    scheme: str
    workload: str
    algorithm: str = "delta"
    width: int = 4
    height: int = 4
    accesses_per_core: int = FIGURE_ACCESSES
    seed: int = 7
    warmup_fraction: float = WARMUP_FRACTION
    l2_sets_per_bank: int = 32
    l2_hit_latency: int = 4
    #: Working-set multiplier (for weak-scaling studies; Fig. 8 uses the
    #: paper's strong scaling — fixed workload and total cache).
    ws_scale: float = 1.0
    #: Fabric shape ("mesh", "torus", "ring", "cmesh"); non-mesh fabrics
    #: get the escape VCs their default routing needs.
    topology: str = "mesh"
    # -- telemetry knobs (repro.telemetry; all off by default — they are
    # part of the spec key, so a traced run never aliases an untraced
    # cached result) -----------------------------------------------------
    #: Time-series sampler interval in cycles (0 = off).
    stats_interval: int = 0
    #: Per-packet lifecycle tracing (events land in ``result.telemetry``).
    trace_packets: bool = False
    #: Trace every Nth injected packet (1 = every packet).
    trace_sample_interval: int = 1
    #: Per-component wall-clock profiling of the simulator; the profile
    #: rides in ``result.profile`` (named ``profile_run`` because
    #: :meth:`profile` already names the workload profile accessor).
    profile_run: bool = False

    def noc_config(self) -> "NocConfig":
        from repro.noc.config import NocConfig
        from repro.noc.routing import resolve_routing

        vcs = 2 if resolve_routing(self.topology).needs_escape_vcs else 1
        return NocConfig(
            width=self.width,
            height=self.height,
            topology=self.topology,
            vcs_per_vnet=vcs,
            stats_interval=self.stats_interval,
            trace_packets=self.trace_packets,
            trace_sample_interval=self.trace_sample_interval,
        )

    def config(self) -> SystemConfig:
        base = SystemConfig.scaled_fabric(
            self.noc_config(), l2_sets_per_bank=self.l2_sets_per_bank
        )
        if self.l2_hit_latency != base.l2_hit_latency:
            base = _dc_replace(base, l2_hit_latency=self.l2_hit_latency)
        return base

    def profile(self):
        profile = get_profile(self.workload)
        if self.ws_scale != 1.0:
            profile = _dc_replace(
                profile,
                working_set_lines=max(
                    64, int(profile.working_set_lines * self.ws_scale)
                ),
            )
        return profile


# --------------------------------------------------------------------------
# cache keys
# --------------------------------------------------------------------------

_SOURCE_FINGERPRINT: Optional[str] = None


def _source_fingerprint() -> str:
    """Digest of every ``repro`` source file (cached per process).

    Any edit to the simulator invalidates disk-cached results without
    anyone having to remember to bump :data:`CODE_VERSION`; stable across
    processes because it hashes file bytes, not interpreter state.
    """
    global _SOURCE_FINGERPRINT
    if _SOURCE_FINGERPRINT is None:
        digest = hashlib.sha256()
        root = Path(__file__).resolve().parent.parent  # src/repro
        try:
            for path in sorted(root.rglob("*.py")):
                digest.update(path.relative_to(root).as_posix().encode())
                digest.update(path.read_bytes())
        except OSError:  # pragma: no cover - zip/frozen installs
            pass
        _SOURCE_FINGERPRINT = digest.hexdigest()
    return _SOURCE_FINGERPRINT


def _kernel_mode() -> str:
    """The active scheduler mode (``event``, ``tick`` or ``batch``).

    Part of every cache key — memo and disk — so results produced under
    one ``REPRO_KERNEL_MODE`` can never alias another mode's results
    (their payloads are bit-identical by design, but the invariance tests
    that *prove* that must observe genuinely independent runs)."""
    mode = os.environ.get("REPRO_KERNEL_MODE", "event")
    return mode if mode in ("tick", "batch") else "event"


def spec_key(spec: RunSpec) -> str:
    """Stable content address of (spec, code version, kernel mode) —
    identical across processes and interpreter sessions, independent of
    hash randomization."""
    token = json.dumps(
        {
            "spec": asdict(spec),
            "code_version": CODE_VERSION,
            "source": _source_fingerprint(),
            "kernel_mode": _kernel_mode(),
        },
        sort_keys=True,
    )
    return hashlib.sha256(token.encode()).hexdigest()


# --------------------------------------------------------------------------
# the two cache levels
# --------------------------------------------------------------------------

#: Per-process memo, keyed by (spec, kernel mode) so flipping
#: ``REPRO_KERNEL_MODE`` mid-process cannot serve stale results.
_CACHE: Dict[Tuple[RunSpec, str], SimulationResult] = {}

#: Count of fresh simulations this process has performed (cache misses
#: that reached :func:`_simulate`, plus specs fanned out to pool
#: workers).  Benchmarks snapshot it around a run to tell a cold
#: measurement from a cache hit — see ``benchmarks/common.py``.
_SIMULATED = 0


def simulated_runs() -> int:
    """Fresh (non-cached) simulations performed so far in this process."""
    return _SIMULATED


def cache_dir() -> Path:
    """Disk-cache directory (``REPRO_CACHE_DIR`` overrides the default)."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override).expanduser()
    return Path("~/.cache/repro-disco").expanduser()


def disk_cache_enabled() -> bool:
    return os.environ.get("REPRO_DISK_CACHE", "1") != "0"


def clear_cache() -> None:
    """Drop all memoized in-process results (tests use this for isolation).

    The disk cache is left alone; see :func:`clear_disk_cache`.
    """
    _CACHE.clear()


def clear_disk_cache() -> int:
    """Delete every cached result file (and quarantined ``*.corrupt``
    leftovers); returns how many were removed."""
    removed = 0
    directory = cache_dir()
    if directory.is_dir():
        for pattern in ("*.pkl", "*.pkl.corrupt"):
            for path in directory.glob(pattern):
                try:
                    path.unlink()
                    removed += 1
                except OSError:  # pragma: no cover - concurrent cleanup
                    pass
    return removed


def _disk_path(spec: RunSpec) -> Path:
    return cache_dir() / f"{spec_key(spec)}.pkl"


def _quarantine(path: Path) -> None:
    """Move a bad cache entry aside (``<name>.corrupt``) so it is inspected
    at most once: the rename is what guarantees the *next* lookup is a
    clean miss instead of another validation failure."""
    try:
        os.replace(path, path.with_name(path.name + ".corrupt"))
    except OSError:  # pragma: no cover - concurrent quarantine/cleanup
        pass


def _disk_load(spec: RunSpec) -> Optional[SimulationResult]:
    if not disk_cache_enabled():
        return None
    path = _disk_path(spec)
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except FileNotFoundError:
        return None  # plain miss
    except OSError:
        _quarantine(path)  # unreadable entry (permissions, a directory...)
        return None
    header, payload = blob[:_ENVELOPE_HEADER], blob[_ENVELOPE_HEADER:]
    if (
        len(header) < _ENVELOPE_HEADER
        or not header.startswith(_CACHE_MAGIC)
        or header[len(_CACHE_MAGIC):] != hashlib.sha256(payload).digest()
    ):
        _quarantine(path)  # truncated / wrong version / bit-rotted
        return None
    try:
        return pickle.loads(payload)
    except Exception:
        # The checksum matched, so the pickle itself references something
        # this build cannot reconstruct (e.g. a renamed class the source
        # fingerprint missed).  Same treatment: quarantine and recompute.
        _quarantine(path)
        return None


def _publish_atomic(directory: Path, target: Path, blob: bytes) -> None:
    """Publish ``blob`` at ``target`` atomically (tmp + fsync +
    ``os.replace``).

    This is the whole multi-writer cache protocol: every writer stages
    into its own ``mkstemp`` file (unique per writer, so two processes —
    or two hosts sharing the directory — never touch the same staging
    file), fsyncs it so a host crash cannot publish a torn blob, and
    renames into the content-addressed path.  Concurrent writers of the
    same deterministic result race harmlessly: last rename wins with
    identical bytes, and a reader always sees either a complete old blob
    or a complete new one — never a partial write, never a ``.corrupt``
    quarantine from a mid-publish read.  The staging file is removed on
    any failure so aborted publishes cannot accumulate.
    """
    directory.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _disk_store(spec: RunSpec, result: SimulationResult) -> None:
    if not disk_cache_enabled():
        return
    payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
    blob = _CACHE_MAGIC + hashlib.sha256(payload).digest() + payload
    try:
        _publish_atomic(cache_dir(), _disk_path(spec), blob)
    except OSError:  # pragma: no cover - read-only cache dir
        pass


def result_digest(result: SimulationResult) -> str:
    """Stable content digest of one result's observable counters.

    The same payload the chaos drills hash: both registry snapshots plus
    the headline scalars, JSON-canonicalized.  Two runs of one spec are
    bit-identical exactly when their digests match, so the service
    streams this with every completed spec and the drills compare it
    against a golden serial run.
    """
    payload = {
        "full": sorted(result.snapshot_full.flat().items()),
        "measured": sorted(result.snapshot_measured.flat().items()),
        "cycles": result.cycles,
        "avg_miss_latency": result.avg_miss_latency,
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()


# --------------------------------------------------------------------------
# running
# --------------------------------------------------------------------------


def _maybe_inject_runner_fault(spec: RunSpec) -> None:
    """Test hook: ``REPRO_RUNNER_FAULT=mode:scheme:workload[:marker]``.

    Sabotages the simulation of one (scheme, workload) so the batch-level
    failure handling can be exercised end to end with real processes:

    - ``crash``       raise RuntimeError on every attempt;
    - ``crash-once``  raise once, then succeed (``marker`` file latches);
    - ``exit``        kill the *worker* process outright (os._exit) — the
      classic ``BrokenProcessPool`` trigger; never fires in the main
      process, so the serial fallback completes;
    - ``hang-once``   sleep past any sane spec timeout once
      (``REPRO_RUNNER_HANG_SECONDS``, default 5), then succeed.
    """
    setting = os.environ.get("REPRO_RUNNER_FAULT", "")
    if not setting:
        return
    parts = setting.split(":")
    if len(parts) < 3 or spec.scheme != parts[1] or spec.workload != parts[2]:
        return
    mode = parts[0]
    marker = Path(parts[3]) if len(parts) > 3 else None
    in_worker = os.getpid() != _MAIN_PID

    def _latch() -> bool:
        """True the first time only (marker file records the firing)."""
        if marker is None or marker.exists():
            return False
        try:
            marker.touch(exist_ok=False)
        except OSError:
            return False
        return True

    if mode == "crash":
        raise RuntimeError(f"injected runner fault for {spec.workload}")
    if mode == "crash-once" and _latch():
        raise RuntimeError(f"injected one-shot fault for {spec.workload}")
    if mode == "exit" and in_worker:
        os._exit(13)
    if mode == "hang-once" and in_worker and _latch():
        time.sleep(float(os.environ.get("REPRO_RUNNER_HANG_SECONDS", "5")))


def _log_simulation(spec: RunSpec) -> None:
    """Chaos-test hook: append the spec key to ``REPRO_SIM_LOG`` whenever
    a simulation actually executes (as opposed to being served from a
    cache) — a resumed campaign proves zero recomputation by intersecting
    this log with the journal's done set."""
    path = os.environ.get("REPRO_SIM_LOG", "").strip()
    if not path:
        return
    try:
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(spec_key(spec) + "\n")
    except OSError:
        pass


def _simulate(
    spec: RunSpec,
    verbose: bool = False,
    correlation: Optional[str] = None,
) -> SimulationResult:
    """Build and run one simulation (no caches — the pool workers' entry
    point, importable at module top level so specs pickle across
    processes).

    ``correlation`` is the service's submit-time id: bound as the log
    context for the whole run (every worker-side record carries it) and
    stamped into the kernel's free-form annotations.  It never enters
    the spec key or the result, so caching, digests and the disk-cache
    envelope are byte-identical with or without it.
    """
    if correlation is None:
        correlation = current_correlation()
    with correlation_scope(correlation):
        return _simulate_in_scope(spec, verbose, correlation)


def _simulate_in_scope(
    spec: RunSpec, verbose: bool, correlation: Optional[str]
) -> SimulationResult:
    _maybe_inject_runner_fault(spec)
    _log_simulation(spec)
    config = spec.config()
    scheme = make_scheme(spec.scheme, algorithm=spec.algorithm)
    traces = generate_traces(
        spec.profile(),
        config.n_cores,
        spec.accesses_per_core,
        seed=spec.seed,
        line_size=config.line_size,
    )
    system = CmpSystem(
        config, scheme, traces, warmup_fraction=spec.warmup_fraction
    )
    _train_if_needed(system, spec)
    if spec.profile_run:
        system.kernel.enable_timing(per_component=True)
    if correlation:
        system.kernel.annotations["correlation_id"] = correlation
    if verbose:
        ensure_level(logging.INFO)
    _LOG.info(
        "[%s] running %s/%s on %s (%s %dx%d, seed %d)",
        spec_key(spec)[:12],
        spec.scheme,
        spec.algorithm,
        spec.workload,
        spec.topology,
        spec.width,
        spec.height,
        spec.seed,
    )
    # Crash-safe plumbing — all of it collapses to None/no-op under the
    # default environment, keeping the hot path byte-identical.
    from repro.experiments import checkpoint as _checkpoint

    session = _checkpoint.session_for(spec)
    if session is not None:
        restored = session.maybe_restore(system)
        if restored is not None:
            _LOG.info(
                "[%s] restored checkpoint at cycle %d",
                spec_key(spec)[:12],
                restored,
            )
    timeout = _spec_timeout()
    deadline = time.monotonic() + timeout if timeout is not None else None
    progress = _progress_hook(spec, correlation)
    start = time.perf_counter()
    try:
        result = system.run(
            checkpoint_fn=session.step if session is not None else None,
            deadline=deadline,
            progress_fn=progress,
        )
    except BaseException as exc:
        _flight_dump_failure(spec, correlation, system, exc)
        raise
    finally:
        if session is not None:
            session.close()
    if session is not None:
        session.on_success()
    if result.profile is not None:
        # Stamp the end-to-end wall clock (simulate + collect) so the
        # campaign aggregate can report cycles/second throughput.
        result.profile.wall_seconds = time.perf_counter() - start
    return result


def _flight_dump_failure(
    spec: RunSpec,
    correlation: Optional[str],
    system: CmpSystem,
    exc: BaseException,
) -> None:
    """Dump the flight ring on a failed run (no-op with the plane off).

    Classifies the fabric's :class:`~repro.noc.reliability.
    InvariantViolation` separately — a violated conservation invariant
    is a simulator bug, and its postmortem should say so."""
    from repro.noc.reliability import InvariantViolation
    from repro.telemetry import flight as _flight

    if not _flight.enabled():
        return
    reason = (
        "invariant_violation"
        if isinstance(exc, (InvariantViolation, AssertionError))
        else "exception"
    )
    recorder = _flight.recorder(role="worker")
    recorder.record(
        "failure", key=spec_key(spec)[:12], error=repr(exc), reason=reason
    )
    recorder.dump(
        reason,
        corr=correlation,
        extra={
            "key": spec_key(spec),
            "scheme": spec.scheme,
            "workload": spec.workload,
            "cycle": system.cycle,
            "error": repr(exc),
            "phase_seconds": dict(
                getattr(system.kernel, "phase_seconds", {}) or {}
            ),
        },
    )


def _train_if_needed(system: CmpSystem, spec: RunSpec) -> None:
    """Train statistical algorithms on a workload sample (SC²'s offline
    sampling phase; the same training is applied in every scheme)."""
    train = getattr(system.algorithm, "train", None)
    if train is None:
        return
    if spec.algorithm not in ("sc2", "fvc"):
        return
    sample = system.pool.sample(TRAIN_LINES, seed=spec.seed + 1)
    train(sample)


def run_spec(spec: RunSpec, verbose: bool = False) -> SimulationResult:
    """Run (or recall) one simulation: memo -> disk -> simulate."""
    cached = _CACHE.get((spec, _kernel_mode()))
    if cached is not None:
        return cached
    result = _disk_load(spec)
    if result is None:
        global _SIMULATED
        _SIMULATED += 1
        result = _simulate(spec, verbose=verbose)
        _disk_store(spec, result)
    _CACHE[(spec, _kernel_mode())] = result
    return result


_JOBS_WARNED = False


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` if set (min 1), else the CPU count.

    An unparseable ``REPRO_JOBS`` falls back to the CPU count with a
    one-time :class:`RuntimeWarning` naming the bad value — a typo'd pin
    should not silently fan out across every core.
    """
    global _JOBS_WARNED
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            if not _JOBS_WARNED:
                _JOBS_WARNED = True
                warnings.warn(
                    f"ignoring invalid REPRO_JOBS={env!r} "
                    f"(not an integer); using the CPU count",
                    RuntimeWarning,
                    stacklevel=2,
                )
    return os.cpu_count() or 1


def _retry_backoff(spec: Optional[RunSpec] = None) -> float:
    """Jittered pause (seconds) before resubmitting a failed spec.

    A retry fired immediately after a failure tends to land in the same
    transient condition that killed the first attempt (a loaded machine,
    a descriptor-exhaustion spike); a short randomized pause decorrelates
    the attempts.  Base seconds come from ``REPRO_RETRY_BACKOFF``
    (default 0.1; ``0`` disables, unparseable values use the default)
    and the actual sleep is uniform in [0.5x, 1.5x] of the base.  When a
    spec is given the jitter is drawn from a generator seeded by its key
    — reproducible across runs, decorrelated across specs — instead of
    the process-global RNG (whose draws would otherwise depend on
    everything else that consumed randomness first).
    """
    env = os.environ.get("REPRO_RETRY_BACKOFF", "").strip()
    base = 0.1
    if env:
        try:
            base = float(env)
        except ValueError:
            base = 0.1
    if base <= 0:
        return 0.0
    rng = random.Random(spec_key(spec)) if spec is not None else random
    return rng.uniform(0.5, 1.5) * base


def _pause_before_retry(spec: Optional[RunSpec] = None) -> None:
    delay = _retry_backoff(spec)
    if delay > 0:
        time.sleep(delay)


def _spec_timeout() -> Optional[float]:
    """Per-spec future timeout in seconds (``REPRO_SPEC_TIMEOUT``; ``0``
    or negative disables, unparseable values use the default)."""
    env = os.environ.get("REPRO_SPEC_TIMEOUT", "").strip()
    if env:
        try:
            value = float(env)
        except ValueError:
            return _DEFAULT_SPEC_TIMEOUT
        return value if value > 0 else None
    return _DEFAULT_SPEC_TIMEOUT


# --------------------------------------------------------------------------
# campaign journal (append-only JSONL; the resume ledger)
# --------------------------------------------------------------------------


def _journal_path() -> Path:
    return cache_dir() / "campaign.journal.jsonl"


def _journal_lock() -> "FileLock":
    """The journal's cross-process/cross-host write lock.

    Appends are single ``O_APPEND`` writes (atomic on local filesystems)
    but network filesystems can interleave concurrent appends, and the
    service runs many journaling processes against one shared cache
    directory — so writes serialize through a lockfile with stale-owner
    takeover (a SIGKILLed holder's lock is broken after
    ``REPRO_LOCK_STALE_SECONDS``, default 30)."""
    from repro.experiments.lockfile import FileLock

    stale = 30.0
    env = os.environ.get("REPRO_LOCK_STALE_SECONDS", "").strip()
    if env:
        try:
            stale = max(1.0, float(env))
        except ValueError:
            pass
    return FileLock(
        cache_dir() / "campaign.journal.lock",
        stale_seconds=stale,
        timeout=5.0,
    )


def _journal_append(key: str, state: str, **extra) -> None:
    """Append one spec-state record.  Journal I/O failures never take a
    campaign down — the journal is a recovery aid, not a correctness
    dependency (results still flow through the content-addressed
    caches).  The record is encoded up front and written with one
    ``os.write`` on an ``O_APPEND`` descriptor, under the journal
    lockfile: concurrent writers (threads, processes, hosts) each land a
    whole line or nothing — a torn *tail* can only come from a crash
    mid-write, which replay already tolerates."""
    from repro.experiments.lockfile import LockTimeout

    record = {"key": key, "state": state, "ts": time.time()}
    corr = current_correlation()
    if corr:
        # The ambient correlation id (service submit context) makes every
        # journal line greppable alongside the HTTP events and flight
        # records; explicit ``corr=`` kwargs still win.
        record.setdefault("corr", corr)
    record.update(extra)
    line = (json.dumps(record, sort_keys=True) + "\n").encode()
    path = _journal_path()
    lock = _journal_lock()
    try:
        lock.acquire()
    except (LockTimeout, OSError):
        pass  # degrade to a lockless (still single-write) append
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(path, os.O_CREAT | os.O_APPEND | os.O_WRONLY, 0o644)
        try:
            os.write(fd, line)
        finally:
            os.close(fd)
    except OSError:
        pass
    finally:
        lock.release()


def _journal_read() -> Dict[str, dict]:
    """Fold the journal into per-key ``{"state", "attempts"}`` entries
    (plus ``corr`` when any record for the key carried a correlation id —
    the join token that lines the journal up with service logs, flight
    records and ``/submit`` responses).

    Last record wins for ``state``.  Every ``running`` record counts one
    attempt and any clean terminal record (``done``/``failed``) resets
    the count, so ``attempts`` measures *consecutive interrupted runs* —
    a crash between ``running`` and its terminal record leaves the
    attempt standing, and that asymmetry is exactly what detects
    crash-looping poison specs.  Torn or unparseable lines (a crash
    mid-append) are skipped, not fatal.
    """
    entries: Dict[str, dict] = {}
    try:
        with open(_journal_path(), "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError:
        return entries
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue  # torn tail from a crash mid-append
        key = record.get("key")
        state = record.get("state")
        if not isinstance(key, str) or not isinstance(state, str):
            continue
        entry = entries.setdefault(key, {"state": state, "attempts": 0})
        entry["state"] = state
        if isinstance(record.get("corr"), str):
            entry["corr"] = record["corr"]
        if state == "running":
            entry["attempts"] += 1
        elif state in ("done", "failed"):
            entry["attempts"] = 0
    return entries


def _quarantine_after() -> int:
    """Crash-loop bound: a spec interrupted mid-run this many consecutive
    times is quarantined on resume instead of retried forever
    (``REPRO_QUARANTINE_AFTER``, default 3, minimum 1)."""
    env = os.environ.get("REPRO_QUARANTINE_AFTER", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return 3


# --------------------------------------------------------------------------
# heartbeats + watchdog (progress supervision for pool workers)
# --------------------------------------------------------------------------


def _heartbeat_writer(spec: RunSpec):
    """Progress hook writing this process's heartbeat file, or ``None``
    when supervision is off (``REPRO_HEARTBEAT_DIR`` unset).

    The heartbeat carries the last simulated cycle: the watchdog
    distinguishes *wedged* (cycle frozen) from merely *slow* (cycle still
    advancing), so a loaded machine is never punished.  Writes are atomic
    (tmp + ``os.replace``) and throttled to roughly one per second.
    """
    directory = os.environ.get("REPRO_HEARTBEAT_DIR", "").strip()
    if not directory:
        return None
    path = Path(directory) / f"hb_{os.getpid()}.json"
    key = spec_key(spec)
    state = {"last": 0.0}

    def _beat(system: CmpSystem) -> None:
        now = time.monotonic()
        if now - state["last"] < 1.0:
            return
        state["last"] = now
        record = {
            "pid": os.getpid(),
            "key": key,
            "cycle": system.cycle,
            "ts": time.time(),
        }
        corr = current_correlation()
        if corr:
            record["corr"] = corr
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=str(path.parent), suffix=".tmp"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(record))
            os.replace(tmp_name, path)
        except OSError:
            pass

    return _beat


def _progress_hook(spec: RunSpec, correlation: Optional[str] = None):
    """Compose the heartbeat writer with the flight recorder's periodic
    inflight dump, or ``None`` when both knobs are off.

    SIGKILL (the watchdog's verdict for a wedged worker) gives no chance
    to dump after the fact, so the worker persists its ring *ahead* of
    death: roughly once a second the progress callback dumps the flight
    ring with ``reason="inflight"``, carrying the correlation id and the
    last sampled simulated cycle.  The file surviving the kill is the
    postmortem artifact the chaos drill asserts on.
    """
    beat = _heartbeat_writer(spec)
    from repro.telemetry import flight as _flight

    if not _flight.enabled():
        return beat
    recorder = _flight.recorder(role="worker")
    key = spec_key(spec)
    state = {"last": 0.0}

    def _progress(system: CmpSystem) -> None:
        if beat is not None:
            beat(system)
        now = time.monotonic()
        if now - state["last"] < 1.0:
            return
        state["last"] = now
        recorder.record("progress", key=key[:12], cycle=system.cycle)
        recorder.dump(
            "inflight",
            corr=correlation,
            extra={
                "key": key,
                "scheme": spec.scheme,
                "workload": spec.workload,
                "cycle": system.cycle,
            },
        )

    return _progress


def clean_stale_heartbeats(directory: Optional[Path] = None) -> int:
    """Remove heartbeat files left behind by dead workers; returns the
    count removed.

    A SIGKILLed worker (watchdog kill, OOM, chaos drill) never unlinks
    its ``hb_<pid>.json``, and a fresh watchdog pass would otherwise read
    the orphan as a frozen cycle counter and try to "kill" a pid that is
    long gone — or worse, one the OS has since recycled.  Runner startup
    (and service startup) sweeps the directory first: a file whose pid no
    longer exists, or that does not parse, is deleted.  A pid that exists
    but belongs to another user (``EPERM``) is treated as alive — never
    delete evidence about a process we cannot inspect.
    """
    if directory is None:
        env = os.environ.get("REPRO_HEARTBEAT_DIR", "").strip()
        if not env:
            return 0
        directory = Path(env)
    removed = 0
    try:
        beats = list(directory.glob("hb_*.json"))
    except OSError:
        return 0
    for path in beats:
        stale = False
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
            pid = int(record["pid"])
        except (OSError, ValueError, KeyError, TypeError):
            stale = True  # unparseable: a torn write from a dying worker
        else:
            if pid == os.getpid():
                continue  # our own live heartbeat
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                stale = True
            except PermissionError:
                continue  # alive under another uid
            except OSError:
                stale = True
        if stale:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
    return removed


def _watchdog_seconds() -> Optional[float]:
    """Stall threshold for the pool watchdog (``REPRO_WATCHDOG_SECONDS``;
    unset, 0 or negative disables)."""
    env = os.environ.get("REPRO_WATCHDOG_SECONDS", "").strip()
    if not env:
        return None
    try:
        value = float(env)
    except ValueError:
        return None
    return value if value > 0 else None


class _Watchdog:
    """Supervises pool workers through their heartbeat files.

    A worker whose cycle counter stops advancing for ``stall_seconds`` is
    wedged (deadlocked, livelocked, stuck outside the run loop) — as
    opposed to slow, which keeps the counter moving — and is SIGKILLed.
    The kill surfaces as ``BrokenProcessPool`` in the parent, whose
    serial fallback (plus any checkpoint) recovers the lost work.
    """

    def __init__(self, directory: Path, stall_seconds: float):
        self.directory = directory
        self.stall = stall_seconds
        self.killed: List[int] = []
        self._seen: Dict[int, Tuple[int, float]] = {}
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._watch, name="repro-watchdog", daemon=True
        )

    def start(self) -> "_Watchdog":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)

    def _watch(self) -> None:
        poll = min(1.0, self.stall / 2)
        while not self._stop.wait(poll):
            self._scan()

    def _scan(self) -> None:
        now = time.monotonic()
        try:
            beats = list(self.directory.glob("hb_*.json"))
        except OSError:
            return
        for path in beats:
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
                pid = int(record["pid"])
                cycle = int(record["cycle"])
            except (OSError, ValueError, KeyError, TypeError):
                continue
            last = self._seen.get(pid)
            if last is None or last[0] != cycle:
                self._seen[pid] = (cycle, now)
                continue
            if now - last[1] < self.stall:
                continue
            # Cycle counter frozen past the stall budget: wedged worker.
            self._seen.pop(pid, None)
            try:
                path.unlink()
            except OSError:
                pass
            if pid == os.getpid():
                continue  # a stale file must never self-terminate
            _LOG.warning(
                "watchdog: worker %d stalled at cycle %d for %.1fs; killing",
                pid,
                cycle,
                now - last[1],
            )
            try:
                os.kill(pid, getattr(signal, "SIGKILL", signal.SIGTERM))
                self.killed.append(pid)
            except OSError:
                continue
            # The victim's last inflight flight dump survives the kill;
            # record the supervisor's side of the story next to it (the
            # worker's corr rides in the heartbeat record).
            from repro.telemetry import flight as _flight

            if _flight.enabled():
                recorder = _flight.recorder(role="service")
                recorder.record(
                    "watchdog_kill",
                    pid=pid,
                    cycle=cycle,
                    stalled_seconds=round(now - last[1], 3),
                    corr=record.get("corr"),
                )
                recorder.dump(
                    "watchdog_kill",
                    corr=record.get("corr"),
                    extra={
                        "victim_pid": pid,
                        "cycle": cycle,
                        "key": record.get("key"),
                        "stalled_seconds": round(now - last[1], 3),
                    },
                )


def _start_watchdog() -> Tuple[Optional[_Watchdog], bool]:
    """Arm worker supervision when configured: point workers at a
    heartbeat directory (unless the caller pinned one) and start the
    stall watchdog.  Returns ``(watchdog, env_was_set_here)``."""
    stall = _watchdog_seconds()
    if stall is None:
        return None, False
    set_here = False
    directory = os.environ.get("REPRO_HEARTBEAT_DIR", "").strip()
    if not directory:
        directory = str(cache_dir() / "heartbeats")
        os.environ["REPRO_HEARTBEAT_DIR"] = directory
        set_here = True
    try:
        Path(directory).mkdir(parents=True, exist_ok=True)
    except OSError:
        pass
    # SIGKILLed workers from an earlier campaign leave orphan heartbeat
    # files behind; sweep them before arming so the fresh watchdog never
    # reasons about (or signals) a recycled pid.
    clean_stale_heartbeats(Path(directory))
    return _Watchdog(Path(directory), stall).start(), set_here


def _stop_watchdog(watchdog: Optional[_Watchdog], set_here: bool) -> None:
    if watchdog is not None:
        watchdog.stop()
    if set_here:
        os.environ.pop("REPRO_HEARTBEAT_DIR", None)


def _store(spec: RunSpec, result: SimulationResult, verbose: bool) -> None:
    _CACHE[(spec, _kernel_mode())] = result
    _disk_store(spec, result)
    if verbose:
        ensure_level(logging.INFO)
    _LOG.info(
        "[%s] finished %s/%s on %s (%s %dx%d): %d cycles, "
        "avg miss latency %.1f",
        spec_key(spec)[:12],
        spec.scheme,
        spec.algorithm,
        spec.workload,
        spec.topology,
        spec.width,
        spec.height,
        result.cycles,
        result.avg_miss_latency,
    )


def _run_with_alarm(
    spec: RunSpec, timeout: Optional[float], verbose: bool
) -> SimulationResult:
    """``run_spec`` under the same wall-clock bound the pool enforces.

    Serial in-process execution has no future to time out, so the bound
    is enforced with ``SIGALRM`` (POSIX, main thread only) raising
    :class:`TimeoutError` in-line; elsewhere the cooperative deadline
    inside :func:`_simulate` still bounds the run loop itself."""
    if (
        timeout is None
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        return run_spec(spec, verbose=verbose)

    def _expired(signum, frame):
        raise TimeoutError(
            f"spec exceeded {timeout}s: {spec.scheme}:{spec.workload}"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return run_spec(spec, verbose=verbose)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _journal_outcome(
    spec: RunSpec,
    journal: Optional[Dict[RunSpec, str]],
    out: Dict[RunSpec, SimulationResult],
    failures: Dict[RunSpec, BaseException],
) -> None:
    """Record a resolved spec's terminal journal state (when journaling)."""
    key = journal.get(spec) if journal else None
    if key is None:
        return
    if spec in out:
        _journal_append(key, "done")
    elif spec in failures:
        _journal_append(key, "failed", error=repr(failures[spec]))


def _run_serial(
    misses: Sequence[RunSpec],
    out: Dict[RunSpec, SimulationResult],
    failures: Dict[RunSpec, BaseException],
    verbose: bool,
    prior: Optional[Dict[RunSpec, BaseException]] = None,
    journal: Optional[Dict[RunSpec, str]] = None,
) -> None:
    """In-process execution with per-spec isolation: one bad spec records
    a failure instead of aborting the survivors behind it.  Matches the
    pool path's contract — a per-spec timeout (``REPRO_SPEC_TIMEOUT``,
    via ``SIGALRM`` plus the run loop's cooperative deadline) and one
    retry after a jittered pause, the first symptom kept in ``prior``.
    Journal states are appended per spec as it starts and resolves, so a
    campaign killed mid-batch leaves an accurate ledger behind."""
    if prior is None:
        prior = {}
    timeout = _spec_timeout()
    for spec in misses:
        if journal and spec in journal:
            _journal_append(journal[spec], "running")
        for attempt in (0, 1):
            try:
                out[spec] = _run_with_alarm(spec, timeout, verbose)
            except Exception as exc:
                if attempt == 0:
                    prior[spec] = exc
                    _pause_before_retry(spec)
                    continue
                failures[spec] = exc
            break
        _journal_outcome(spec, journal, out, failures)


def _run_parallel(
    misses: Sequence[RunSpec],
    jobs: int,
    out: Dict[RunSpec, SimulationResult],
    failures: Dict[RunSpec, BaseException],
    verbose: bool,
    prior: Optional[Dict[RunSpec, BaseException]] = None,
    journal: Optional[Dict[RunSpec, str]] = None,
) -> None:
    """Fan misses out over a process pool, one future per spec.

    Each spec gets a per-spec timeout and one retry (a fresh future,
    after a jittered :func:`_retry_backoff` pause) on timeout or
    exception; the first attempt's exception is recorded in ``prior`` so
    :class:`RunnerError` can report both symptoms.  A dead worker
    (``BrokenProcessPool``) abandons the pool and reruns everything
    unresolved serially in-process — completed results are kept either
    way.  A future still running after its retry window is abandoned
    (``shutdown(wait=False)``) rather than joined, so one hung worker
    cannot hang the batch.
    """
    timeout = _spec_timeout()
    # The heartbeat directory must be in the environment before the pool
    # exists so workers inherit it.
    watchdog, hb_set_here = _start_watchdog()
    pool = ProcessPoolExecutor(max_workers=jobs)
    futures = {spec: pool.submit(_simulate, spec) for spec in misses}
    if journal:
        for spec in misses:  # all genuinely dispatched at once
            _journal_append(journal[spec], "running")
    abandoned = False
    if prior is None:
        prior = {}
    try:
        for spec in misses:
            for attempt in (0, 1):
                try:
                    result = futures[spec].result(timeout=timeout)
                except BrokenProcessPool:
                    raise  # handled below: serial fallback
                except _FutureTimeout:
                    futures[spec].cancel()  # no-op if already running
                    abandoned = True  # a worker may still be wedged
                    if attempt == 0:
                        prior[spec] = TimeoutError(
                            f"spec exceeded {timeout}s: "
                            f"{spec.scheme}:{spec.workload}"
                        )
                        _pause_before_retry(spec)
                        futures[spec] = pool.submit(_simulate, spec)
                        continue
                    failures[spec] = TimeoutError(
                        f"spec exceeded {timeout}s twice: "
                        f"{spec.scheme}:{spec.workload}"
                    )
                except Exception as exc:
                    if attempt == 0:
                        prior[spec] = exc
                        _pause_before_retry(spec)
                        futures[spec] = pool.submit(_simulate, spec)
                        continue
                    failures[spec] = exc
                else:
                    _store(spec, result, verbose)
                    out[spec] = result
                break
            _journal_outcome(spec, journal, out, failures)
    except BrokenProcessPool:
        # The pool is unusable (a worker died mid-task, e.g. OOM-kill or
        # a hard crash).  Keep what finished; rerun the rest in-process.
        abandoned = True
        remaining = [
            spec for spec in misses if spec not in out and spec not in failures
        ]
        _run_serial(remaining, out, failures, verbose, prior, journal)
    finally:
        pool.shutdown(wait=not abandoned, cancel_futures=True)
        _stop_watchdog(watchdog, hb_set_here)


def _profile_destination(profile_out: Optional[str]) -> Optional[str]:
    """Where the aggregated ``profile.json`` goes: the explicit argument,
    else ``REPRO_PROFILE_OUT``, else nowhere."""
    if profile_out is not None:
        return profile_out
    env = os.environ.get("REPRO_PROFILE_OUT", "").strip()
    return env or None


def _emit_profile(
    results: Dict[RunSpec, SimulationResult],
    profile_out: Optional[str],
    verbose: bool,
) -> Optional[RunProfile]:
    """Aggregate per-run profiles and write ``profile.json`` if asked.

    Only runs executed with ``profile_run=True`` carry a profile; a batch
    with none is a silent no-op.  Cached results keep the profile of the
    run that populated the cache (wall-clock is host-dependent anyway).
    """
    merged = merge_profiles(
        [result.profile for result in results.values()]
    )
    if merged is None:
        return None
    if verbose:
        ensure_level(logging.INFO)
    _LOG.info("%s", render_profile(merged))
    path = _profile_destination(profile_out)
    if path:
        write_profile(path, merged)
        _LOG.info("profile written to %s", path)
    return merged


def run_specs(
    specs: Sequence[RunSpec],
    jobs: Optional[int] = None,
    verbose: bool = False,
    profile_out: Optional[str] = None,
    resume: Optional[bool] = None,
) -> Dict[RunSpec, SimulationResult]:
    """Resolve a batch of specs, fanning cache misses out over processes.

    Duplicate specs are deduplicated; cached results (memo or disk) are
    never resubmitted, so figures sharing runs stay shared across both
    processes and invocations.  With one miss (or one worker) the batch
    runs serially in-process — no pool overhead.  Determinism makes the
    parallel path bit-identical to the serial one.

    Failure containment: a spec that fails (after one retry) never takes
    the batch down with it.  Survivors land in the memo/disk caches and a
    :class:`RunnerError` naming exactly the failed specs is raised at the
    end, with the completed results attached.

    Every batch journals its specs' states (pending/running/done/failed)
    to ``campaign.journal.jsonl``.  With ``resume=True`` (default: the
    ``REPRO_RESUME=1`` environment switch) the journal from a crashed
    campaign is replayed first: completed specs are already served by the
    caches, partially-run specs restore from their latest checkpoint
    inside :func:`_simulate`, specs interrupted mid-run get a capped
    seeded backoff before their next attempt, and specs crash-looped
    ``REPRO_QUARANTINE_AFTER`` consecutive times are quarantined into the
    failure set instead of being retried forever.
    """
    ordered: List[RunSpec] = []
    seen = set()
    for spec in specs:
        if spec not in seen:
            seen.add(spec)
            ordered.append(spec)
    out: Dict[RunSpec, SimulationResult] = {}
    misses: List[RunSpec] = []
    for spec in ordered:
        cached = _CACHE.get((spec, _kernel_mode()))
        if cached is None:
            cached = _disk_load(spec)
            if cached is not None:
                _CACHE[(spec, _kernel_mode())] = cached
        if cached is not None:
            out[spec] = cached
        else:
            misses.append(spec)
    if not misses:
        _emit_profile(out, profile_out, verbose)
        return out
    failures: Dict[RunSpec, BaseException] = {}
    prior: Dict[RunSpec, BaseException] = {}
    if resume is None:
        resume = os.environ.get("REPRO_RESUME", "") == "1"
    keys = {spec: spec_key(spec) for spec in misses}
    for spec in misses:
        _journal_append(keys[spec], "pending")
    if resume:
        misses = _replay_journal(misses, keys, failures)
    resume_set_here = False
    if resume and os.environ.get("REPRO_RESUME", "") != "1":
        # Checkpoint restoration inside the workers keys off the
        # environment; propagate an explicit resume=True to them.
        os.environ["REPRO_RESUME"] = "1"
        resume_set_here = True
    try:
        jobs = default_jobs() if jobs is None else max(1, jobs)
        jobs = min(jobs, max(1, len(misses)))
        if jobs == 1:
            _run_serial(misses, out, failures, verbose, prior, keys)
        elif misses:
            # Workers simulate in their own processes; credit the
            # parent's counter here so cold/cache-hit detection works
            # either way.
            global _SIMULATED
            _SIMULATED += len(misses)
            _run_parallel(misses, jobs, out, failures, verbose, prior, keys)
    finally:
        if resume_set_here:
            os.environ.pop("REPRO_RESUME", None)
    # Aggregate profiles before any failure raise, so survivors of a
    # partially-failed batch still land in profile.json.
    _emit_profile(out, profile_out, verbose)
    if failures:
        raise RunnerError(failures, out, prior)
    return out


def _replay_journal(
    misses: Sequence[RunSpec],
    keys: Dict[RunSpec, str],
    failures: Dict[RunSpec, BaseException],
) -> List[RunSpec]:
    """Apply a crashed campaign's journal to this batch's cache misses:
    quarantine crash-looped specs, pause (capped, seeded backoff) before
    re-attempting interrupted ones, and keep the rest."""
    journal = _journal_read()
    limit = _quarantine_after()
    retained: List[RunSpec] = []
    backoff = 0.0
    for spec in misses:
        entry = journal.get(keys[spec])
        attempts = entry["attempts"] if entry is not None else 0
        if attempts >= limit:
            _journal_append(keys[spec], "quarantined", attempts=attempts)
            failures[spec] = RuntimeError(
                f"quarantined after {attempts} interrupted attempts: "
                f"{spec.scheme}:{spec.workload}"
            )
            continue
        if attempts > 0:
            backoff = max(
                backoff,
                min(_retry_backoff(spec) * (2 ** (attempts - 1)), 5.0),
            )
        retained.append(spec)
    if backoff > 0:
        _LOG.info(
            "resume: pausing %.2fs before re-attempting interrupted specs",
            backoff,
        )
        time.sleep(backoff)
    return retained


def run_matrix(
    schemes: Iterable[str],
    workloads: Iterable[str],
    verbose: bool = False,
    jobs: Optional[int] = None,
    **spec_kwargs,
) -> Dict[str, Dict[str, SimulationResult]]:
    """Run scheme x workload (in parallel); returns
    ``results[scheme][workload]``."""
    schemes = list(schemes)
    workloads = list(workloads)
    grid = {
        (scheme, workload): RunSpec(
            scheme=scheme, workload=workload, **spec_kwargs
        )
        for scheme in schemes
        for workload in workloads
    }
    resolved = run_specs(list(grid.values()), jobs=jobs, verbose=verbose)
    return {
        scheme: {
            workload: resolved[grid[(scheme, workload)]]
            for workload in workloads
        }
        for scheme in schemes
    }
