"""Shared simulation runner: parallel fan-out + two-level result cache.

A :class:`RunSpec` pins every degree of freedom of one simulation.  The
simulator is deterministic (seeded RNGs, no wall-clock — see
:mod:`repro.sim`), so a spec fully determines its
:class:`~repro.cmp.system.SimulationResult`; that makes results cacheable
and simulations embarrassingly parallel:

- **Memo cache** (per process): experiments that share runs — Fig. 5's
  latency view and Fig. 7's energy view of the identical simulations —
  only pay once per process, as before.
- **Disk cache** (cross-process, content-addressed): results are pickled
  under ``~/.cache/repro-disco/`` (override with ``REPRO_CACHE_DIR``)
  keyed by a stable hash of the spec plus a code fingerprint
  (:data:`CODE_VERSION` + a digest of the ``repro`` sources), so
  re-running a figure is free and any code change invalidates stale
  results automatically.  Disable with ``REPRO_DISK_CACHE=0``; clear with
  :func:`clear_disk_cache` (or just delete the directory).
- **Parallel fan-out**: :func:`run_specs` / :func:`run_matrix` dispatch
  uncached specs over a ``ProcessPoolExecutor`` (workers default to the
  CPU count; pin with ``REPRO_JOBS``, ``REPRO_JOBS=1`` forces serial).
  Determinism guarantees the parallel results are bit-identical to serial
  runs — the acceptance tests assert it field for field.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, replace as _dc_replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.cmp.config import SystemConfig
from repro.cmp.schemes import make_scheme
from repro.cmp.system import CmpSystem, SimulationResult
from repro.workloads.profiles import get_profile
from repro.workloads.trace import generate_traces

#: Benchmarks used by the figure experiments (a PARSEC subset keeps the
#: pure-Python cycle-level runs tractable; pass ``workloads=...`` to the
#: experiment functions for the full suite).
DEFAULT_WORKLOADS = (
    "blackscholes",
    "bodytrack",
    "canneal",
    "dedup",
    "fluidanimate",
    "freqmine",
    "streamcluster",
    "x264",
)

#: Accesses per core for figure-quality runs and for quick (test) runs.
FIGURE_ACCESSES = 1500
QUICK_ACCESSES = 300

#: Default warmup fraction (cold-start exclusion).
WARMUP_FRACTION = 0.25

#: Sample size used to train statistical algorithms (SC², FVC) per run.
TRAIN_LINES = 512

#: Bumped when simulation semantics change in a way the source fingerprint
#: cannot see (e.g. a data-file format change).  Part of every disk-cache
#: key, so bumping it invalidates all cached results at once.
CODE_VERSION = "1"


@dataclass(frozen=True)
class RunSpec:
    """Everything that identifies one simulation."""

    scheme: str
    workload: str
    algorithm: str = "delta"
    width: int = 4
    height: int = 4
    accesses_per_core: int = FIGURE_ACCESSES
    seed: int = 7
    warmup_fraction: float = WARMUP_FRACTION
    l2_sets_per_bank: int = 32
    l2_hit_latency: int = 4
    #: Working-set multiplier (for weak-scaling studies; Fig. 8 uses the
    #: paper's strong scaling — fixed workload and total cache).
    ws_scale: float = 1.0

    def config(self) -> SystemConfig:
        base = SystemConfig.scaled_mesh(
            self.width, self.height, l2_sets_per_bank=self.l2_sets_per_bank
        )
        if self.l2_hit_latency != base.l2_hit_latency:
            base = _dc_replace(base, l2_hit_latency=self.l2_hit_latency)
        return base

    def profile(self):
        profile = get_profile(self.workload)
        if self.ws_scale != 1.0:
            profile = _dc_replace(
                profile,
                working_set_lines=max(
                    64, int(profile.working_set_lines * self.ws_scale)
                ),
            )
        return profile


# --------------------------------------------------------------------------
# cache keys
# --------------------------------------------------------------------------

_SOURCE_FINGERPRINT: Optional[str] = None


def _source_fingerprint() -> str:
    """Digest of every ``repro`` source file (cached per process).

    Any edit to the simulator invalidates disk-cached results without
    anyone having to remember to bump :data:`CODE_VERSION`; stable across
    processes because it hashes file bytes, not interpreter state.
    """
    global _SOURCE_FINGERPRINT
    if _SOURCE_FINGERPRINT is None:
        digest = hashlib.sha256()
        root = Path(__file__).resolve().parent.parent  # src/repro
        try:
            for path in sorted(root.rglob("*.py")):
                digest.update(path.relative_to(root).as_posix().encode())
                digest.update(path.read_bytes())
        except OSError:  # pragma: no cover - zip/frozen installs
            pass
        _SOURCE_FINGERPRINT = digest.hexdigest()
    return _SOURCE_FINGERPRINT


def spec_key(spec: RunSpec) -> str:
    """Stable content address of (spec, code version) — identical across
    processes and interpreter sessions, independent of hash randomization."""
    token = json.dumps(
        {
            "spec": asdict(spec),
            "code_version": CODE_VERSION,
            "source": _source_fingerprint(),
        },
        sort_keys=True,
    )
    return hashlib.sha256(token.encode()).hexdigest()


# --------------------------------------------------------------------------
# the two cache levels
# --------------------------------------------------------------------------

_CACHE: Dict[RunSpec, SimulationResult] = {}


def cache_dir() -> Path:
    """Disk-cache directory (``REPRO_CACHE_DIR`` overrides the default)."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override).expanduser()
    return Path("~/.cache/repro-disco").expanduser()


def disk_cache_enabled() -> bool:
    return os.environ.get("REPRO_DISK_CACHE", "1") != "0"


def clear_cache() -> None:
    """Drop all memoized in-process results (tests use this for isolation).

    The disk cache is left alone; see :func:`clear_disk_cache`.
    """
    _CACHE.clear()


def clear_disk_cache() -> int:
    """Delete every cached result file; returns how many were removed."""
    removed = 0
    directory = cache_dir()
    if directory.is_dir():
        for path in directory.glob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - concurrent cleanup
                pass
    return removed


def _disk_path(spec: RunSpec) -> Path:
    return cache_dir() / f"{spec_key(spec)}.pkl"


def _disk_load(spec: RunSpec) -> Optional[SimulationResult]:
    if not disk_cache_enabled():
        return None
    path = _disk_path(spec)
    try:
        with open(path, "rb") as handle:
            return pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
        return None  # missing or stale/corrupt entry -> recompute


def _disk_store(spec: RunSpec, result: SimulationResult) -> None:
    if not disk_cache_enabled():
        return
    directory = cache_dir()
    try:
        directory.mkdir(parents=True, exist_ok=True)
        # Atomic publish: concurrent writers of the same (deterministic)
        # result race harmlessly — last rename wins with identical bytes.
        fd, tmp_name = tempfile.mkstemp(dir=directory, suffix=".tmp")
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp_name, _disk_path(spec))
    except OSError:  # pragma: no cover - read-only cache dir
        pass


# --------------------------------------------------------------------------
# running
# --------------------------------------------------------------------------


def _simulate(spec: RunSpec, verbose: bool = False) -> SimulationResult:
    """Build and run one simulation (no caches — the pool workers' entry
    point, importable at module top level so specs pickle across
    processes)."""
    config = spec.config()
    scheme = make_scheme(spec.scheme, algorithm=spec.algorithm)
    traces = generate_traces(
        spec.profile(),
        config.n_cores,
        spec.accesses_per_core,
        seed=spec.seed,
        line_size=config.line_size,
    )
    system = CmpSystem(
        config, scheme, traces, warmup_fraction=spec.warmup_fraction
    )
    _train_if_needed(system, spec)
    if verbose:
        print(f"running {spec.scheme}/{spec.algorithm} on {spec.workload} "
              f"({spec.width}x{spec.height})...")
    return system.run()


def _train_if_needed(system: CmpSystem, spec: RunSpec) -> None:
    """Train statistical algorithms on a workload sample (SC²'s offline
    sampling phase; the same training is applied in every scheme)."""
    train = getattr(system.algorithm, "train", None)
    if train is None:
        return
    if spec.algorithm not in ("sc2", "fvc"):
        return
    sample = system.pool.sample(TRAIN_LINES, seed=spec.seed + 1)
    train(sample)


def run_spec(spec: RunSpec, verbose: bool = False) -> SimulationResult:
    """Run (or recall) one simulation: memo -> disk -> simulate."""
    cached = _CACHE.get(spec)
    if cached is not None:
        return cached
    result = _disk_load(spec)
    if result is None:
        result = _simulate(spec, verbose=verbose)
        _disk_store(spec, result)
    _CACHE[spec] = result
    return result


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` if set (min 1), else the CPU count."""
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


def run_specs(
    specs: Sequence[RunSpec],
    jobs: Optional[int] = None,
    verbose: bool = False,
) -> Dict[RunSpec, SimulationResult]:
    """Resolve a batch of specs, fanning cache misses out over processes.

    Duplicate specs are deduplicated; cached results (memo or disk) are
    never resubmitted, so figures sharing runs stay shared across both
    processes and invocations.  With one miss (or one worker) the batch
    runs serially in-process — no pool overhead.  Determinism makes the
    parallel path bit-identical to the serial one.
    """
    ordered: List[RunSpec] = []
    seen = set()
    for spec in specs:
        if spec not in seen:
            seen.add(spec)
            ordered.append(spec)
    out: Dict[RunSpec, SimulationResult] = {}
    misses: List[RunSpec] = []
    for spec in ordered:
        cached = _CACHE.get(spec)
        if cached is None:
            cached = _disk_load(spec)
            if cached is not None:
                _CACHE[spec] = cached
        if cached is not None:
            out[spec] = cached
        else:
            misses.append(spec)
    if not misses:
        return out
    jobs = default_jobs() if jobs is None else max(1, jobs)
    jobs = min(jobs, len(misses))
    if jobs == 1:
        for spec in misses:
            out[spec] = run_spec(spec, verbose=verbose)
        return out
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        for spec, result in zip(misses, pool.map(_simulate, misses)):
            _CACHE[spec] = result
            _disk_store(spec, result)
            out[spec] = result
            if verbose:
                print(f"finished {spec.scheme}/{spec.algorithm} on "
                      f"{spec.workload} ({spec.width}x{spec.height})")
    return out


def run_matrix(
    schemes: Iterable[str],
    workloads: Iterable[str],
    verbose: bool = False,
    jobs: Optional[int] = None,
    **spec_kwargs,
) -> Dict[str, Dict[str, SimulationResult]]:
    """Run scheme x workload (in parallel); returns
    ``results[scheme][workload]``."""
    schemes = list(schemes)
    workloads = list(workloads)
    grid = {
        (scheme, workload): RunSpec(
            scheme=scheme, workload=workload, **spec_kwargs
        )
        for scheme in schemes
        for workload in workloads
    }
    resolved = run_specs(list(grid.values()), jobs=jobs, verbose=verbose)
    return {
        scheme: {
            workload: resolved[grid[(scheme, workload)]]
            for workload in workloads
        }
        for scheme in schemes
    }
