"""Shared simulation runner: parallel fan-out + two-level result cache.

A :class:`RunSpec` pins every degree of freedom of one simulation.  The
simulator is deterministic (seeded RNGs, no wall-clock — see
:mod:`repro.sim`), so a spec fully determines its
:class:`~repro.cmp.system.SimulationResult`; that makes results cacheable
and simulations embarrassingly parallel:

- **Memo cache** (per process): experiments that share runs — Fig. 5's
  latency view and Fig. 7's energy view of the identical simulations —
  only pay once per process, as before.
- **Disk cache** (cross-process, content-addressed): results are pickled
  under ``~/.cache/repro-disco/`` (override with ``REPRO_CACHE_DIR``)
  keyed by a stable hash of the spec plus a code fingerprint
  (:data:`CODE_VERSION` + a digest of the ``repro`` sources), so
  re-running a figure is free and any code change invalidates stale
  results automatically.  Disable with ``REPRO_DISK_CACHE=0``; clear with
  :func:`clear_disk_cache` (or just delete the directory).
- **Parallel fan-out**: :func:`run_specs` / :func:`run_matrix` dispatch
  uncached specs over a ``ProcessPoolExecutor`` (workers default to the
  CPU count; pin with ``REPRO_JOBS``, ``REPRO_JOBS=1`` forces serial).
  Determinism guarantees the parallel results are bit-identical to serial
  runs — the acceptance tests assert it field for field.

The batch path is hardened against worker failure: each spec gets its own
future with a per-spec timeout (``REPRO_SPEC_TIMEOUT`` seconds, default
600; ``0`` disables) and one retry; a worker that dies abruptly
(``BrokenProcessPool``) triggers a serial in-process fallback that keeps
every already-completed result; and a batch with unrecoverable failures
raises :class:`RunnerError` naming exactly the failed specs while the
survivors stay in the memo/disk caches.  Disk-cache entries carry a
magic + SHA-256 envelope; an entry that fails validation is quarantined
(renamed ``*.corrupt``) once and recomputed.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pickle
import random
import tempfile
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, TimeoutError as _FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, replace as _dc_replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cmp.config import SystemConfig
from repro.cmp.schemes import make_scheme
from repro.cmp.system import CmpSystem, SimulationResult
from repro.telemetry.log import ensure_level, get_logger
from repro.telemetry.profiler import (
    RunProfile,
    merge_profiles,
    render_profile,
    write_profile,
)
from repro.workloads.profiles import get_profile
from repro.workloads.trace import generate_traces

#: Structured runner log (stdlib logging under the ``repro`` tree; level
#: from ``REPRO_LOG_LEVEL``, raised to INFO by ``verbose=True`` calls).
_LOG = get_logger("repro.runner")

#: Benchmarks used by the figure experiments (a PARSEC subset keeps the
#: pure-Python cycle-level runs tractable; pass ``workloads=...`` to the
#: experiment functions for the full suite).
DEFAULT_WORKLOADS = (
    "blackscholes",
    "bodytrack",
    "canneal",
    "dedup",
    "fluidanimate",
    "freqmine",
    "streamcluster",
    "x264",
)

#: Accesses per core for figure-quality runs and for quick (test) runs.
FIGURE_ACCESSES = 1500
QUICK_ACCESSES = 300

#: Default warmup fraction (cold-start exclusion).
WARMUP_FRACTION = 0.25

#: Sample size used to train statistical algorithms (SC², FVC) per run.
TRAIN_LINES = 512

#: Bumped when simulation semantics change in a way the source fingerprint
#: cannot see (e.g. a data-file format change).  Part of every disk-cache
#: key, so bumping it invalidates all cached results at once.
CODE_VERSION = "1"

#: Disk-cache envelope: magic (format version) + SHA-256 of the pickle
#: payload.  Bump the magic when the envelope layout changes; entries with
#: any other prefix are quarantined, not parsed.
_CACHE_MAGIC = b"RDC1"
_ENVELOPE_HEADER = len(_CACHE_MAGIC) + hashlib.sha256().digest_size

#: Default per-spec timeout for pool futures (seconds).
_DEFAULT_SPEC_TIMEOUT = 600.0

#: Pid of the process that imported this module.  Fork workers inherit the
#: parent's value, so ``os.getpid() != _MAIN_PID`` identifies pool workers
#: — the destructive test fault modes (``exit``/``hang``) only fire there,
#: never in the orchestrating process or its serial fallback.
_MAIN_PID = os.getpid()


class RunnerError(RuntimeError):
    """One or more specs in a batch failed after retries.

    ``failures`` maps each failed :class:`RunSpec` to its exception;
    ``completed`` holds every survivor — also already published to the
    memo/disk caches, so a rerun only repeats the failures.  ``prior``
    maps specs to the exception their *first* attempt raised, so a
    flaky-then-fatal sequence (say, a timeout followed by a crash) is
    fully visible in the message instead of only the last symptom.
    """

    def __init__(
        self,
        failures: Dict[RunSpec, BaseException],
        completed: Dict[RunSpec, "SimulationResult"],
        prior: Optional[Dict[RunSpec, BaseException]] = None,
    ):
        self.failures = dict(failures)
        self.completed = dict(completed)
        self.prior = dict(prior) if prior else {}

        def describe(spec: RunSpec) -> str:
            name = (
                f"{spec.scheme}/{spec.algorithm}:{spec.workload}"
                f"({spec.topology} {spec.width}x{spec.height}, "
                f"seed {spec.seed})"
            )
            earlier = self.prior.get(spec)
            if earlier is not None:
                name += f" (first attempt: {earlier!r})"
            return name

        names = ", ".join(describe(spec) for spec in failures)
        first = next(iter(failures.values()))
        super().__init__(
            f"{len(failures)} of {len(failures) + len(completed)} specs "
            f"failed [{names}]; first error: {first!r}"
        )


@dataclass(frozen=True)
class RunSpec:
    """Everything that identifies one simulation."""

    scheme: str
    workload: str
    algorithm: str = "delta"
    width: int = 4
    height: int = 4
    accesses_per_core: int = FIGURE_ACCESSES
    seed: int = 7
    warmup_fraction: float = WARMUP_FRACTION
    l2_sets_per_bank: int = 32
    l2_hit_latency: int = 4
    #: Working-set multiplier (for weak-scaling studies; Fig. 8 uses the
    #: paper's strong scaling — fixed workload and total cache).
    ws_scale: float = 1.0
    #: Fabric shape ("mesh", "torus", "ring", "cmesh"); non-mesh fabrics
    #: get the escape VCs their default routing needs.
    topology: str = "mesh"
    # -- telemetry knobs (repro.telemetry; all off by default — they are
    # part of the spec key, so a traced run never aliases an untraced
    # cached result) -----------------------------------------------------
    #: Time-series sampler interval in cycles (0 = off).
    stats_interval: int = 0
    #: Per-packet lifecycle tracing (events land in ``result.telemetry``).
    trace_packets: bool = False
    #: Trace every Nth injected packet (1 = every packet).
    trace_sample_interval: int = 1
    #: Per-component wall-clock profiling of the simulator; the profile
    #: rides in ``result.profile`` (named ``profile_run`` because
    #: :meth:`profile` already names the workload profile accessor).
    profile_run: bool = False

    def noc_config(self) -> "NocConfig":
        from repro.noc.config import NocConfig
        from repro.noc.routing import resolve_routing

        vcs = 2 if resolve_routing(self.topology).needs_escape_vcs else 1
        return NocConfig(
            width=self.width,
            height=self.height,
            topology=self.topology,
            vcs_per_vnet=vcs,
            stats_interval=self.stats_interval,
            trace_packets=self.trace_packets,
            trace_sample_interval=self.trace_sample_interval,
        )

    def config(self) -> SystemConfig:
        base = SystemConfig.scaled_fabric(
            self.noc_config(), l2_sets_per_bank=self.l2_sets_per_bank
        )
        if self.l2_hit_latency != base.l2_hit_latency:
            base = _dc_replace(base, l2_hit_latency=self.l2_hit_latency)
        return base

    def profile(self):
        profile = get_profile(self.workload)
        if self.ws_scale != 1.0:
            profile = _dc_replace(
                profile,
                working_set_lines=max(
                    64, int(profile.working_set_lines * self.ws_scale)
                ),
            )
        return profile


# --------------------------------------------------------------------------
# cache keys
# --------------------------------------------------------------------------

_SOURCE_FINGERPRINT: Optional[str] = None


def _source_fingerprint() -> str:
    """Digest of every ``repro`` source file (cached per process).

    Any edit to the simulator invalidates disk-cached results without
    anyone having to remember to bump :data:`CODE_VERSION`; stable across
    processes because it hashes file bytes, not interpreter state.
    """
    global _SOURCE_FINGERPRINT
    if _SOURCE_FINGERPRINT is None:
        digest = hashlib.sha256()
        root = Path(__file__).resolve().parent.parent  # src/repro
        try:
            for path in sorted(root.rglob("*.py")):
                digest.update(path.relative_to(root).as_posix().encode())
                digest.update(path.read_bytes())
        except OSError:  # pragma: no cover - zip/frozen installs
            pass
        _SOURCE_FINGERPRINT = digest.hexdigest()
    return _SOURCE_FINGERPRINT


def _kernel_mode() -> str:
    """The active scheduler mode (``event`` or ``tick``).

    Part of every cache key — memo and disk — so results produced under
    ``REPRO_KERNEL_MODE=tick`` can never alias event-mode results (their
    payloads are bit-identical by design, but the invariance tests that
    *prove* that must observe two genuinely independent runs)."""
    mode = os.environ.get("REPRO_KERNEL_MODE", "event")
    return "tick" if mode == "tick" else "event"


def spec_key(spec: RunSpec) -> str:
    """Stable content address of (spec, code version, kernel mode) —
    identical across processes and interpreter sessions, independent of
    hash randomization."""
    token = json.dumps(
        {
            "spec": asdict(spec),
            "code_version": CODE_VERSION,
            "source": _source_fingerprint(),
            "kernel_mode": _kernel_mode(),
        },
        sort_keys=True,
    )
    return hashlib.sha256(token.encode()).hexdigest()


# --------------------------------------------------------------------------
# the two cache levels
# --------------------------------------------------------------------------

#: Per-process memo, keyed by (spec, kernel mode) so flipping
#: ``REPRO_KERNEL_MODE`` mid-process cannot serve stale results.
_CACHE: Dict[Tuple[RunSpec, str], SimulationResult] = {}

#: Count of fresh simulations this process has performed (cache misses
#: that reached :func:`_simulate`, plus specs fanned out to pool
#: workers).  Benchmarks snapshot it around a run to tell a cold
#: measurement from a cache hit — see ``benchmarks/common.py``.
_SIMULATED = 0


def simulated_runs() -> int:
    """Fresh (non-cached) simulations performed so far in this process."""
    return _SIMULATED


def cache_dir() -> Path:
    """Disk-cache directory (``REPRO_CACHE_DIR`` overrides the default)."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override).expanduser()
    return Path("~/.cache/repro-disco").expanduser()


def disk_cache_enabled() -> bool:
    return os.environ.get("REPRO_DISK_CACHE", "1") != "0"


def clear_cache() -> None:
    """Drop all memoized in-process results (tests use this for isolation).

    The disk cache is left alone; see :func:`clear_disk_cache`.
    """
    _CACHE.clear()


def clear_disk_cache() -> int:
    """Delete every cached result file (and quarantined ``*.corrupt``
    leftovers); returns how many were removed."""
    removed = 0
    directory = cache_dir()
    if directory.is_dir():
        for pattern in ("*.pkl", "*.pkl.corrupt"):
            for path in directory.glob(pattern):
                try:
                    path.unlink()
                    removed += 1
                except OSError:  # pragma: no cover - concurrent cleanup
                    pass
    return removed


def _disk_path(spec: RunSpec) -> Path:
    return cache_dir() / f"{spec_key(spec)}.pkl"


def _quarantine(path: Path) -> None:
    """Move a bad cache entry aside (``<name>.corrupt``) so it is inspected
    at most once: the rename is what guarantees the *next* lookup is a
    clean miss instead of another validation failure."""
    try:
        os.replace(path, path.with_name(path.name + ".corrupt"))
    except OSError:  # pragma: no cover - concurrent quarantine/cleanup
        pass


def _disk_load(spec: RunSpec) -> Optional[SimulationResult]:
    if not disk_cache_enabled():
        return None
    path = _disk_path(spec)
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except FileNotFoundError:
        return None  # plain miss
    except OSError:
        _quarantine(path)  # unreadable entry (permissions, a directory...)
        return None
    header, payload = blob[:_ENVELOPE_HEADER], blob[_ENVELOPE_HEADER:]
    if (
        len(header) < _ENVELOPE_HEADER
        or not header.startswith(_CACHE_MAGIC)
        or header[len(_CACHE_MAGIC):] != hashlib.sha256(payload).digest()
    ):
        _quarantine(path)  # truncated / wrong version / bit-rotted
        return None
    try:
        return pickle.loads(payload)
    except Exception:
        # The checksum matched, so the pickle itself references something
        # this build cannot reconstruct (e.g. a renamed class the source
        # fingerprint missed).  Same treatment: quarantine and recompute.
        _quarantine(path)
        return None


def _disk_store(spec: RunSpec, result: SimulationResult) -> None:
    if not disk_cache_enabled():
        return
    directory = cache_dir()
    payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
    blob = _CACHE_MAGIC + hashlib.sha256(payload).digest() + payload
    try:
        directory.mkdir(parents=True, exist_ok=True)
        # Atomic publish: concurrent writers of the same (deterministic)
        # result race harmlessly — last rename wins with identical bytes.
        fd, tmp_name = tempfile.mkstemp(dir=directory, suffix=".tmp")
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
        os.replace(tmp_name, _disk_path(spec))
    except OSError:  # pragma: no cover - read-only cache dir
        pass


# --------------------------------------------------------------------------
# running
# --------------------------------------------------------------------------


def _maybe_inject_runner_fault(spec: RunSpec) -> None:
    """Test hook: ``REPRO_RUNNER_FAULT=mode:scheme:workload[:marker]``.

    Sabotages the simulation of one (scheme, workload) so the batch-level
    failure handling can be exercised end to end with real processes:

    - ``crash``       raise RuntimeError on every attempt;
    - ``crash-once``  raise once, then succeed (``marker`` file latches);
    - ``exit``        kill the *worker* process outright (os._exit) — the
      classic ``BrokenProcessPool`` trigger; never fires in the main
      process, so the serial fallback completes;
    - ``hang-once``   sleep past any sane spec timeout once
      (``REPRO_RUNNER_HANG_SECONDS``, default 5), then succeed.
    """
    setting = os.environ.get("REPRO_RUNNER_FAULT", "")
    if not setting:
        return
    parts = setting.split(":")
    if len(parts) < 3 or spec.scheme != parts[1] or spec.workload != parts[2]:
        return
    mode = parts[0]
    marker = Path(parts[3]) if len(parts) > 3 else None
    in_worker = os.getpid() != _MAIN_PID

    def _latch() -> bool:
        """True the first time only (marker file records the firing)."""
        if marker is None or marker.exists():
            return False
        try:
            marker.touch(exist_ok=False)
        except OSError:
            return False
        return True

    if mode == "crash":
        raise RuntimeError(f"injected runner fault for {spec.workload}")
    if mode == "crash-once" and _latch():
        raise RuntimeError(f"injected one-shot fault for {spec.workload}")
    if mode == "exit" and in_worker:
        os._exit(13)
    if mode == "hang-once" and in_worker and _latch():
        time.sleep(float(os.environ.get("REPRO_RUNNER_HANG_SECONDS", "5")))


def _simulate(spec: RunSpec, verbose: bool = False) -> SimulationResult:
    """Build and run one simulation (no caches — the pool workers' entry
    point, importable at module top level so specs pickle across
    processes)."""
    _maybe_inject_runner_fault(spec)
    config = spec.config()
    scheme = make_scheme(spec.scheme, algorithm=spec.algorithm)
    traces = generate_traces(
        spec.profile(),
        config.n_cores,
        spec.accesses_per_core,
        seed=spec.seed,
        line_size=config.line_size,
    )
    system = CmpSystem(
        config, scheme, traces, warmup_fraction=spec.warmup_fraction
    )
    _train_if_needed(system, spec)
    if spec.profile_run:
        system.kernel.enable_timing(per_component=True)
    if verbose:
        ensure_level(logging.INFO)
    _LOG.info(
        "[%s] running %s/%s on %s (%s %dx%d, seed %d)",
        spec_key(spec)[:12],
        spec.scheme,
        spec.algorithm,
        spec.workload,
        spec.topology,
        spec.width,
        spec.height,
        spec.seed,
    )
    start = time.perf_counter()
    result = system.run()
    if result.profile is not None:
        # Stamp the end-to-end wall clock (simulate + collect) so the
        # campaign aggregate can report cycles/second throughput.
        result.profile.wall_seconds = time.perf_counter() - start
    return result


def _train_if_needed(system: CmpSystem, spec: RunSpec) -> None:
    """Train statistical algorithms on a workload sample (SC²'s offline
    sampling phase; the same training is applied in every scheme)."""
    train = getattr(system.algorithm, "train", None)
    if train is None:
        return
    if spec.algorithm not in ("sc2", "fvc"):
        return
    sample = system.pool.sample(TRAIN_LINES, seed=spec.seed + 1)
    train(sample)


def run_spec(spec: RunSpec, verbose: bool = False) -> SimulationResult:
    """Run (or recall) one simulation: memo -> disk -> simulate."""
    cached = _CACHE.get((spec, _kernel_mode()))
    if cached is not None:
        return cached
    result = _disk_load(spec)
    if result is None:
        global _SIMULATED
        _SIMULATED += 1
        result = _simulate(spec, verbose=verbose)
        _disk_store(spec, result)
    _CACHE[(spec, _kernel_mode())] = result
    return result


_JOBS_WARNED = False


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` if set (min 1), else the CPU count.

    An unparseable ``REPRO_JOBS`` falls back to the CPU count with a
    one-time :class:`RuntimeWarning` naming the bad value — a typo'd pin
    should not silently fan out across every core.
    """
    global _JOBS_WARNED
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            if not _JOBS_WARNED:
                _JOBS_WARNED = True
                warnings.warn(
                    f"ignoring invalid REPRO_JOBS={env!r} "
                    f"(not an integer); using the CPU count",
                    RuntimeWarning,
                    stacklevel=2,
                )
    return os.cpu_count() or 1


def _retry_backoff() -> float:
    """Jittered pause (seconds) before resubmitting a failed spec.

    A retry fired immediately after a failure tends to land in the same
    transient condition that killed the first attempt (a loaded machine,
    a descriptor-exhaustion spike); a short randomized pause decorrelates
    the attempts.  Base seconds come from ``REPRO_RETRY_BACKOFF``
    (default 0.1; ``0`` disables, unparseable values use the default)
    and the actual sleep is uniform in [0.5x, 1.5x] of the base.
    """
    env = os.environ.get("REPRO_RETRY_BACKOFF", "").strip()
    base = 0.1
    if env:
        try:
            base = float(env)
        except ValueError:
            base = 0.1
    if base <= 0:
        return 0.0
    return random.uniform(0.5, 1.5) * base


def _pause_before_retry() -> None:
    delay = _retry_backoff()
    if delay > 0:
        time.sleep(delay)


def _spec_timeout() -> Optional[float]:
    """Per-spec future timeout in seconds (``REPRO_SPEC_TIMEOUT``; ``0``
    or negative disables, unparseable values use the default)."""
    env = os.environ.get("REPRO_SPEC_TIMEOUT", "").strip()
    if env:
        try:
            value = float(env)
        except ValueError:
            return _DEFAULT_SPEC_TIMEOUT
        return value if value > 0 else None
    return _DEFAULT_SPEC_TIMEOUT


def _store(spec: RunSpec, result: SimulationResult, verbose: bool) -> None:
    _CACHE[(spec, _kernel_mode())] = result
    _disk_store(spec, result)
    if verbose:
        ensure_level(logging.INFO)
    _LOG.info(
        "[%s] finished %s/%s on %s (%s %dx%d): %d cycles, "
        "avg miss latency %.1f",
        spec_key(spec)[:12],
        spec.scheme,
        spec.algorithm,
        spec.workload,
        spec.topology,
        spec.width,
        spec.height,
        result.cycles,
        result.avg_miss_latency,
    )


def _run_serial(
    misses: Sequence[RunSpec],
    out: Dict[RunSpec, SimulationResult],
    failures: Dict[RunSpec, BaseException],
    verbose: bool,
) -> None:
    """In-process execution with per-spec isolation: one bad spec records
    a failure instead of aborting the survivors behind it."""
    for spec in misses:
        try:
            out[spec] = run_spec(spec, verbose=verbose)
        except Exception as exc:
            failures[spec] = exc


def _run_parallel(
    misses: Sequence[RunSpec],
    jobs: int,
    out: Dict[RunSpec, SimulationResult],
    failures: Dict[RunSpec, BaseException],
    verbose: bool,
    prior: Optional[Dict[RunSpec, BaseException]] = None,
) -> None:
    """Fan misses out over a process pool, one future per spec.

    Each spec gets a per-spec timeout and one retry (a fresh future,
    after a jittered :func:`_retry_backoff` pause) on timeout or
    exception; the first attempt's exception is recorded in ``prior`` so
    :class:`RunnerError` can report both symptoms.  A dead worker
    (``BrokenProcessPool``) abandons the pool and reruns everything
    unresolved serially in-process — completed results are kept either
    way.  A future still running after its retry window is abandoned
    (``shutdown(wait=False)``) rather than joined, so one hung worker
    cannot hang the batch.
    """
    timeout = _spec_timeout()
    pool = ProcessPoolExecutor(max_workers=jobs)
    futures = {spec: pool.submit(_simulate, spec) for spec in misses}
    abandoned = False
    if prior is None:
        prior = {}
    try:
        for spec in misses:
            for attempt in (0, 1):
                try:
                    result = futures[spec].result(timeout=timeout)
                except BrokenProcessPool:
                    raise  # handled below: serial fallback
                except _FutureTimeout:
                    futures[spec].cancel()  # no-op if already running
                    abandoned = True  # a worker may still be wedged
                    if attempt == 0:
                        prior[spec] = TimeoutError(
                            f"spec exceeded {timeout}s: "
                            f"{spec.scheme}:{spec.workload}"
                        )
                        _pause_before_retry()
                        futures[spec] = pool.submit(_simulate, spec)
                        continue
                    failures[spec] = TimeoutError(
                        f"spec exceeded {timeout}s twice: "
                        f"{spec.scheme}:{spec.workload}"
                    )
                except Exception as exc:
                    if attempt == 0:
                        prior[spec] = exc
                        _pause_before_retry()
                        futures[spec] = pool.submit(_simulate, spec)
                        continue
                    failures[spec] = exc
                else:
                    _store(spec, result, verbose)
                    out[spec] = result
                break
    except BrokenProcessPool:
        # The pool is unusable (a worker died mid-task, e.g. OOM-kill or
        # a hard crash).  Keep what finished; rerun the rest in-process.
        abandoned = True
        remaining = [
            spec for spec in misses if spec not in out and spec not in failures
        ]
        _run_serial(remaining, out, failures, verbose)
    finally:
        pool.shutdown(wait=not abandoned, cancel_futures=True)


def _profile_destination(profile_out: Optional[str]) -> Optional[str]:
    """Where the aggregated ``profile.json`` goes: the explicit argument,
    else ``REPRO_PROFILE_OUT``, else nowhere."""
    if profile_out is not None:
        return profile_out
    env = os.environ.get("REPRO_PROFILE_OUT", "").strip()
    return env or None


def _emit_profile(
    results: Dict[RunSpec, SimulationResult],
    profile_out: Optional[str],
    verbose: bool,
) -> Optional[RunProfile]:
    """Aggregate per-run profiles and write ``profile.json`` if asked.

    Only runs executed with ``profile_run=True`` carry a profile; a batch
    with none is a silent no-op.  Cached results keep the profile of the
    run that populated the cache (wall-clock is host-dependent anyway).
    """
    merged = merge_profiles(
        [result.profile for result in results.values()]
    )
    if merged is None:
        return None
    if verbose:
        ensure_level(logging.INFO)
    _LOG.info("%s", render_profile(merged))
    path = _profile_destination(profile_out)
    if path:
        write_profile(path, merged)
        _LOG.info("profile written to %s", path)
    return merged


def run_specs(
    specs: Sequence[RunSpec],
    jobs: Optional[int] = None,
    verbose: bool = False,
    profile_out: Optional[str] = None,
) -> Dict[RunSpec, SimulationResult]:
    """Resolve a batch of specs, fanning cache misses out over processes.

    Duplicate specs are deduplicated; cached results (memo or disk) are
    never resubmitted, so figures sharing runs stay shared across both
    processes and invocations.  With one miss (or one worker) the batch
    runs serially in-process — no pool overhead.  Determinism makes the
    parallel path bit-identical to the serial one.

    Failure containment: a spec that fails (after one retry) never takes
    the batch down with it.  Survivors land in the memo/disk caches and a
    :class:`RunnerError` naming exactly the failed specs is raised at the
    end, with the completed results attached.
    """
    ordered: List[RunSpec] = []
    seen = set()
    for spec in specs:
        if spec not in seen:
            seen.add(spec)
            ordered.append(spec)
    out: Dict[RunSpec, SimulationResult] = {}
    misses: List[RunSpec] = []
    for spec in ordered:
        cached = _CACHE.get((spec, _kernel_mode()))
        if cached is None:
            cached = _disk_load(spec)
            if cached is not None:
                _CACHE[(spec, _kernel_mode())] = cached
        if cached is not None:
            out[spec] = cached
        else:
            misses.append(spec)
    if not misses:
        _emit_profile(out, profile_out, verbose)
        return out
    failures: Dict[RunSpec, BaseException] = {}
    prior: Dict[RunSpec, BaseException] = {}
    jobs = default_jobs() if jobs is None else max(1, jobs)
    jobs = min(jobs, len(misses))
    if jobs == 1:
        _run_serial(misses, out, failures, verbose)
    else:
        # Workers simulate in their own processes; credit the parent's
        # counter here so cold/cache-hit detection works either way.
        global _SIMULATED
        _SIMULATED += len(misses)
        _run_parallel(misses, jobs, out, failures, verbose, prior)
    # Aggregate profiles before any failure raise, so survivors of a
    # partially-failed batch still land in profile.json.
    _emit_profile(out, profile_out, verbose)
    if failures:
        raise RunnerError(failures, out, prior)
    return out


def run_matrix(
    schemes: Iterable[str],
    workloads: Iterable[str],
    verbose: bool = False,
    jobs: Optional[int] = None,
    **spec_kwargs,
) -> Dict[str, Dict[str, SimulationResult]]:
    """Run scheme x workload (in parallel); returns
    ``results[scheme][workload]``."""
    schemes = list(schemes)
    workloads = list(workloads)
    grid = {
        (scheme, workload): RunSpec(
            scheme=scheme, workload=workload, **spec_kwargs
        )
        for scheme in schemes
        for workload in workloads
    }
    resolved = run_specs(list(grid.values()), jobs=jobs, verbose=verbose)
    return {
        scheme: {
            workload: resolved[grid[(scheme, workload)]]
            for workload in workloads
        }
        for scheme in schemes
    }
