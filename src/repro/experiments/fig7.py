"""Fig. 7 — memory-subsystem energy, normalized to the no-compression
baseline.

Prices the *same simulations* Fig. 5 ran (the runner memoizes them) with
the Orion/CACTI-style event model: NoC dynamic + leakage, NUCA dynamic +
leakage, compressor dynamic + leakage, integrated over the steady-state
(post-warmup) window.  The paper reports DISCO at ~73.3 % of baseline
energy, beating CNC by ~9.1 % and CC by ~8.3 % on average.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.energy.accounting import EnergyBreakdown, energy_of_result
from repro.energy.params import EnergyParams
from repro.experiments.report import format_table, geomean, normalize
from repro.experiments.runner import (
    DEFAULT_WORKLOADS,
    FIGURE_ACCESSES,
    RunSpec,
    run_spec,
    run_specs,
)

SCHEMES = ("baseline", "cc", "cnc", "disco")
REFERENCE = "baseline"


@dataclass
class Fig7Result:
    algorithm: str
    workloads: List[str]
    normalized: Dict[str, Dict[str, float]]  # workload -> scheme -> energy
    average: Dict[str, float]
    breakdowns: Dict[str, Dict[str, EnergyBreakdown]]

    def disco_vs(self, other: str) -> float:
        return 1.0 - self.average["disco"] / self.average[other]


def fig7(
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    algorithm: str = "delta",
    accesses_per_core: int = FIGURE_ACCESSES,
    params: Optional[EnergyParams] = None,
    verbose: bool = False,
) -> Fig7Result:
    params = params or EnergyParams()
    run_specs(
        [
            RunSpec(
                scheme=scheme,
                workload=workload,
                algorithm=algorithm,
                accesses_per_core=accesses_per_core,
            )
            for workload in workloads
            for scheme in SCHEMES
        ],
        verbose=verbose,
    )  # parallel fan-out; the loops below hit the memo cache
    normalized: Dict[str, Dict[str, float]] = {}
    breakdowns: Dict[str, Dict[str, EnergyBreakdown]] = {}
    for workload in workloads:
        totals: Dict[str, float] = {}
        breakdowns[workload] = {}
        for scheme in SCHEMES:
            spec = RunSpec(
                scheme=scheme,
                workload=workload,
                algorithm=algorithm,
                accesses_per_core=accesses_per_core,
            )
            result = run_spec(spec, verbose=verbose)
            breakdown = energy_of_result(result, params=params)
            breakdowns[workload][scheme] = breakdown
            totals[scheme] = breakdown.total
        normalized[workload] = normalize(totals, REFERENCE)
    average = {
        scheme: geomean(normalized[w][scheme] for w in workloads)
        for scheme in SCHEMES
    }
    return Fig7Result(
        algorithm=algorithm,
        workloads=list(workloads),
        normalized=normalized,
        average=average,
        breakdowns=breakdowns,
    )


def render(result: Optional[Fig7Result] = None, **kwargs) -> str:
    result = result or fig7(**kwargs)
    rows = [
        [w] + [result.normalized[w][s] for s in SCHEMES]
        for w in result.workloads
    ]
    rows.append(["geomean"] + [result.average[s] for s in SCHEMES])
    table = format_table(
        ["workload"] + list(SCHEMES),
        rows,
        title=(
            "Fig. 7: normalized memory-subsystem energy "
            "(no-compression baseline = 1.0)"
        ),
    )
    summary = (
        f"\nDISCO / baseline: {result.average['disco']:.3f} (paper: ~0.733)\n"
        f"DISCO vs CC:  {100 * result.disco_vs('cc'):+.1f}% (paper: ~8.3%)\n"
        f"DISCO vs CNC: {100 * result.disco_vs('cnc'):+.1f}% (paper: ~9.1%)"
    )
    return table + summary


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(render(verbose=True))
