"""Experiment runners that regenerate every table and figure of the paper.

Each module reproduces one artifact of the evaluation section:

- :mod:`repro.experiments.table1` — compression scheme parameters;
- :mod:`repro.experiments.table2` — the baseline system configuration;
- :mod:`repro.experiments.fig5` — performance with delta compression;
- :mod:`repro.experiments.fig6` — performance with FPC and SC²;
- :mod:`repro.experiments.fig7` — energy, normalized to no-compression;
- :mod:`repro.experiments.fig8` — scalability (2x2 / 4x4 / 8x8 meshes);
- :mod:`repro.experiments.overhead` — the §4.3 area overhead analysis.

All runners share :func:`repro.experiments.runner.run_spec`, which memoizes
(config, scheme, workload) simulations so Fig. 5 and Fig. 7 price the same
runs, exactly as the paper derives both from one set of simulations.
"""

from repro.experiments.runner import RunSpec, run_spec, clear_cache
from repro.experiments.report import format_table, normalize

__all__ = [
    "RunSpec",
    "run_spec",
    "clear_cache",
    "format_table",
    "normalize",
]
