"""Experiment runners that regenerate every table and figure of the paper.

Each module reproduces one artifact of the evaluation section:

- :mod:`repro.experiments.table1` — compression scheme parameters;
- :mod:`repro.experiments.table2` — the baseline system configuration;
- :mod:`repro.experiments.fig5` — performance with delta compression;
- :mod:`repro.experiments.fig6` — performance with FPC and SC²;
- :mod:`repro.experiments.fig7` — energy, normalized to no-compression;
- :mod:`repro.experiments.fig8` — scalability (2x2 / 4x4 / 8x8 meshes);
- :mod:`repro.experiments.overhead` — the §4.3 area overhead analysis.

All runners share :mod:`repro.experiments.runner`: simulations fan out over
a process pool (``REPRO_JOBS``), and results are memoized in-process plus
content-addressed on disk (``~/.cache/repro-disco``), so Fig. 5 and Fig. 7
price the same runs — exactly as the paper derives both from one set of
simulations — and re-rendering a figure is free.
"""

from repro.experiments.runner import (
    RunSpec,
    clear_cache,
    clear_disk_cache,
    run_matrix,
    run_spec,
    run_specs,
)
from repro.experiments.report import format_table, normalize

__all__ = [
    "RunSpec",
    "run_spec",
    "run_specs",
    "run_matrix",
    "clear_cache",
    "clear_disk_cache",
    "format_table",
    "normalize",
]
