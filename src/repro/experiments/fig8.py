"""Fig. 8 — scalability of DISCO with CMP size (2x2 / 4x4 / 8x8 meshes).

The paper scales the tiled CMP from 4 NUCA banks to 64 and reports the
DISCO-vs-CC gain growing from insignificant at 2x2 through ~10 % at 4x4 to
~22 % at 8x8: bigger meshes mean more hops, more queueing — and therefore
both more exposure of per-access (de)compression latency for CC and more
idle time for DISCO to hide its own in.

This is *strong* scaling, matching the paper's setup: the same workload
and the same total NUCA capacity, distributed over more (and therefore
smaller, faster) banks.  At 2x2 the four large banks dominate the access
path (little for DISCO to win); at 8x8 the 64-node network dominates it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.report import format_table, geomean, normalize
from repro.experiments.runner import (
    FIGURE_ACCESSES,
    RunSpec,
    run_spec,
    run_specs,
)

#: Mesh sizes of Fig. 8 (width, height).
MESHES: Tuple[Tuple[int, int], ...] = ((2, 2), (4, 4), (8, 8))

#: Strong scaling: constant total LLC capacity -> per-bank sets shrink and
#: bank access gets faster as the mesh grows (CACTI-style size/latency
#: relation, coarse).
_BANK_SETS = {(2, 2): 128, (4, 4): 32, (8, 8): 8}
_BANK_LATENCY = {(2, 2): 6, (4, 4): 4, (8, 8): 3}

#: A lighter workload subset — the 8x8 mesh runs 64 cores cycle-level.
SCALABILITY_WORKLOADS = ("canneal", "freqmine", "streamcluster", "x264")

SCHEMES = ("cc", "disco")
REFERENCE = "ideal"


@dataclass
class Fig8Result:
    workloads: List[str]
    meshes: List[Tuple[int, int]]
    # mesh -> scheme -> geomean normalized latency
    average: Dict[Tuple[int, int], Dict[str, float]]
    # mesh -> fraction of DISCO decompressions hidden inside router
    # queueing (vs charged at the ejection NI) — the §3.2 overlap share
    overlap_share: Dict[Tuple[int, int], float] = None  # type: ignore

    def disco_gain_over_cc(self, mesh: Tuple[int, int]) -> float:
        row = self.average[mesh]
        return 1.0 - row["disco"] / row["cc"]


def fig8(
    workloads: Sequence[str] = SCALABILITY_WORKLOADS,
    meshes: Sequence[Tuple[int, int]] = MESHES,
    accesses_per_core: int = FIGURE_ACCESSES,
    verbose: bool = False,
) -> Fig8Result:
    run_specs(
        [
            RunSpec(
                scheme=scheme,
                workload=workload,
                width=width,
                height=height,
                accesses_per_core=accesses_per_core,
                l2_sets_per_bank=_BANK_SETS.get((width, height), 32),
                l2_hit_latency=_BANK_LATENCY.get((width, height), 4),
            )
            for width, height in meshes
            for workload in workloads
            for scheme in (REFERENCE, *SCHEMES)
        ],
        verbose=verbose,
    )  # parallel fan-out; the loops below hit the memo cache
    average: Dict[Tuple[int, int], Dict[str, float]] = {}
    overlap_share: Dict[Tuple[int, int], float] = {}
    for width, height in meshes:
        normalized_rows: Dict[str, Dict[str, float]] = {}
        mesh = (width, height)
        hidden = exposed = 0
        for workload in workloads:
            raw: Dict[str, float] = {}
            for scheme in (REFERENCE, *SCHEMES):
                spec = RunSpec(
                    scheme=scheme,
                    workload=workload,
                    width=width,
                    height=height,
                    accesses_per_core=accesses_per_core,
                    l2_sets_per_bank=_BANK_SETS.get(mesh, 32),
                    l2_hit_latency=_BANK_LATENCY.get(mesh, 4),
                )
                result = run_spec(spec, verbose=verbose)
                raw[scheme] = result.avg_miss_latency
                if scheme == "disco":
                    counters = result.counters_measured
                    hidden += counters["router_decompressions"]
                    exposed += counters["ni_decompressions"]
            normalized_rows[workload] = normalize(raw, REFERENCE)
        average[mesh] = {
            scheme: geomean(
                normalized_rows[w][scheme] for w in workloads
            )
            for scheme in (REFERENCE, *SCHEMES)
        }
        total = hidden + exposed
        overlap_share[mesh] = hidden / total if total else 0.0
    return Fig8Result(
        workloads=list(workloads),
        meshes=list(meshes),
        average=average,
        overlap_share=overlap_share,
    )


def render(result: Optional[Fig8Result] = None, **kwargs) -> str:
    result = result or fig8(**kwargs)
    rows = []
    for mesh in result.meshes:
        row = result.average[mesh]
        rows.append(
            [
                f"{mesh[0]}x{mesh[1]} ({mesh[0] * mesh[1]} banks)",
                row["cc"],
                row["disco"],
                f"{100 * result.disco_gain_over_cc(mesh):+.1f}%",
                f"{100 * result.overlap_share[mesh]:.0f}%",
            ]
        )
    table = format_table(
        ["mesh", "cc (norm)", "disco (norm)", "gain vs cc", "overlap"],
        rows,
        title="Fig. 8: scalability of DISCO (normalized to ideal)",
    )
    return table + (
        "\npaper: gain grows ~0% (2x2) -> ~10% (4x4) -> ~22% (8x8)."
        "\n'overlap' = share of DISCO decompressions hidden in router"
        "\nqueueing - the paper's growth mechanism (see EXPERIMENTS.md)."
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(render(verbose=True))
