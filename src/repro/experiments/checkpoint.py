"""Crash-safe checkpointing of in-flight simulations.

A checkpoint is the pickled :meth:`CmpSystem.state_dict` wrapped in an
``RDK1`` envelope (magic + SHA-256 of the payload, the disk-cache format
of :mod:`repro.experiments.runner` with its own magic so the two file
kinds can never be confused).  Envelopes are published atomically
(``mkstemp`` + ``os.replace``) and the last two generations are retained
(``<key>.ckpt`` / ``<key>.ckpt.1``), so a crash *during* a checkpoint
write still leaves a valid older envelope behind.  A corrupt envelope is
quarantined (``*.corrupt``) and the older generation is tried next.

Everything is configured by environment variables — deliberately outside
:class:`~repro.experiments.runner.RunSpec`, so cache keys, result
envelopes and golden digests are untouched whether checkpointing is on
or off:

- ``REPRO_CHECKPOINT_INTERVAL`` — cycles between periodic checkpoints
  (default ``0`` = off);
- ``REPRO_CHECKPOINT_DIR`` — envelope directory (default
  ``<cache_dir>/checkpoints``);
- ``REPRO_RESUME=1`` — restore from the latest valid checkpoint even
  when periodic writing is off (the campaign resume path).

With periodic writing on, SIGTERM/SIGINT are latched cooperatively: the
handler only sets a flag, the run loop's ``checkpoint_fn`` hook writes a
final envelope at a safe point and then re-raises the termination — so a
``kill`` never tears a checkpoint in half.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import signal
import threading
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.cmp.system import CmpSystem

#: Checkpoint envelope format version ("RDK" = repro disco kernel state).
CHECKPOINT_MAGIC = b"RDK1"
_ENVELOPE_HEADER = len(CHECKPOINT_MAGIC) + hashlib.sha256().digest_size

#: Process-wide count of successful checkpoint restores (tests assert the
#: resume path actually restored instead of silently recomputing).
_RESTORES = 0


def restores() -> int:
    """Checkpoint restores performed so far in this process."""
    return _RESTORES


# --------------------------------------------------------------------------
# configuration (environment only — never part of the spec/cache key)
# --------------------------------------------------------------------------


def checkpoint_interval() -> int:
    """Cycles between periodic checkpoints; 0 (the default) disables."""
    env = os.environ.get("REPRO_CHECKPOINT_INTERVAL", "").strip()
    if not env:
        return 0
    try:
        value = int(env)
    except ValueError:
        return 0
    return max(0, value)


def checkpoint_dir() -> Path:
    override = os.environ.get("REPRO_CHECKPOINT_DIR", "").strip()
    if override:
        return Path(override).expanduser()
    from repro.experiments.runner import cache_dir

    return cache_dir() / "checkpoints"


def resume_enabled() -> bool:
    return os.environ.get("REPRO_RESUME", "") == "1"


# --------------------------------------------------------------------------
# envelope I/O
# --------------------------------------------------------------------------


def checkpoint_paths(key: str) -> Tuple[Path, Path]:
    """(current, previous) envelope paths for one spec key."""
    directory = checkpoint_dir()
    return directory / f"{key}.ckpt", directory / f"{key}.ckpt.1"


def _quarantine(path: Path) -> None:
    try:
        os.replace(path, path.with_name(path.name + ".corrupt"))
    except OSError:  # pragma: no cover - concurrent cleanup
        return
    # A quarantined checkpoint is postmortem-worthy: dump the flight ring
    # (no-op with the plane off) so the corrupt-envelope event joins the
    # service log and journal on the correlation id.
    from repro.telemetry import flight as _flight

    if _flight.enabled():
        recorder = _flight.recorder(role="worker")
        recorder.record("checkpoint_quarantine", path=str(path))
        recorder.dump(
            "checkpoint_quarantine", extra={"path": str(path)}
        )


def save_checkpoint(key: str, cycle: int, state: Dict) -> Path:
    """Atomically publish a checkpoint, rotating the previous one.

    Safe under concurrent writers of the same key (two hosts sharing the
    cache directory can legitimately both run one spec): the rotation's
    ``os.replace`` tolerates the current generation vanishing under us —
    another writer just rotated it — and the publish itself stages into a
    per-writer ``mkstemp`` file, fsyncs, and renames, so whichever writer
    lands last leaves a complete envelope (the simulator is
    deterministic, so either writer's envelope restores the same run).
    """
    current, previous = checkpoint_paths(key)
    payload = pickle.dumps(
        {"spec_key": key, "cycle": cycle, "state": state},
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    blob = CHECKPOINT_MAGIC + hashlib.sha256(payload).digest() + payload
    directory = current.parent
    directory.mkdir(parents=True, exist_ok=True)
    if current.exists():
        try:
            os.replace(current, previous)  # last-two retention
        except FileNotFoundError:  # a concurrent writer won the rotation
            pass
    from repro.experiments.runner import _publish_atomic

    _publish_atomic(directory, current, blob)
    return current


def _read_envelope(path: Path, key: str) -> Optional[Dict]:
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except FileNotFoundError:
        return None
    except OSError:
        _quarantine(path)
        return None
    header, payload = blob[:_ENVELOPE_HEADER], blob[_ENVELOPE_HEADER:]
    if (
        len(header) < _ENVELOPE_HEADER
        or not header.startswith(CHECKPOINT_MAGIC)
        or header[len(CHECKPOINT_MAGIC):] != hashlib.sha256(payload).digest()
    ):
        _quarantine(path)  # truncated / wrong magic / bit-rotted
        return None
    try:
        envelope = pickle.loads(payload)
    except Exception:
        _quarantine(path)  # checksum-valid but unreconstructable
        return None
    if not isinstance(envelope, dict) or envelope.get("spec_key") != key:
        _quarantine(path)  # misfiled under the wrong key
        return None
    return envelope


def load_checkpoint(key: str) -> Optional[Dict]:
    """Latest valid envelope for ``key`` (falls back to the previous
    generation when the current one is corrupt); ``None`` when none."""
    for path in checkpoint_paths(key):
        envelope = _read_envelope(path, key)
        if envelope is not None:
            return envelope
    return None


def discard_checkpoints(key: str) -> None:
    """Delete both generations (the spec completed; the disk-cache result
    now supersedes any mid-run state)."""
    for path in checkpoint_paths(key):
        try:
            path.unlink()
        except OSError:
            pass


# --------------------------------------------------------------------------
# system reconstruction
# --------------------------------------------------------------------------


def build_system(spec) -> CmpSystem:
    """A fresh, un-run system for ``spec``, ready for :meth:`load_state`.

    Mirrors the runner's ``_simulate`` construction — same config, scheme,
    traces and algorithm training — with ``prefill=False``: the restored
    state carries the LLC contents, so prefilling would only burn time.
    """
    from repro.cmp.schemes import make_scheme
    from repro.experiments.runner import _train_if_needed
    from repro.workloads.trace import generate_traces

    config = spec.config()
    scheme = make_scheme(spec.scheme, algorithm=spec.algorithm)
    traces = generate_traces(
        spec.profile(),
        config.n_cores,
        spec.accesses_per_core,
        seed=spec.seed,
        line_size=config.line_size,
    )
    system = CmpSystem(
        config,
        scheme,
        traces,
        warmup_fraction=spec.warmup_fraction,
        prefill=False,
    )
    _train_if_needed(system, spec)
    return system


# --------------------------------------------------------------------------
# cooperative termination latch
# --------------------------------------------------------------------------


class _SignalLatch:
    """SIGTERM/SIGINT set a flag; the run loop flushes and re-raises."""

    def __init__(self) -> None:
        self.signum: Optional[int] = None
        self._previous: Dict[int, object] = {}

    def install(self) -> None:
        if threading.current_thread() is not threading.main_thread():
            return  # signals are main-thread only; rely on the watchdog
        for signum in (signal.SIGTERM, signal.SIGINT):
            self._previous[signum] = signal.signal(signum, self._handle)

    def uninstall(self) -> None:
        for signum, previous in self._previous.items():
            signal.signal(signum, previous)
        self._previous = {}

    def _handle(self, signum, frame) -> None:
        self.signum = signum

    def reraise(self) -> None:
        signum, self.signum = self.signum, None
        if signum == signal.SIGINT:
            raise KeyboardInterrupt
        raise SystemExit(128 + (signum or 0))


# --------------------------------------------------------------------------
# per-run session (the runner's integration point)
# --------------------------------------------------------------------------


class CheckpointSession:
    """Checkpoint lifecycle of one simulation: restore, periodic saves,
    signal flush, and cleanup on success."""

    def __init__(self, spec, key: str, interval: int):
        self.spec = spec
        self.key = key
        self.interval = interval
        self._latch = _SignalLatch()
        self._last_cycle = 0
        if interval > 0:
            self._latch.install()

    # -- restore -------------------------------------------------------------
    def maybe_restore(self, system: CmpSystem) -> Optional[int]:
        """Load the latest valid checkpoint into ``system``; returns the
        restored cycle, or ``None`` when starting cold."""
        global _RESTORES
        envelope = load_checkpoint(self.key)
        if envelope is None:
            return None
        system.load_state(envelope["state"])
        cycle = envelope["cycle"]
        self._last_cycle = cycle
        _RESTORES += 1
        return cycle

    # -- the run-loop hook ----------------------------------------------------
    def step(self, system: CmpSystem) -> None:
        if self._latch.signum is not None:
            self.save(system)
            self._latch.reraise()
        if not self.interval:
            return
        cycle = system.cycle
        if cycle - self._last_cycle >= self.interval:
            self.save(system)

    def save(self, system: CmpSystem) -> Path:
        cycle = system.cycle
        path = save_checkpoint(self.key, cycle, system.state_dict())
        self._last_cycle = cycle
        return path

    # -- lifecycle -----------------------------------------------------------
    def on_success(self) -> None:
        discard_checkpoints(self.key)

    def close(self) -> None:
        self._latch.uninstall()


def session_for(spec) -> Optional[CheckpointSession]:
    """A session when any checkpoint feature is requested, else ``None``
    (the provably-inert default: no hooks, no signal handlers, no I/O)."""
    interval = checkpoint_interval()
    if interval <= 0 and not resume_enabled():
        return None
    from repro.experiments.runner import spec_key

    return CheckpointSession(spec, spec_key(spec), interval)
