"""Cross-process (and cross-host) advisory file locks with stale takeover.

The campaign cache directory is shared state: multiple runner processes —
and, via a network filesystem, multiple *hosts* — append to one journal
and rotate checkpoint generations concurrently.  Result publishes are
already safe lock-free (atomic ``os.replace`` of a content-addressed
path: last writer wins with identical bytes), but multi-record protocols
like "rotate then write" need mutual exclusion.

:class:`FileLock` implements the classic lockfile protocol on primitives
every POSIX filesystem (including NFS) serializes:

- **acquire** is ``os.open(path, O_CREAT | O_EXCL)`` — exactly one
  contender wins creation; the token records owner pid/host/timestamp
  for diagnostics;
- **release** unlinks the token;
- **stale takeover**: a lock whose token is older than ``stale_seconds``
  belongs to a SIGKILLed/rebooted owner that can never release it.  A
  contender *renames* the stale token aside (``os.replace`` onto a
  ``.stale`` grave) before retrying — the rename succeeds for exactly one
  contender, so two takers never both believe they freed the lock.

Holders must finish their critical section well inside ``stale_seconds``
(the journal appends and checkpoint rotations guarded here are a few
syscalls).  Lock failures degrade, never block correctness: callers that
cannot acquire within ``timeout`` get :class:`LockTimeout` and fall back
to their lock-free behaviour, because everything the locks guard is a
recovery aid layered over the content-addressed caches.
"""

from __future__ import annotations

import json
import os
import socket
import time
from pathlib import Path
from typing import Optional, Union


class LockTimeout(OSError):
    """The lock stayed held (and fresh) past the acquisition timeout."""


class FileLock:
    """An advisory lockfile with stale-owner takeover.

    Usable as a context manager::

        with FileLock(cache_dir / "campaign.journal.lock"):
            ...append...

    ``stale_seconds`` bounds how long a dead owner can wedge the lock;
    ``timeout`` bounds how long acquisition spins before raising
    :class:`LockTimeout`.
    """

    def __init__(
        self,
        path: Union[str, Path],
        stale_seconds: float = 30.0,
        timeout: float = 10.0,
        poll_interval: float = 0.02,
    ):
        self.path = Path(path)
        self.stale_seconds = stale_seconds
        self.timeout = timeout
        self.poll_interval = poll_interval
        self.takeovers = 0  #: stale locks broken by this instance
        self._held = False

    # -- token ---------------------------------------------------------------
    def _token(self) -> bytes:
        record = {
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "ts": time.time(),
        }
        return (json.dumps(record, sort_keys=True) + "\n").encode()

    def owner(self) -> Optional[dict]:
        """The current token's contents (diagnostics), or ``None``."""
        try:
            return json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None

    # -- protocol ------------------------------------------------------------
    def _try_create(self) -> bool:
        try:
            fd = os.open(
                self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
            )
        except FileExistsError:
            return False
        except OSError:
            # Unwritable directory: treat like contention; the caller's
            # timeout converts a persistent failure into LockTimeout.
            return False
        try:
            os.write(fd, self._token())
        finally:
            os.close(fd)
        return True

    def _break_if_stale(self) -> bool:
        """Retire a stale token; True when this contender buried it."""
        try:
            age = time.time() - self.path.stat().st_mtime
        except OSError:
            return False  # released (or buried) under us — just retry
        if age <= self.stale_seconds:
            return False
        grave = self.path.with_name(self.path.name + ".stale")
        try:
            # Exactly one contender wins this rename; the losers see
            # FileNotFoundError and go back to the O_EXCL race.
            os.replace(self.path, grave)
        except OSError:
            return False
        try:
            grave.unlink()
        except OSError:  # pragma: no cover - concurrent cleanup
            pass
        self.takeovers += 1
        return True

    def acquire(self) -> "FileLock":
        if self._held:
            raise RuntimeError(f"lock already held: {self.path}")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        deadline = time.monotonic() + self.timeout
        while True:
            if self._try_create():
                self._held = True
                return self
            self._break_if_stale()
            if time.monotonic() >= deadline:
                raise LockTimeout(
                    f"could not acquire {self.path} within "
                    f"{self.timeout}s (owner: {self.owner()})"
                )
            time.sleep(self.poll_interval)

    def release(self) -> None:
        if not self._held:
            return
        self._held = False
        try:
            self.path.unlink()
        except OSError:  # pragma: no cover - grave-robbed by a takeover
            pass

    @property
    def held(self) -> bool:
        return self._held

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()
