"""Fig. 6 — performance with FPC and SC² plugged into CC / CNC / DISCO.

DISCO is algorithm-agnostic (§3.2); this experiment swaps the engine for
FPC (5/5 cycles) and SC² (6/8 cycles, highest ratio) and repeats the Fig. 5
measurement.  The paper reports DISCO gaining 11-16 % on average, with the
biggest margin under SC² — the long-latency algorithm benefits most from
having its latency hidden — and CNC falling *behind* CC for the expensive
algorithms (two-level compression pays the long latency twice).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.fig5 import Fig5Result, fig5
from repro.experiments.report import format_table
from repro.experiments.runner import (
    DEFAULT_WORKLOADS,
    FIGURE_ACCESSES,
    RunSpec,
    run_specs,
)

ALGORITHMS = ("fpc", "sc2")


@dataclass
class Fig6Result:
    per_algorithm: Dict[str, Fig5Result]

    def improvement(self, algorithm: str, other: str) -> float:
        return self.per_algorithm[algorithm].improvement_of_disco_over(other)


def fig6(
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    algorithms: Sequence[str] = ALGORITHMS,
    accesses_per_core: int = FIGURE_ACCESSES,
    verbose: bool = False,
) -> Fig6Result:
    # One batch across every algorithm so the pool sees the whole figure's
    # worth of independent simulations at once.
    run_specs(
        [
            RunSpec(
                scheme=scheme,
                workload=workload,
                algorithm=algorithm,
                accesses_per_core=accesses_per_core,
            )
            for algorithm in algorithms
            for workload in workloads
            for scheme in ("ideal", "cc", "cnc", "disco")
        ],
        verbose=verbose,
    )
    per_algorithm = {
        algorithm: fig5(
            workloads=workloads,
            algorithm=algorithm,
            accesses_per_core=accesses_per_core,
            schemes=("cc", "cnc", "disco"),
            verbose=verbose,
        )
        for algorithm in algorithms
    }
    return Fig6Result(per_algorithm=per_algorithm)


def render(result: Optional[Fig6Result] = None, **kwargs) -> str:
    result = result or fig6(**kwargs)
    blocks: List[str] = []
    for algorithm, fig in result.per_algorithm.items():
        schemes = ["ideal", "cc", "cnc", "disco"]
        rows = [
            [w] + [fig.normalized[w][s] for s in schemes]
            for w in fig.workloads
        ]
        rows.append(["geomean"] + [fig.average[s] for s in schemes])
        blocks.append(
            format_table(
                ["workload"] + schemes,
                rows,
                title=f"Fig. 6 ({algorithm}): normalized latency (ideal = 1.0)",
            )
        )
        blocks.append(
            f"DISCO vs CC:  {100 * fig.improvement_of_disco_over('cc'):+.1f}%   "
            f"DISCO vs CNC: {100 * fig.improvement_of_disco_over('cnc'):+.1f}%"
            + (
                "   (paper, SC2: 15.5% / 16.7%)"
                if algorithm == "sc2"
                else ""
            )
        )
    return "\n\n".join(blocks)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(render(verbose=True))
