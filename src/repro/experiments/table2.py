"""Table 2 — baseline system parameters.

The configuration is encoded in :class:`repro.cmp.config.SystemConfig` and
:class:`repro.noc.config.NocConfig`; this module renders it in the paper's
row format and asserts the paper's values hold for ``SystemConfig.table2()``
(the experiments then use the documented scaled variants).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.cmp.config import SystemConfig
from repro.experiments.report import format_table


def table2_rows(config: SystemConfig = None) -> List[Tuple[str, str]]:
    config = config or SystemConfig.table2()
    noc = config.noc
    l1_kb = config.l1_sets * config.l1_ways * config.line_size // 1024
    llc_mb = config.llc_capacity_bytes / (1024 * 1024)
    return [
        ("Processor core",
         f"{config.n_cores} cores, trace-driven, {config.core_window} "
         f"outstanding misses, {l1_kb}KB {config.l1_ways}-way D-cache"),
        ("NoC topology",
         f"{noc.width}x{noc.height} mesh, XY routing"),
        ("Router",
         f"3 pipeline stages, {noc.flow_control.value} flow control, "
         f"{noc.vc_depth}-flit buffers, {noc.vcs_per_port} VCs, "
         f"{8 * noc.flit_bytes}-bit flits"),
        ("Coherence", "MSI directory (MOESI simplified; DESIGN.md)"),
        ("L2 cache",
         f"shared NUCA, {config.l2_ways}-way, {config.line_size}B lines, "
         f"{config.n_banks} banks, LRU, {config.l2_hit_latency}-cycle hit, "
         f"{llc_mb:g}MB total"),
        ("Memory",
         f"{config.memory_banks} DRAM banks, "
         f"{config.memory_latency}-cycle access, 1 channel"),
        ("DISCO",
         "non-blocking compression, delta-based, 1-cycle compression, "
         "3-cycle decompression"),
    ]


def verify_table2() -> List[str]:
    """Check the full-scale defaults against the paper's Table 2."""
    config = SystemConfig.table2()
    noc = config.noc
    problems = []
    if config.n_cores != 16:
        problems.append(f"expected 16 cores, got {config.n_cores}")
    if (noc.width, noc.height) != (4, 4):
        problems.append("expected a 4x4 mesh")
    if noc.vc_depth != 8 or noc.vcs_per_port != 2:
        problems.append("expected 8-flit buffers and 2 VCs")
    if config.l2_ways != 8 or config.line_size != 64:
        problems.append("expected 8-way 64B-line L2")
    if config.llc_capacity_bytes != 4 * 1024 * 1024:
        problems.append(
            f"expected 4MB NUCA, got {config.llc_capacity_bytes}"
        )
    if config.l2_hit_latency != 4:
        problems.append("expected 4-cycle bank hit")
    if config.memory_banks != 8:
        problems.append("expected 8 DRAM banks")
    return problems


def render(config: SystemConfig = None) -> str:
    return format_table(
        ["parameter", "value"],
        table2_rows(config),
        title="Table 2: baseline system parameters",
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(render())
    issues = verify_table2()
    print("\nTable 2 check:", "OK" if not issues else issues)
