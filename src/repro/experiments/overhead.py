"""§4.3 — hardware overhead estimation.

Structural area model of the DISCO router additions (compressor +
arbitrator) versus the baseline 3-stage 64-bit router and the 4 MB NUCA
cache.  Paper numbers: +17.2 % of router area, <1 % of the cache, and
about half of CNC's compressor area.
"""

from __future__ import annotations

from typing import Optional

from repro.energy.area import AreaReport, overhead_report
from repro.experiments.report import format_table
from repro.noc.config import NocConfig


def overhead(algorithm: str = "delta") -> AreaReport:
    return overhead_report(
        algorithm=algorithm,
        config=NocConfig(),
        cache_capacity_bytes=4 * 1024 * 1024,
        n_tiles=16,
    )


def render(report: Optional[AreaReport] = None, algorithm: str = "delta") -> str:
    report = report or overhead(algorithm)
    rows = [
        ["baseline router", f"{report.router_um2:,.0f} um^2"],
        ["DISCO compressor", f"{report.compressor_um2:,.0f} um^2"],
        ["DISCO arbitrator", f"{report.arbitrator_um2:,.0f} um^2"],
        ["4MB NUCA cache", f"{report.cache_um2 / 1e6:,.2f} mm^2"],
        ["router overhead",
         f"{100 * report.router_overhead:.1f}%  (paper: 17.2%)"],
        ["cache overhead (16 tiles)",
         f"{100 * report.cache_overhead:.2f}%  (paper: <1%)"],
        ["DISCO / CNC compressor area",
         f"{100 * report.disco_vs_cnc_area:.0f}%  (paper: ~half)"],
    ]
    return format_table(
        ["quantity", "value"],
        rows,
        title="Sec 4.3: DISCO hardware overhead (structural model, 45nm)",
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(render())
