"""Table 1 — important parameters of different compression schemes.

The latencies and hardware overheads come from the registry (they are
input parameters, quoted from the cited papers); the *compression ratio*
column is measured by running each implemented algorithm over the
PARSEC-like line corpus, which is the reproduction's analogue of the
published average ratios (FPC 1.5, SFPC 1.33, BDI 1.57, SC² 2.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.compression.registry import get_algorithm, get_timing
from repro.experiments.report import format_table
from repro.workloads.corpus import ValuePool
from repro.workloads.profiles import PARSEC_BENCHMARKS

#: The schemes Table 1 lists (plus the rest of the implemented family).
TABLE1_ALGORITHMS = ("fpc", "sfpc", "bdi", "sc2", "cpack", "delta")


@dataclass
class Table1Row:
    algorithm: str
    compression_cycles: int
    decompression_cycles: int
    hardware_overhead: float
    measured_ratio: float


def measure_ratio(
    algorithm_name: str,
    lines_per_profile: int = 150,
    seed: int = 1,
) -> float:
    """Corpus-average compression ratio of one algorithm.

    Statistical algorithms are trained per benchmark (SC²'s sampling
    phase) and evaluated on held-out lines of the same benchmark, then
    aggregated — mirroring how per-application ratios are reported.
    """
    total_raw = 0
    total_compressed = 0
    for profile in PARSEC_BENCHMARKS.values():
        pool = ValuePool(profile, seed=seed)
        algorithm = get_algorithm(algorithm_name)
        train = getattr(algorithm, "train", None)
        if train is not None and algorithm_name in ("sc2", "fvc"):
            train(pool.sample(2 * lines_per_profile, seed=seed + 1))
        for line in pool.sample(lines_per_profile, seed=seed + 2):
            compressed = algorithm.compress(line)
            total_raw += len(line)
            total_compressed += compressed.size_bytes
    return total_raw / total_compressed


def table1(
    algorithms: Sequence[str] = TABLE1_ALGORITHMS,
    lines_per_profile: int = 150,
) -> List[Table1Row]:
    rows = []
    for name in algorithms:
        timing = get_timing(name)
        rows.append(
            Table1Row(
                algorithm=name,
                compression_cycles=timing.compression_cycles,
                decompression_cycles=timing.decompression_cycles,
                hardware_overhead=timing.hardware_overhead,
                measured_ratio=measure_ratio(
                    name, lines_per_profile=lines_per_profile
                ),
            )
        )
    return rows


def render(rows: Optional[List[Table1Row]] = None) -> str:
    rows = rows if rows is not None else table1()
    return format_table(
        ["method", "comp (cyc)", "decomp (cyc)", "hw overhead", "ratio"],
        [
            [
                r.algorithm,
                r.compression_cycles,
                r.decompression_cycles,
                f"{100 * r.hardware_overhead:.1f}%",
                r.measured_ratio,
            ]
            for r in rows
        ],
        title="Table 1: compression scheme parameters (measured ratios)",
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(render())
