"""Fig. 5 — on-chip data access latency with delta compression.

CC / CNC / DISCO (plus the no-compression baseline for context) across the
PARSEC-like workloads, normalized per workload to the *ideal* system —
"the same system with cache compression but without the de/compression
overhead" (§4.2).  The paper reports DISCO beating CC by ~12 % and CNC by
~10.1 % on average.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.report import format_table, geomean, normalize
from repro.experiments.runner import (
    DEFAULT_WORKLOADS,
    FIGURE_ACCESSES,
    RunSpec,
    run_spec,
    run_specs,
)

SCHEMES = ("baseline", "cc", "cnc", "disco")
REFERENCE = "ideal"


@dataclass
class Fig5Result:
    """Normalized latency per (workload, scheme) plus aggregates."""

    algorithm: str
    workloads: List[str]
    normalized: Dict[str, Dict[str, float]]  # workload -> scheme -> value
    average: Dict[str, float]  # scheme -> geomean

    def improvement_of_disco_over(self, other: str) -> float:
        """Fractional latency reduction of DISCO vs another scheme."""
        return 1.0 - self.average["disco"] / self.average[other]


def fig5(
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    algorithm: str = "delta",
    accesses_per_core: int = FIGURE_ACCESSES,
    schemes: Sequence[str] = SCHEMES,
    verbose: bool = False,
) -> Fig5Result:
    grid = [
        RunSpec(
            scheme=scheme,
            workload=workload,
            algorithm=algorithm,
            accesses_per_core=accesses_per_core,
        )
        for workload in workloads
        for scheme in (REFERENCE, *schemes)
    ]
    run_specs(grid, verbose=verbose)  # parallel fan-out; lookups below hit memo
    normalized: Dict[str, Dict[str, float]] = {}
    for workload in workloads:
        raw: Dict[str, float] = {}
        for scheme in (REFERENCE, *schemes):
            spec = RunSpec(
                scheme=scheme,
                workload=workload,
                algorithm=algorithm,
                accesses_per_core=accesses_per_core,
            )
            raw[scheme] = run_spec(spec, verbose=verbose).avg_miss_latency
        normalized[workload] = normalize(raw, REFERENCE)
    average = {
        scheme: geomean(normalized[w][scheme] for w in workloads)
        for scheme in (REFERENCE, *schemes)
    }
    return Fig5Result(
        algorithm=algorithm,
        workloads=list(workloads),
        normalized=normalized,
        average=average,
    )


def render(result: Optional[Fig5Result] = None, **kwargs) -> str:
    result = result or fig5(**kwargs)
    schemes = [s for s in result.average]  # REFERENCE first, then schemes
    rows = []
    for workload in result.workloads:
        rows.append(
            [workload] + [result.normalized[workload][s] for s in schemes]
        )
    rows.append(["geomean"] + [result.average[s] for s in schemes])
    table = format_table(
        ["workload"] + list(schemes),
        rows,
        title=(
            f"Fig. 5: normalized avg data-access latency "
            f"({result.algorithm} compression; ideal = 1.0)"
        ),
    )
    summary = ""
    if "disco" in result.average and "cc" in result.average:
        summary += (
            f"\nDISCO vs CC:  "
            f"{100 * result.improvement_of_disco_over('cc'):+.1f}% "
            f"(paper: ~12%)"
        )
    if "disco" in result.average and "cnc" in result.average:
        summary += (
            f"\nDISCO vs CNC: "
            f"{100 * result.improvement_of_disco_over('cnc'):+.1f}% "
            f"(paper: ~10.1%)"
        )
    return table + summary


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(render(verbose=True))
