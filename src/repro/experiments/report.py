"""Plain-text result tables (the harness prints what the paper plots)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence


def normalize(
    values: Mapping[str, float], reference: str
) -> Dict[str, float]:
    """Normalize a row of values to one entry (the paper's 'ideal'=1.0)."""
    ref = values[reference]
    if ref == 0:
        raise ZeroDivisionError(f"reference {reference!r} is zero")
    return {key: value / ref for key, value in values.items()}


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the usual aggregate for normalized metrics)."""
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError("geomean requires positive values")
        product *= value
    return product ** (1.0 / len(values))


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width table; floats rendered with 3 decimals."""
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    rendered = [[render(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("-" * len(header))
    for row in rendered:
        lines.append(
            "  ".join(row[i].ljust(widths[i]) for i in range(len(row)))
        )
    return "\n".join(lines)
