"""Plain-text result tables (the harness prints what the paper plots)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence


def normalize(
    values: Mapping[str, float], reference: str
) -> Dict[str, float]:
    """Normalize a row of values to one entry (the paper's 'ideal'=1.0)."""
    ref = values[reference]
    if ref == 0:
        raise ZeroDivisionError(f"reference {reference!r} is zero")
    return {key: value / ref for key, value in values.items()}


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the usual aggregate for normalized metrics)."""
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError("geomean requires positive values")
        product *= value
    return product ** (1.0 / len(values))


def render_heatmap(
    counts: Mapping[int, int],
    width: int,
    height: int,
    title: str = "",
) -> str:
    """Per-node activity grid (row-major node ids, origin top-left).

    ``counts`` is sparse — typically ``node_hop_counts`` from a packet
    trace (:func:`repro.telemetry.export.node_hop_counts`); nodes with no
    events render as 0, so a cold router is visible, not absent.
    """
    if width < 1 or height < 1:
        raise ValueError("heatmap dimensions must be >= 1")
    cells = [
        [counts.get(y * width + x, 0) for x in range(width)]
        for y in range(height)
    ]
    cell_width = max(
        len(str(value)) for row in cells for value in row
    )
    lines: List[str] = []
    if title:
        lines.append(title)
    for row in cells:
        lines.append(
            "  ".join(str(value).rjust(cell_width) for value in row)
        )
    peak = max(max(row) for row in cells)
    total = sum(sum(row) for row in cells)
    lines.append(f"(total {total}, peak {peak})")
    return "\n".join(lines)


def render_histogram(
    rows: Sequence[Sequence[object]],
    title: str = "",
    value_header: str = "count",
    bar_width: int = 40,
) -> str:
    """(label, count) rows as a table with proportional ASCII bars.

    The shape ``latency_histogram`` (repro.telemetry.export) produces;
    any (label, non-negative count) pairs work.
    """
    counts = [int(row[1]) for row in rows]
    peak = max(counts) if counts else 0
    table_rows = []
    for (label, _), count in zip(rows, counts):
        bar = "#" * round(bar_width * count / peak) if peak else ""
        table_rows.append([label, count, bar])
    return format_table(
        ["bin", value_header, ""], table_rows, title=title
    )


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width table; floats rendered with 3 decimals."""
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    rendered = [[render(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("-" * len(header))
    for row in rendered:
        lines.append(
            "  ".join(row[i].ljust(widths[i]) for i in range(len(row)))
        )
    return "\n".join(lines)
