"""Topology sweep — DISCO's benefit across fabric shapes (Fig. 5 style).

DISCO harvests router queueing delay, and queueing shape is a property of
the fabric: a torus halves average hop count but adds escape-VC pressure,
a ring concentrates everything on two directions, a concentrated mesh
funnels cluster traffic through hub routers.  This sweep runs the Fig. 5
latency comparison (cc / cnc / disco, normalized per workload to the
ideal system *of the same fabric*) on each topology, so the numbers
answer "how much of DISCO's overlap opportunity survives a fabric
change?" rather than re-ranking fabrics against each other.

Entry point::

    PYTHONPATH=src python -m repro.experiments.topology_sweep

Runs go through the shared cached parallel runner, so a re-render is
free and the sweep shares its ideal/mesh runs with fig5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.report import format_table, geomean, normalize
from repro.experiments.runner import (
    QUICK_ACCESSES,
    RunSpec,
    run_spec,
    run_specs,
)

SCHEMES = ("cc", "cnc", "disco")
REFERENCE = "ideal"

#: Fabrics compared by default.  All carry 16 terminals so the workload,
#: cache capacity, and injection population are identical; only the
#: interconnect shape changes.
TOPOLOGIES = ("mesh", "torus", "ring")

#: Sweep workloads: a compressible-friendly subset keeps the full
#: (topology x scheme x workload) grid tractable for a console run.
SWEEP_WORKLOADS = ("blackscholes", "bodytrack", "streamcluster")


@dataclass
class TopologySweepResult:
    """Normalized latency per (topology, workload, scheme)."""

    algorithm: str
    topologies: List[str]
    workloads: List[str]
    #: topology -> workload -> scheme -> latency / ideal-of-that-topology
    normalized: Dict[str, Dict[str, Dict[str, float]]]
    #: topology -> scheme -> geomean over workloads
    average: Dict[str, Dict[str, float]]

    def disco_gain_over(self, other: str, topology: str) -> float:
        """Fractional latency reduction of DISCO vs ``other`` on one fabric."""
        table = self.average[topology]
        return 1.0 - table["disco"] / table[other]


def _spec(scheme: str, workload: str, topology: str,
          algorithm: str, accesses_per_core: int) -> RunSpec:
    return RunSpec(
        scheme=scheme,
        workload=workload,
        algorithm=algorithm,
        accesses_per_core=accesses_per_core,
        topology=topology,
    )


def topology_sweep(
    topologies: Sequence[str] = TOPOLOGIES,
    workloads: Sequence[str] = SWEEP_WORKLOADS,
    algorithm: str = "delta",
    accesses_per_core: int = QUICK_ACCESSES,
    schemes: Sequence[str] = SCHEMES,
    verbose: bool = False,
) -> TopologySweepResult:
    grid = [
        _spec(scheme, workload, topology, algorithm, accesses_per_core)
        for topology in topologies
        for workload in workloads
        for scheme in (REFERENCE, *schemes)
    ]
    run_specs(grid, verbose=verbose)  # parallel fan-out; lookups hit memo
    normalized: Dict[str, Dict[str, Dict[str, float]]] = {}
    average: Dict[str, Dict[str, float]] = {}
    for topology in topologies:
        normalized[topology] = {}
        for workload in workloads:
            raw = {
                scheme: run_spec(
                    _spec(scheme, workload, topology,
                          algorithm, accesses_per_core),
                    verbose=verbose,
                ).avg_miss_latency
                for scheme in (REFERENCE, *schemes)
            }
            normalized[topology][workload] = normalize(raw, REFERENCE)
        average[topology] = {
            scheme: geomean(
                normalized[topology][w][scheme] for w in workloads
            )
            for scheme in (REFERENCE, *schemes)
        }
    return TopologySweepResult(
        algorithm=algorithm,
        topologies=list(topologies),
        workloads=list(workloads),
        normalized=normalized,
        average=average,
    )


def render(result: Optional[TopologySweepResult] = None, **kwargs) -> str:
    result = result or topology_sweep(**kwargs)
    schemes = [REFERENCE, *[s for s in SCHEMES if s in
                            next(iter(result.average.values()))]]
    rows = []
    for topology in result.topologies:
        for workload in result.workloads:
            rows.append(
                [f"{topology}/{workload}"]
                + [result.normalized[topology][workload][s] for s in schemes]
            )
        rows.append(
            [f"{topology} geomean"]
            + [result.average[topology][s] for s in schemes]
        )
    table = format_table(
        ["topology/workload"] + list(schemes),
        rows,
        title=(
            f"Topology sweep: normalized avg data-access latency "
            f"({result.algorithm} compression; per-fabric ideal = 1.0)"
        ),
    )
    summary_lines = []
    for topology in result.topologies:
        gains = ", ".join(
            f"vs {other} {100 * result.disco_gain_over(other, topology):+.1f}%"
            for other in ("cc", "cnc")
            if other in result.average[topology]
        )
        summary_lines.append(f"DISCO on {topology}: {gains}")
    return table + "\n" + "\n".join(summary_lines)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(render(verbose=True))
