"""Cache-line compression algorithms used by DISCO and its comparators.

Every algorithm in this package operates on real cache-line payloads
(``bytes`` objects, typically 64 bytes) and reports *exact* compressed sizes
in bits, including all metadata (prefixes, base-select bits, headers).  All
algorithms are lossless: ``decompress(compress(line)) == line`` always holds
and is enforced by the test suite.

The algorithms:

========================  =====================================================
:class:`DeltaCompressor`   The paper's in-router delta compressor (Fig. 4).
:class:`BDICompressor`     Base-Delta-Immediate (Pekhimenko et al., PACT'12).
:class:`FPCCompressor`     Frequent Pattern Compression (Alameldeen, ISCA'04).
:class:`SFPCCompressor`    Simplified FPC (Table 1 of the paper).
:class:`CPackCompressor`   C-Pack (Chen et al., TVLSI'10).
:class:`SC2Compressor`     Statistical Huffman compression (SC², ISCA'14).
:class:`FVCCompressor`     Frequent-value compression (Jin/Zhou NoC work).
:class:`ZeroContentCompressor`  Zero-bit elimination (Das et al., HPCA'08).
========================  =====================================================

Use :func:`repro.compression.registry.get_algorithm` to obtain an algorithm
together with its Table 1 timing model.
"""

from repro.compression.base import (
    CompressedLine,
    CompressionAlgorithm,
    CompressionTiming,
    CachedCompressor,
)
from repro.compression.delta import DeltaCompressor, SeparateDeltaSession
from repro.compression.bdi import BDICompressor
from repro.compression.fpc import FPCCompressor, SFPCCompressor
from repro.compression.cpack import CPackCompressor
from repro.compression.sc2 import SC2Compressor
from repro.compression.fvc import FVCCompressor
from repro.compression.zerocontent import ZeroContentCompressor
from repro.compression.registry import (
    available_algorithms,
    get_algorithm,
    get_timing,
)

__all__ = [
    "CompressedLine",
    "CompressionAlgorithm",
    "CompressionTiming",
    "CachedCompressor",
    "DeltaCompressor",
    "SeparateDeltaSession",
    "BDICompressor",
    "FPCCompressor",
    "SFPCCompressor",
    "CPackCompressor",
    "SC2Compressor",
    "FVCCompressor",
    "ZeroContentCompressor",
    "available_algorithms",
    "get_algorithm",
    "get_timing",
]
