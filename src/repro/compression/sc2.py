"""SC² — statistical (Huffman) cache compression (Arelakis & Stenström,
ISCA 2014, ref [3]).

SC² samples the value stream, builds a canonical Huffman code over frequent
32-bit words, and encodes lines as bit-streams; rare words are escape-coded.
It achieves the highest ratio of the schemes in the paper's Table 1 (~2.4x)
at the price of the longest latencies (6-cycle compression, 8/14-cycle
decompression) — which is exactly why the paper reports DISCO helps SC² the
most (Fig. 6): the long latency is what DISCO hides.

The implementation here is a genuine bit-level canonical Huffman coder:
``compress`` produces a packed integer bit-stream and ``decompress`` parses
it back with the code table, so round-trip tests exercise a real decoder.
A built-in default codebook (zeros, small integers, common float prefixes)
makes the compressor usable before :meth:`SC2Compressor.train` is called;
training on workload lines replaces it, mirroring SC²'s offline sampling
phase.

Symbols are 16-bit half-words rather than full words: SC² uses
variable-sized value symbols precisely because sub-word fragments (zero
halves, shared float exponents, pointer upper halves) repeat far more often
than whole words, and that is what buys its 2.4x average ratio.
"""

from __future__ import annotations

import heapq
import itertools
from collections import Counter
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.compression.base import CompressionAlgorithm

#: Escape marker kept distinct from any half-word value.
_ESCAPE = -1

#: Symbol width in bytes (16-bit half-words; see module docstring).
_SYM_BYTES = 2
_SYM_BITS = 8 * _SYM_BYTES


def _symbols(line: bytes):
    """Split a line into little-endian unsigned 16-bit half-words."""
    return [
        int.from_bytes(line[i : i + _SYM_BYTES], "little")
        for i in range(0, len(line), _SYM_BYTES)
    ]


def _from_symbols(symbols) -> bytes:
    return b"".join(s.to_bytes(_SYM_BYTES, "little") for s in symbols)

#: Cap on distinct codebook symbols (the hardware uses a bounded table).
_DEFAULT_CODEBOOK_SIZE = 1024

#: Decoder sanity cap on code length.
_MAX_CODE_LEN = 48


def _default_frequencies() -> Dict[int, int]:
    """A plausible prior over cache-line half-words, used before training.

    Zero dominates real workloads by a wide margin; small integers,
    all-ones and byte-repeat patterns follow.  The exact counts only shape
    code lengths, not correctness.
    """
    freqs: Dict[int, int] = {0: 1 << 20, 0xFFFF: 1 << 12, 1: 1 << 14}
    for value in range(2, 256):
        freqs[value] = (1 << 13) // value
    for value in (0x0101, 0x3F80, 0x4000, 0xBF80):
        freqs[value] = 1 << 8
    return freqs


def _huffman_code_lengths(freqs: Dict[int, int]) -> Dict[int, int]:
    """Code length per symbol via the standard heap construction.

    The escape symbol is always present so unseen words stay encodable.
    """
    heap: List[Tuple[int, int, Any]] = []
    counter = itertools.count()
    for symbol, freq in freqs.items():
        heap.append((freq, next(counter), (symbol,)))
    heap.append((1, next(counter), (_ESCAPE,)))
    heapq.heapify(heap)
    depths: Dict[int, int] = {symbol: 0 for symbol in freqs}
    depths[_ESCAPE] = 0
    if len(heap) == 1:
        only = heap[0][2][0]
        return {only: 1}
    while len(heap) > 1:
        f1, _, s1 = heapq.heappop(heap)
        f2, _, s2 = heapq.heappop(heap)
        merged = s1 + s2
        for symbol in merged:
            depths[symbol] += 1
        heapq.heappush(heap, (f1 + f2, next(counter), merged))
    return depths


def _canonical_codes(lengths: Dict[int, int]) -> Dict[int, Tuple[int, int]]:
    """Assign canonical codes ``symbol -> (code, length)``."""
    ordered = sorted(lengths.items(), key=lambda kv: (kv[1], kv[0]))
    codes: Dict[int, Tuple[int, int]] = {}
    code = 0
    prev_len = 0
    for symbol, length in ordered:
        code <<= length - prev_len
        codes[symbol] = (code, length)
        code += 1
        prev_len = length
    return codes


class _BitWriter:
    """Accumulates bits MSB-first into one big integer."""

    def __init__(self) -> None:
        self.value = 0
        self.bits = 0

    def write(self, code: int, length: int) -> None:
        self.value = (self.value << length) | code
        self.bits += length


class _BitReader:
    """Reads bits MSB-first from a packed integer."""

    def __init__(self, value: int, bits: int) -> None:
        self.value = value
        self.bits = bits
        self.pos = 0

    def read(self, length: int) -> int:
        if self.pos + length > self.bits:
            raise ValueError("SC2 bit-stream underrun")
        shift = self.bits - self.pos - length
        self.pos += length
        return (self.value >> shift) & ((1 << length) - 1)


class SC2Compressor(CompressionAlgorithm):
    """Canonical-Huffman word compressor with an escape symbol."""

    name = "sc2"

    def __init__(
        self,
        line_size: int = 64,
        codebook_size: int = _DEFAULT_CODEBOOK_SIZE,
    ):
        super().__init__(line_size)
        if codebook_size < 2:
            raise ValueError("codebook_size must be at least 2")
        self.codebook_size = codebook_size
        self._generation = 0
        self._install(_default_frequencies())

    # -- training ----------------------------------------------------------
    def train(self, lines: Iterable[bytes]) -> int:
        """Rebuild the codebook from sample lines; returns symbol count.

        Mirrors SC²'s sampling phase: word frequencies are gathered from the
        provided lines and the ``codebook_size`` most frequent words get
        Huffman codes.  Lines compressed with an older codebook can no
        longer be decompressed by this instance (the generation is checked),
        just as reconfiguring the hardware table would require recompression.
        """
        counts: Counter = Counter()
        for line in lines:
            counts.update(_symbols(bytes(line)))
        if not counts:
            raise ValueError("cannot train SC2 on an empty sample")
        top = dict(counts.most_common(self.codebook_size))
        self._install(top)
        return len(top)

    def _install(self, freqs: Dict[int, int]) -> None:
        lengths = _huffman_code_lengths(freqs)
        self._codes = _canonical_codes(lengths)
        self._decode_table = {
            (code, length): symbol
            for symbol, (code, length) in self._codes.items()
        }
        self._generation += 1

    # -- encoding ----------------------------------------------------------
    def _encode(self, line: bytes) -> Tuple[int, Any]:
        writer = _BitWriter()
        escape_code, escape_len = self._codes[_ESCAPE]
        for symbol in _symbols(line):
            entry = self._codes.get(symbol)
            if entry is None:
                writer.write(escape_code, escape_len)
                writer.write(symbol, _SYM_BITS)
            else:
                writer.write(entry[0], entry[1])
        return writer.bits, (self._generation, writer.value, writer.bits)

    def _decode(self, payload: Any) -> bytes:
        generation, value, bits = payload
        if generation != self._generation:
            raise ValueError(
                "SC2 codebook generation mismatch: data was compressed "
                "with a different training state"
            )
        reader = _BitReader(value, bits)
        symbols: List[int] = []
        n_symbols = self.line_size // _SYM_BYTES
        while len(symbols) < n_symbols:
            code, length = 0, 0
            symbol: Optional[int] = None
            while symbol is None:
                code = (code << 1) | reader.read(1)
                length += 1
                if length > _MAX_CODE_LEN:
                    raise ValueError("SC2 code length overflow")
                symbol = self._decode_table.get((code, length))
            if symbol == _ESCAPE:
                symbols.append(reader.read(_SYM_BITS))
            else:
                symbols.append(symbol)
        return _from_symbols(symbols)
