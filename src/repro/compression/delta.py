"""The DISCO delta compressor (paper §3.2 step-3, Fig. 4).

The engine views a cache line as a sequence of *flit-sized chunks* (8 bytes
by default, matching the 64-bit flits of the evaluated NoC).  Two bases are
maintained: the **first chunk** of the packet and the **zero flit**.  Every
chunk is compared against both bases and encoded as the smaller difference;
a compressed packet is then ``base + per-chunk (select bit, delta)`` plus a
small header identifying the geometry, exactly the ``1BF + 7ΔF`` form the
paper uses for 64-byte data packets.

Several compressor units with different geometries (base width × delta
width) run in parallel and a selection stage keeps the smallest encoding
(Fig. 4a, "compressor selection logic").  Degenerate lines (all-zero,
repeated chunk) get dedicated tiny encodings.

:class:`SeparateDeltaSession` implements the paper's *separate compression*
for wormhole flow control (§3.3-A): flits of a packet that arrive in
different cycles are compressed incrementally against persistent base
registers, and the partial encodings concatenate without zero bubbles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.compression.base import (
    CompressionAlgorithm,
    CompressedLine,
    chunks,
    from_chunks,
    signed_fits,
    to_signed,
)

#: Header bits identifying the geometry / special encoding (4 bits covers
#: the unit table plus the zero/repeat special cases).
_HEADER_BITS = 4

#: (base_width_bytes, delta_width_bytes) geometries tried in parallel.
_DEFAULT_UNITS: Tuple[Tuple[int, int], ...] = (
    (8, 1),
    (8, 2),
    (8, 4),
    (4, 1),
    (4, 2),
)


@dataclass(frozen=True)
class _DeltaPayload:
    """Decoded form of a whole-line delta encoding."""

    base_width: int
    delta_width: int
    base: int
    entries: Tuple[Tuple[int, int], ...]  # (base_select, signed delta)


class DeltaCompressor(CompressionAlgorithm):
    """Whole-line delta compression with dual bases (first chunk + zero)."""

    name = "delta"

    def __init__(
        self,
        line_size: int = 64,
        units: Sequence[Tuple[int, int]] = _DEFAULT_UNITS,
    ):
        super().__init__(line_size)
        for base_w, delta_w in units:
            if line_size % base_w:
                raise ValueError(
                    f"line_size {line_size} not divisible by base width {base_w}"
                )
            if delta_w >= base_w:
                raise ValueError("delta width must be narrower than base width")
        self.units = tuple(units)

    # -- encoding ----------------------------------------------------------
    def _encode(self, line: bytes) -> Tuple[int, Any]:
        special = self._encode_special(line)
        best_bits, best_payload = special if special else (1 << 62, None)
        for base_w, delta_w in self.units:
            encoded = self._encode_unit(line, base_w, delta_w)
            if encoded is not None and encoded[0] < best_bits:
                best_bits, best_payload = encoded
        if best_payload is None:
            # No unit applies: report raw size so compress() stores raw.
            return 8 * len(line), line
        return best_bits, best_payload

    def _encode_special(self, line: bytes) -> Optional[Tuple[int, Any]]:
        """All-zero and repeated-chunk lines collapse to a header (+value)."""
        if line == b"\x00" * len(line):
            return _HEADER_BITS, ("zero",)
        first = line[:8]
        if line == first * (len(line) // 8):
            return _HEADER_BITS + 64, ("repeat", int.from_bytes(first, "little"))
        return None

    def _encode_unit(
        self, line: bytes, base_w: int, delta_w: int
    ) -> Optional[Tuple[int, Any]]:
        values = chunks(line, base_w)
        base = values[0]
        entries: List[Tuple[int, int]] = []
        for value in values[1:]:
            d_base = value - base
            d_zero = to_signed(value, base_w)
            if signed_fits(d_base, delta_w) and (
                not signed_fits(d_zero, delta_w) or abs(d_base) <= abs(d_zero)
            ):
                entries.append((0, d_base))
            elif signed_fits(d_zero, delta_w):
                entries.append((1, d_zero))
            else:
                return None
        size_bits = (
            _HEADER_BITS
            + 8 * base_w
            + len(entries) * (1 + 8 * delta_w)
        )
        payload = _DeltaPayload(base_w, delta_w, base, tuple(entries))
        return size_bits, payload

    # -- decoding ----------------------------------------------------------
    def _decode(self, payload: Any) -> bytes:
        if isinstance(payload, tuple):
            if payload[0] == "zero":
                return b"\x00" * self.line_size
            if payload[0] == "repeat":
                return payload[1].to_bytes(8, "little") * (self.line_size // 8)
            raise ValueError(f"unknown special delta payload {payload[0]!r}")
        assert isinstance(payload, _DeltaPayload)
        mask = (1 << (8 * payload.base_width)) - 1
        values = [payload.base]
        for select, delta in payload.entries:
            reference = 0 if select else payload.base
            values.append((reference + delta) & mask)
        return from_chunks(values, payload.base_width)


class SeparateDeltaSession:
    """Incremental (per-flit) delta compression for wormhole routing.

    A packet separated across routers is compressed chunk-by-chunk as its
    flits arrive (§3.3-A).  The geometry is fixed up-front (the streaming
    engine cannot retroactively change delta width), so every chunk carries
    a 2-bit tag selecting ``delta vs. first-chunk base``, ``delta vs. zero``
    or ``raw escape``; the first chunk establishes the base register, which
    persists in the engine between partial feeds.

    The paper notes separate compression "sacrifices the compression rate";
    that shows up here as the extra tag/escape bits relative to
    :class:`DeltaCompressor` on the same line.
    """

    TAG_BITS = 2
    TAG_BASE = 0
    TAG_ZERO = 1
    TAG_RAW = 2

    def __init__(self, chunk_width: int = 8, delta_width: int = 1):
        if delta_width >= chunk_width:
            raise ValueError("delta width must be narrower than chunk width")
        self.chunk_width = chunk_width
        self.delta_width = delta_width
        self.base: Optional[int] = None
        self.entries: List[Tuple[int, int]] = []
        self.size_bits = 0
        self.fed_bytes = 0

    def feed(self, data: bytes) -> int:
        """Compress the next ``data`` bytes; returns bits added.

        ``data`` must be a whole number of chunks (flits are chunk-sized).
        """
        if len(data) % self.chunk_width:
            raise ValueError("partial feed must be whole chunks")
        added = 0
        for value in chunks(data, self.chunk_width):
            added += self._feed_chunk(value)
        self.fed_bytes += len(data)
        self.size_bits += added
        return added

    def _feed_chunk(self, value: int) -> int:
        if self.base is None:
            self.base = value
            self.entries.append((self.TAG_RAW, value))
            return self.TAG_BITS + 8 * self.chunk_width
        d_base = value - self.base
        d_zero = to_signed(value, self.chunk_width)
        if signed_fits(d_base, self.delta_width) and (
            not signed_fits(d_zero, self.delta_width)
            or abs(d_base) <= abs(d_zero)
        ):
            self.entries.append((self.TAG_BASE, d_base))
            return self.TAG_BITS + 8 * self.delta_width
        if signed_fits(d_zero, self.delta_width):
            self.entries.append((self.TAG_ZERO, d_zero))
            return self.TAG_BITS + 8 * self.delta_width
        self.entries.append((self.TAG_RAW, value))
        return self.TAG_BITS + 8 * self.chunk_width

    def result(self) -> CompressedLine:
        """Finalize and return the encoding of everything fed so far."""
        raw_bits = 8 * self.fed_bytes
        compressible = self.size_bits + 1 < raw_bits
        return CompressedLine(
            algorithm="delta-separate",
            original_size_bits=raw_bits,
            size_bits=(self.size_bits + 1) if compressible else raw_bits + 1,
            payload=tuple(self.entries) if compressible else self._raw(),
            compressible=compressible,
        )

    def _raw(self) -> bytes:
        return self.reconstruct()

    def reconstruct(self) -> bytes:
        """Decode everything fed so far (used for round-trip checks)."""
        mask = (1 << (8 * self.chunk_width)) - 1
        values = []
        for tag, field in self.entries:
            if tag == self.TAG_RAW:
                values.append(field & mask)
            elif tag == self.TAG_BASE:
                assert self.base is not None
                values.append((self.base + field) & mask)
            else:
                values.append(field & mask)
        return from_chunks(values, self.chunk_width)
