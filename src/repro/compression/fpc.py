"""Frequent Pattern Compression (Alameldeen & Wood, ISCA 2004, ref [2]).

FPC scans a line as 32-bit words and encodes each with a 3-bit prefix
selecting one of eight static patterns (zero runs, narrow sign-extended
values, half-zero words, repeated bytes, or raw).  ``SFPC`` is the
simplified variant the paper's Table 1 lists with 4-cycle decompression and
a 1.33 average ratio: a 2-bit prefix over a reduced pattern set.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.compression.base import (
    CompressionAlgorithm,
    from_words32,
    signed_fits,
    to_signed,
    words32,
)

# 3-bit FPC prefixes (ISCA'04 Table 1).
_ZERO_RUN = 0  # 3-bit run length, 1..8 zero words
_SIGNED_4BIT = 1
_SIGNED_1BYTE = 2
_SIGNED_HALF = 3
_HALF_PADDED = 4  # non-zero halfword + zero halfword
_TWO_HALF_BYTES = 5  # two halfwords, each a sign-extended byte
_REPEATED_BYTES = 6
_UNCOMPRESSED = 7

_PREFIX_BITS = 3
_DATA_BITS = {
    _ZERO_RUN: 3,
    _SIGNED_4BIT: 4,
    _SIGNED_1BYTE: 8,
    _SIGNED_HALF: 16,
    _HALF_PADDED: 16,
    _TWO_HALF_BYTES: 16,
    _REPEATED_BYTES: 8,
    _UNCOMPRESSED: 32,
}
_MAX_ZERO_RUN = 8


def _classify(word: int) -> Tuple[int, Any]:
    """Pick the smallest FPC pattern for one non-run 32-bit word."""
    signed = to_signed(word, 4)
    if -8 <= signed < 8:
        return _SIGNED_4BIT, signed
    if signed_fits(signed, 1):
        return _SIGNED_1BYTE, signed
    if signed_fits(signed, 2):
        return _SIGNED_HALF, signed
    low, high = word & 0xFFFF, word >> 16
    if low == 0:
        return _HALF_PADDED, high
    lo_s, hi_s = to_signed(low, 2), to_signed(high, 2)
    if signed_fits(lo_s, 1) and signed_fits(hi_s, 1):
        return _TWO_HALF_BYTES, (lo_s, hi_s)
    b = word & 0xFF
    if word == b * 0x01010101:
        return _REPEATED_BYTES, b
    return _UNCOMPRESSED, word


class FPCCompressor(CompressionAlgorithm):
    """Frequent Pattern Compression with zero-run collapsing."""

    name = "fpc"

    def _encode(self, line: bytes) -> Tuple[int, Any]:
        words = words32(line)
        entries: List[Tuple[int, Any]] = []
        size_bits = 0
        i = 0
        while i < len(words):
            if words[i] == 0:
                run = 1
                while (
                    i + run < len(words)
                    and words[i + run] == 0
                    and run < _MAX_ZERO_RUN
                ):
                    run += 1
                entries.append((_ZERO_RUN, run))
                size_bits += _PREFIX_BITS + _DATA_BITS[_ZERO_RUN]
                i += run
                continue
            pattern, data = _classify(words[i])
            entries.append((pattern, data))
            size_bits += _PREFIX_BITS + _DATA_BITS[pattern]
            i += 1
        return size_bits, tuple(entries)

    def _decode(self, payload: Any) -> bytes:
        words: List[int] = []
        for pattern, data in payload:
            if pattern == _ZERO_RUN:
                words.extend([0] * data)
            elif pattern in (_SIGNED_4BIT, _SIGNED_1BYTE, _SIGNED_HALF):
                words.append(data & 0xFFFFFFFF)
            elif pattern == _HALF_PADDED:
                words.append((data << 16) & 0xFFFFFFFF)
            elif pattern == _TWO_HALF_BYTES:
                lo, hi = data
                words.append(((hi & 0xFFFF) << 16) | (lo & 0xFFFF))
            elif pattern == _REPEATED_BYTES:
                words.append(data * 0x01010101)
            elif pattern == _UNCOMPRESSED:
                words.append(data)
            else:  # pragma: no cover - encoder never emits other patterns
                raise ValueError(f"bad FPC pattern {pattern}")
        return from_words32(words)


class SFPCCompressor(CompressionAlgorithm):
    """Simplified FPC: 2-bit prefixes, reduced pattern set (Table 1 "SFPC").

    Patterns: zero word, sign-extended byte, raw.  The shallower decode
    tree is why the paper credits it with 4-cycle decompression at a lower
    (~1.33) average ratio than full FPC.
    """

    name = "sfpc"

    _ZERO, _BYTE, _RAW = range(3)
    _PREFIX = 2
    _BITS = {0: 0, 1: 8, 2: 32}

    def _encode(self, line: bytes) -> Tuple[int, Any]:
        entries: List[Tuple[int, int]] = []
        size_bits = 0
        for word in words32(line):
            signed = to_signed(word, 4)
            if word == 0:
                entry = (self._ZERO, 0)
            elif signed_fits(signed, 1):
                entry = (self._BYTE, signed)
            else:
                entry = (self._RAW, word)
            entries.append(entry)
            size_bits += self._PREFIX + self._BITS[entry[0]]
        return size_bits, tuple(entries)

    def _decode(self, payload: Any) -> bytes:
        words = []
        for pattern, data in payload:
            if pattern == self._ZERO:
                words.append(0)
            else:
                words.append(data & 0xFFFFFFFF)
        return from_words32(words)
