"""Base-Delta-Immediate compression (Pekhimenko et al., PACT 2012, ref [5]).

BDI represents a cache line as one *base* value plus an array of narrow
deltas, with a second implicit base of zero ("immediate") selected per chunk
by a bitmask.  Eight geometries (base width x delta width) are attempted in
parallel and the smallest valid encoding wins; all-zero and repeated-value
lines have dedicated encodings.  This is the algorithm family the DISCO
paper's own delta engine is derived from, and the source of the Table 1
"BDI" row (1-cycle compression, 1-5 cycle decompression, ratio ~1.57).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.compression.base import (
    CompressionAlgorithm,
    chunks,
    from_chunks,
    signed_fits,
    to_signed,
)

#: 4-bit encoding selector, as in the PACT'12 paper.
_HEADER_BITS = 4

#: (base_width, delta_width) geometries, PACT'12 Table 2.
_GEOMETRIES: Tuple[Tuple[int, int], ...] = (
    (8, 1),
    (8, 2),
    (8, 4),
    (4, 1),
    (4, 2),
    (2, 1),
)


@dataclass(frozen=True)
class _BDIPayload:
    base_width: int
    delta_width: int
    base: int
    mask: Tuple[int, ...]  # per chunk: 1 -> delta vs base, 0 -> vs zero
    deltas: Tuple[int, ...]


class BDICompressor(CompressionAlgorithm):
    """Full Base-Delta-Immediate with dual (arbitrary + zero) bases."""

    name = "bdi"

    def _encode(self, line: bytes) -> Tuple[int, Any]:
        special = self._encode_special(line)
        best_bits, best_payload = special if special else (1 << 62, None)
        for base_w, delta_w in _GEOMETRIES:
            if len(line) % base_w:
                continue
            encoded = self._encode_geometry(line, base_w, delta_w)
            if encoded is not None and encoded[0] < best_bits:
                best_bits, best_payload = encoded
        if best_payload is None:
            return 8 * len(line), line
        return best_bits, best_payload

    def _encode_special(self, line: bytes) -> Optional[Tuple[int, Any]]:
        if line == b"\x00" * len(line):
            return _HEADER_BITS, ("zero",)
        first = line[:8]
        if line == first * (len(line) // 8):
            return _HEADER_BITS + 64, ("repeat", int.from_bytes(first, "little"))
        return None

    def _encode_geometry(
        self, line: bytes, base_w: int, delta_w: int
    ) -> Optional[Tuple[int, Any]]:
        values = chunks(line, base_w)
        # Base = first chunk that is not narrow enough to ride the zero base.
        base: Optional[int] = None
        for value in values:
            if not signed_fits(to_signed(value, base_w), delta_w):
                base = value
                break
        if base is None:
            base = 0
        mask: List[int] = []
        deltas: List[int] = []
        for value in values:
            d_zero = to_signed(value, base_w)
            d_base = value - base
            if signed_fits(d_zero, delta_w):
                mask.append(0)
                deltas.append(d_zero)
            elif signed_fits(d_base, delta_w):
                mask.append(1)
                deltas.append(d_base)
            else:
                return None
        size_bits = (
            _HEADER_BITS
            + len(values)  # base-select bitmask
            + 8 * base_w
            + 8 * delta_w * len(values)
        )
        payload = _BDIPayload(base_w, delta_w, base, tuple(mask), tuple(deltas))
        return size_bits, payload

    def _decode(self, payload: Any) -> bytes:
        if isinstance(payload, tuple):
            if payload[0] == "zero":
                return b"\x00" * self.line_size
            if payload[0] == "repeat":
                return payload[1].to_bytes(8, "little") * (self.line_size // 8)
            raise ValueError(f"unknown special BDI payload {payload[0]!r}")
        assert isinstance(payload, _BDIPayload)
        full = (1 << (8 * payload.base_width)) - 1
        values = []
        for select, delta in zip(payload.mask, payload.deltas):
            reference = payload.base if select else 0
            values.append((reference + delta) & full)
        return from_chunks(values, payload.base_width)
