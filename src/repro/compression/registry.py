"""Algorithm registry mapping names to compressors and Table 1 timings.

The DISCO evaluation (§4.1) plugs "the same compression algorithm with
identical compression rate, speed and overhead" into CC, CNC and DISCO; the
registry is where that pairing of *algorithm implementation* and *latency
model* lives.  Latencies follow the paper:

- ``delta``: 1-cycle compression / 3-cycle decompression (Table 2, "DISCO"
  row, citing BDI [5]);
- ``fpc``: 5-cycle decompression (Table 1) and a matching 5-cycle
  compression pipeline;
- ``sc2``: 6-cycle compression, 8-cycle decompression (Table 1 lists 8/14
  for the two SC² variants; the faster variant is evaluated);
- others per Table 1 where given, with conventional published values
  filling the cells Table 1 leaves blank.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.compression.base import (
    CachedCompressor,
    CompressionAlgorithm,
    CompressionTiming,
)
from repro.compression.bdi import BDICompressor
from repro.compression.cpack import CPackCompressor
from repro.compression.delta import DeltaCompressor
from repro.compression.fpc import FPCCompressor, SFPCCompressor
from repro.compression.fvc import FVCCompressor
from repro.compression.sc2 import SC2Compressor
from repro.compression.zerocontent import ZeroContentCompressor

_FACTORIES: Dict[str, Callable[[int], CompressionAlgorithm]] = {
    "delta": DeltaCompressor,
    "bdi": BDICompressor,
    "fpc": FPCCompressor,
    "sfpc": SFPCCompressor,
    "cpack": CPackCompressor,
    "sc2": SC2Compressor,
    "fvc": FVCCompressor,
    "zero": ZeroContentCompressor,
}

#: (compression cycles, decompression cycles, hardware overhead fraction).
_TIMINGS: Dict[str, CompressionTiming] = {
    "delta": CompressionTiming(1, 3, 0.023),
    "bdi": CompressionTiming(1, 3, 0.023),
    "fpc": CompressionTiming(5, 5, 0.08),
    "sfpc": CompressionTiming(4, 4, 0.08),
    "cpack": CompressionTiming(8, 8, 0.067),
    "sc2": CompressionTiming(6, 8, 0.027),
    "fvc": CompressionTiming(2, 2, 0.02),
    "zero": CompressionTiming(1, 1, 0.01),
}


def available_algorithms() -> List[str]:
    """Names accepted by :func:`get_algorithm`, in stable order."""
    return sorted(_FACTORIES)


def get_algorithm(
    name: str,
    line_size: int = 64,
    cached: bool = True,
    cache_capacity: int = 16384,
) -> CompressionAlgorithm:
    """Instantiate a compression algorithm by registry name.

    ``cached=True`` wraps the algorithm in a :class:`CachedCompressor`
    (recommended for simulation; identical results, much faster).
    """
    factory = _FACTORIES.get(name)
    if factory is None:
        raise KeyError(
            f"unknown compression algorithm {name!r}; "
            f"choose from {available_algorithms()}"
        )
    algorithm = factory(line_size)
    if cached:
        # Stateless algorithms share one process-wide encoding memo (the
        # registry always builds them with default parameters, so the
        # key fully determines the encoding).  Trainable ones (sc2, fvc)
        # keep a private cache: training changes their encodings.
        shared_key = (
            None if hasattr(algorithm, "train") else (name, line_size)
        )
        return CachedCompressor(
            algorithm, capacity=cache_capacity, shared_key=shared_key
        )
    return algorithm


def get_timing(name: str) -> CompressionTiming:
    """Latency/overhead parameters (paper Table 1) for an algorithm."""
    timing = _TIMINGS.get(name)
    if timing is None:
        raise KeyError(f"no timing model for algorithm {name!r}")
    return timing
