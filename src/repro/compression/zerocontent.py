"""Zero-content packet compression (Das et al., HPCA 2008, ref [10]).

Das et al. compress network messages "based on zero bits in a word": each
32-bit word carries a presence flag and is omitted entirely when zero, plus
a one-bit fast path for fully-zero lines.  It is the cheapest scheme in the
comparison set and a useful lower bound on achievable ratio.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.compression.base import (
    CompressionAlgorithm,
    from_words32,
    words32,
)


class ZeroContentCompressor(CompressionAlgorithm):
    """Per-word zero elimination with an all-zero-line fast path."""

    name = "zero"

    def _encode(self, line: bytes) -> Tuple[int, Any]:
        words = words32(line)
        if all(w == 0 for w in words):
            return 1, ("allzero",)
        size_bits = 1  # the not-all-zero flag
        entries: List[int] = []
        for word in words:
            size_bits += 1
            if word != 0:
                size_bits += 32
            entries.append(word)
        return size_bits, ("words", tuple(entries))

    def _decode(self, payload: Any) -> bytes:
        if payload[0] == "allzero":
            return b"\x00" * self.line_size
        return from_words32(list(payload[1]))
