"""C-Pack cache compression (Chen et al., IEEE TVLSI 2010, ref [4]).

C-Pack combines static pattern codes with a small dictionary of recently
seen 32-bit words.  Each word is encoded as one of:

=========  ==========================================  ==========
code       meaning                                     total bits
=========  ==========================================  ==========
``00``     zzzz — all-zero word                        2
``01``     xxxx — uncompressed word                    34
``10``     mmmm — full dictionary match                6
``1100``   mmxx — upper 2 bytes match a dict entry     24
``1101``   zzzx — zero word except the low byte        12
``1110``   mmmx — upper 3 bytes match a dict entry     16
=========  ==========================================  ==========

The 16-entry dictionary is filled FIFO with every word that was not a full
match; decompression replays the identical dictionary updates, so the
encoding is self-contained.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.compression.base import (
    CompressionAlgorithm,
    from_words32,
    words32,
)

_DICT_SIZE = 16

_ZZZZ = "zzzz"
_XXXX = "xxxx"
_MMMM = "mmmm"
_MMXX = "mmxx"
_ZZZX = "zzzx"
_MMMX = "mmmx"

_CODE_BITS = {
    _ZZZZ: 2,
    _XXXX: 2 + 32,
    _MMMM: 2 + 4,
    _MMXX: 4 + 4 + 16,
    _ZZZX: 4 + 8,
    _MMMX: 4 + 4 + 8,
}


class _Dictionary:
    """FIFO dictionary shared by the encoder and decoder replay."""

    def __init__(self) -> None:
        self.entries: List[int] = []

    def push(self, word: int) -> None:
        self.entries.append(word)
        if len(self.entries) > _DICT_SIZE:
            self.entries.pop(0)

    def full_match(self, word: int) -> int:
        """Index of an exact match, or -1."""
        for idx in range(len(self.entries) - 1, -1, -1):
            if self.entries[idx] == word:
                return idx
        return -1

    def partial_match(self, word: int, match_bytes: int) -> int:
        """Index whose top ``match_bytes`` bytes equal ``word``'s, or -1."""
        shift = 8 * (4 - match_bytes)
        target = word >> shift
        for idx in range(len(self.entries) - 1, -1, -1):
            if self.entries[idx] >> shift == target:
                return idx
        return -1


class CPackCompressor(CompressionAlgorithm):
    """Pattern + dictionary compression of 32-bit words."""

    name = "cpack"

    def _encode(self, line: bytes) -> Tuple[int, Any]:
        dictionary = _Dictionary()
        entries: List[Tuple[str, Any]] = []
        size_bits = 0
        for word in words32(line):
            code, data = self._encode_word(word, dictionary)
            entries.append((code, data))
            size_bits += _CODE_BITS[code]
        return size_bits, tuple(entries)

    def _encode_word(self, word: int, dictionary: _Dictionary) -> Tuple[str, Any]:
        if word == 0:
            return _ZZZZ, None
        if word <= 0xFF:
            return _ZZZX, word
        idx = dictionary.full_match(word)
        if idx >= 0:
            return _MMMM, idx
        idx = dictionary.partial_match(word, 3)
        if idx >= 0:
            low = word & 0xFF
            dictionary.push(word)
            return _MMMX, (idx, low)
        idx = dictionary.partial_match(word, 2)
        if idx >= 0:
            low = word & 0xFFFF
            dictionary.push(word)
            return _MMXX, (idx, low)
        dictionary.push(word)
        return _XXXX, word

    def _decode(self, payload: Any) -> bytes:
        dictionary = _Dictionary()
        words: List[int] = []
        for code, data in payload:
            if code == _ZZZZ:
                words.append(0)
            elif code == _ZZZX:
                words.append(data)
            elif code == _MMMM:
                words.append(dictionary.entries[data])
            elif code == _MMMX:
                idx, low = data
                word = (dictionary.entries[idx] & 0xFFFFFF00) | low
                dictionary.push(word)
                words.append(word)
            elif code == _MMXX:
                idx, low = data
                word = (dictionary.entries[idx] & 0xFFFF0000) | low
                dictionary.push(word)
                words.append(word)
            elif code == _XXXX:
                dictionary.push(data)
                words.append(data)
            else:  # pragma: no cover
                raise ValueError(f"bad C-Pack code {code!r}")
        return from_words32(words)
