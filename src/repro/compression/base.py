"""Common interfaces for cache-line compression algorithms.

The DISCO paper (§3.2) stresses that DISCO "does not depend on a specific
compression method or algorithm"; the router plugs in any engine that maps a
cache line to a smaller encoding.  This module defines that plug-in contract.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Tuple


@dataclass(frozen=True)
class CompressionTiming:
    """Latency/overhead parameters of a compression scheme (paper Table 1).

    Attributes
    ----------
    compression_cycles:
        Cycles a compressor engine is busy encoding one cache line.
    decompression_cycles:
        Cycles to decode one compressed line.
    hardware_overhead:
        Fractional area overhead relative to the structure the compressor is
        attached to, as reported in Table 1 (used by the area model).
    """

    compression_cycles: int
    decompression_cycles: int
    hardware_overhead: float = 0.0

    def __post_init__(self) -> None:
        if self.compression_cycles < 0 or self.decompression_cycles < 0:
            raise ValueError("compression timings must be non-negative")


@dataclass(frozen=True)
class CompressedLine:
    """The result of compressing one cache line.

    ``size_bits`` is the exact encoded size including every metadata bit
    (prefixes, headers, base-select bits).  ``payload`` is an opaque,
    algorithm-specific representation sufficient to reconstruct the line;
    the original line is deliberately *not* stored so that round-trip tests
    prove the encoding is really lossless.
    """

    algorithm: str
    original_size_bits: int
    size_bits: int
    payload: Any
    compressible: bool

    @property
    def size_bytes(self) -> int:
        """Encoded size rounded up to whole bytes (segment granularity)."""
        return (self.size_bits + 7) // 8

    @property
    def ratio(self) -> float:
        """Compression ratio ``original / compressed`` (>1 is good)."""
        return self.original_size_bits / self.size_bits

    def flit_count(self, flit_bytes: int) -> int:
        """Number of payload flits needed to carry this encoding."""
        if flit_bytes <= 0:
            raise ValueError("flit_bytes must be positive")
        return max(1, (self.size_bytes + flit_bytes - 1) // flit_bytes)


class CompressionAlgorithm(ABC):
    """Abstract lossless cache-line compressor.

    Subclasses implement :meth:`_encode` / :meth:`_decode`; the public
    :meth:`compress` wraps them with the incompressible-line fallback: if the
    encoding would be at least as large as the raw line, the line is stored
    raw with a one-bit "uncompressed" tag, which is what the hardware
    schemes in the paper do as well.
    """

    #: Registry name of the algorithm; subclasses must override.
    name: str = "abstract"

    def __init__(self, line_size: int = 64):
        if line_size <= 0 or line_size % 4:
            raise ValueError("line_size must be a positive multiple of 4")
        self.line_size = line_size

    # -- subclass contract -------------------------------------------------
    @abstractmethod
    def _encode(self, line: bytes) -> Tuple[int, Any]:
        """Return ``(size_bits, payload)`` for a compressed encoding."""

    @abstractmethod
    def _decode(self, payload: Any) -> bytes:
        """Reconstruct the original line from ``payload``."""

    # -- public API --------------------------------------------------------
    def compress(self, line: bytes) -> CompressedLine:
        """Compress one cache line, falling back to raw storage if needed."""
        if len(line) != self.line_size:
            raise ValueError(
                f"{self.name}: expected {self.line_size}-byte line, "
                f"got {len(line)} bytes"
            )
        raw_bits = 8 * len(line)
        size_bits, payload = self._encode(line)
        # Every encoding carries a 1-bit compressed/uncompressed tag.
        if size_bits + 1 >= raw_bits:
            return CompressedLine(
                algorithm=self.name,
                original_size_bits=raw_bits,
                size_bits=raw_bits + 1,
                payload=line,
                compressible=False,
            )
        return CompressedLine(
            algorithm=self.name,
            original_size_bits=raw_bits,
            size_bits=size_bits + 1,
            payload=payload,
            compressible=True,
        )

    def decompress(self, compressed: CompressedLine) -> bytes:
        """Reconstruct the original cache line."""
        if compressed.algorithm != self.name:
            raise ValueError(
                f"cannot decompress {compressed.algorithm!r} data "
                f"with {self.name!r}"
            )
        if not compressed.compressible:
            return bytes(compressed.payload)
        return self._decode(compressed.payload)

    # -- conveniences -------------------------------------------------------
    def compressed_size_bytes(self, line: bytes) -> int:
        """Shortcut: compressed size of ``line`` in whole bytes."""
        return self.compress(line).size_bytes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} name={self.name!r} line={self.line_size}>"


#: Process-wide encoding memos shared by :class:`CachedCompressor`
#: instances constructed with the same ``shared_key``.  Only stateless
#: (non-trainable) algorithms may share: their encodings are pure
#: functions of the line bytes, so a memo entry computed by one
#: simulation is byte-identical for every other.
_SHARED_CACHES: dict = {}


class CachedCompressor(CompressionAlgorithm):
    """Memoizing wrapper around another algorithm.

    Workload traces revisit the same line values constantly; caching the
    (deterministic) encoding keeps cycle-level simulation fast without
    changing any result.  The cache is LRU-bounded.

    ``shared_key`` opts into a process-wide memo shared across wrapper
    instances (e.g. every run of the same algorithm in an experiment
    sweep).  Callers must only pass it for stateless algorithms whose
    encoding is fully determined by the key.
    """

    def __init__(
        self,
        inner: CompressionAlgorithm,
        capacity: int = 16384,
        shared_key: tuple = None,
    ):
        super().__init__(inner.line_size)
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.inner = inner
        self.name = inner.name
        self.capacity = capacity
        if shared_key is not None:
            cache = _SHARED_CACHES.get(shared_key)
            if cache is None:
                cache = OrderedDict()
                _SHARED_CACHES[shared_key] = cache
            self._cache: "OrderedDict[bytes, CompressedLine]" = cache
        else:
            self._cache = OrderedDict()
        self.hits = 0
        self.misses = 0

    def _encode(self, line: bytes) -> Tuple[int, Any]:  # pragma: no cover
        raise NotImplementedError("CachedCompressor delegates compress()")

    def _decode(self, payload: Any) -> bytes:  # pragma: no cover
        raise NotImplementedError("CachedCompressor delegates decompress()")

    def compress(self, line: bytes) -> CompressedLine:
        line = bytes(line)
        cached = self._cache.get(line)
        if cached is not None:
            self.hits += 1
            self._cache.move_to_end(line)
            return cached
        self.misses += 1
        result = self.inner.compress(line)
        self._cache[line] = result
        if len(self._cache) > self.capacity:
            self._cache.popitem(last=False)
        return result

    def decompress(self, compressed: CompressedLine) -> bytes:
        return self.inner.decompress(compressed)

    def train(self, lines) -> Any:
        """Delegate training (SC2/FVC) and invalidate stale cached encodings."""
        train = getattr(self.inner, "train", None)
        if train is None:
            raise AttributeError(f"{self.name} is not a trainable algorithm")
        result = train(lines)
        self._cache.clear()
        return result


def words32(line: bytes) -> list:
    """Split a line into little-endian unsigned 32-bit words."""
    return [
        int.from_bytes(line[i : i + 4], "little") for i in range(0, len(line), 4)
    ]


def from_words32(words: list) -> bytes:
    """Inverse of :func:`words32`."""
    return b"".join(w.to_bytes(4, "little") for w in words)


def chunks(line: bytes, width: int) -> list:
    """Split a line into little-endian unsigned ``width``-byte integers."""
    return [
        int.from_bytes(line[i : i + width], "little")
        for i in range(0, len(line), width)
    ]


def from_chunks(values: list, width: int) -> bytes:
    """Inverse of :func:`chunks`."""
    return b"".join(v.to_bytes(width, "little") for v in values)


def signed_fits(value: int, nbytes: int) -> bool:
    """True if ``value`` fits in an ``nbytes`` two's-complement field."""
    bound = 1 << (8 * nbytes - 1)
    return -bound <= value < bound


def sign_extend(value: int, nbytes: int, width: int) -> int:
    """Sign-extend an ``nbytes`` field to an unsigned ``width``-byte value."""
    bound = 1 << (8 * nbytes - 1)
    mask = (1 << (8 * width)) - 1
    if value >= bound:
        value -= 1 << (8 * nbytes)
    return value & mask


def to_signed(value: int, width: int) -> int:
    """Interpret an unsigned ``width``-byte value as two's complement."""
    bound = 1 << (8 * width - 1)
    return value - (1 << (8 * width)) if value >= bound else value
