"""Frequent-value compression for NoC traffic (Jin et al., MICRO 2008 and
Zhou et al., ASPDAC 2009 — refs [7][8] of the paper).

A small table of frequent 32-bit values is shared by encoder and decoder;
each word of a line is replaced by a table index when it matches, otherwise
it is sent verbatim behind a flag bit.  This is the classic NI-side packet
compressor the paper contrasts DISCO with ("prior art ... compress NoC
traffics in Network Interface").
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Iterable, List, Sequence, Tuple

from repro.compression.base import (
    CompressionAlgorithm,
    from_words32,
    words32,
)

#: Default frequent-value table: zero dominates, then tiny constants.
_DEFAULT_TABLE: Tuple[int, ...] = (0, 1, 0xFFFFFFFF, 2, 3, 4, 0x01010101, 8)


class FVCCompressor(CompressionAlgorithm):
    """Fixed-table frequent value coding of 32-bit words."""

    name = "fvc"

    def __init__(self, line_size: int = 64, table: Sequence[int] = _DEFAULT_TABLE):
        super().__init__(line_size)
        if not table:
            raise ValueError("frequent-value table must not be empty")
        self.table: Tuple[int, ...] = tuple(table)
        self._index = {value: i for i, value in enumerate(self.table)}
        self.index_bits = max(1, (len(self.table) - 1).bit_length())

    def train(self, lines: Iterable[bytes]) -> Tuple[int, ...]:
        """Refill the table with the most frequent words of a sample."""
        counts: Counter = Counter()
        for line in lines:
            counts.update(words32(bytes(line)))
        if not counts:
            raise ValueError("cannot train FVC on an empty sample")
        size = len(self.table)
        self.table = tuple(value for value, _ in counts.most_common(size))
        self._index = {value: i for i, value in enumerate(self.table)}
        return self.table

    def _encode(self, line: bytes) -> Tuple[int, Any]:
        entries: List[Tuple[bool, int]] = []
        size_bits = 0
        for word in words32(line):
            idx = self._index.get(word)
            if idx is None:
                entries.append((False, word))
                size_bits += 1 + 32
            else:
                entries.append((True, idx))
                size_bits += 1 + self.index_bits
        return size_bits, (self.table, tuple(entries))

    def _decode(self, payload: Any) -> bytes:
        table, entries = payload
        words = []
        for hit, data in entries:
            words.append(table[data] if hit else data)
        return from_words32(words)
