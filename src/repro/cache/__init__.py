"""Cache-hierarchy substrate: L1s, MSHRs, NUCA L2 banks, directory, DRAM.

Everything the tiled CMP of the paper's Table 2 needs on the memory side:

- :class:`repro.cache.l1.L1Cache` — private per-core L1 with MSHRs;
- :class:`repro.cache.compressed_bank.CompressedBankArray` — segmented
  compressed data array (2x tags, 8-byte segments) giving every compressing
  scheme its real capacity benefit;
- :class:`repro.cache.nuca.NucaBank` — one shared-L2 bank: data array +
  blocking coherence directory (MESI-flavoured, transaction-serialized);
- :class:`repro.cache.memory.MemoryController` — DRAM with per-bank FCFS
  queueing.
"""

from repro.cache.replacement import LRUPolicy
from repro.cache.compressed_bank import BankLine, CompressedBankArray
from repro.cache.mshr import MSHRFile, MSHREntry
from repro.cache.l1 import L1Cache, L1Stats
from repro.cache.memory import MemoryController, MemoryStats

__all__ = [
    "LRUPolicy",
    "BankLine",
    "CompressedBankArray",
    "MSHRFile",
    "MSHREntry",
    "L1Cache",
    "L1Stats",
    "MemoryController",
    "MemoryStats",
]
