"""Off-chip DRAM model (Table 2: 4 GB, 1 rank, 1 channel, 8 banks).

A fixed per-access latency plus per-DRAM-bank FCFS serialization: two
requests to the same bank queue behind each other, requests to different
banks overlap.  The backing store keeps real line contents so compression
operates on genuine data end-to-end, and — per the paper's §1 argument —
always holds *uncompressed* lines (DRAM cannot hold compressed blocks due
to alignment/mapping, which is why writebacks must be decompressed before
they reach the memory controller).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional


@dataclass
class MemoryStats:
    reads: int = 0
    writes: int = 0
    total_queue_cycles: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes


class MemoryController:
    """Timing + backing store of one DRAM channel."""

    def __init__(
        self,
        access_latency: int = 120,
        n_banks: int = 8,
        line_source: Optional[Callable[[int], bytes]] = None,
        line_size: int = 64,
    ):
        if access_latency < 1 or n_banks < 1:
            raise ValueError("latency and bank count must be positive")
        self.access_latency = access_latency
        self.n_banks = n_banks
        self.line_size = line_size
        self._line_source = line_source or (lambda addr: b"\x00" * line_size)
        self._store: Dict[int, bytes] = {}
        self._bank_free: List[int] = [0] * n_banks
        self.stats = MemoryStats()

    def _bank_of(self, addr: int) -> int:
        return addr % self.n_banks

    def busy_banks(self, cycle: int) -> int:
        """DRAM banks still serving a request at ``cycle`` (idle/wedge
        diagnostics for the simulation kernel)."""
        return sum(1 for free in self._bank_free if free > cycle)

    def _schedule(self, addr: int, cycle: int) -> int:
        bank = self._bank_of(addr)
        start = max(cycle, self._bank_free[bank])
        self.stats.total_queue_cycles += start - cycle
        done = start + self.access_latency
        self._bank_free[bank] = done
        return done

    # -- data --------------------------------------------------------------
    def line(self, addr: int) -> bytes:
        """Current content of a line (lazily initialized from the source)."""
        data = self._store.get(addr)
        if data is None:
            data = self._line_source(addr)
            self._store[addr] = data
        return data

    # -- timed operations ------------------------------------------------------
    def read(self, addr: int, cycle: int) -> "tuple[int, bytes]":
        """Issue a read at ``cycle``; returns (completion cycle, data)."""
        self.stats.reads += 1
        return self._schedule(addr, cycle), self.line(addr)

    def write(self, addr: int, data: bytes, cycle: int) -> int:
        """Issue a writeback; returns the completion cycle."""
        if len(data) != self.line_size:
            raise ValueError(f"line must be {self.line_size} bytes")
        self.stats.writes += 1
        self._store[addr] = data
        return self._schedule(addr, cycle)

    # -- checkpointing --------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Fields only — never the ``_line_source`` callable (it is a bound
        method of the workload's value pool; pickling it would clone the
        pool)."""
        return {
            "version": 1,
            "store": dict(self._store),
            "bank_free": list(self._bank_free),
            "stats": dict(self.stats.__dict__),
        }

    def load_state(self, state: Dict[str, object]) -> None:
        if state.get("version") != 1:
            raise ValueError(
                "unsupported MemoryController state version "
                f"{state.get('version')!r}"
            )
        self._store = dict(state["store"])
        self._bank_free = list(state["bank_free"])
        self.stats.__dict__.update(state["stats"])
