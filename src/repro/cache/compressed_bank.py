"""Segmented compressed cache bank (the capacity side of cache compression).

A conventional set holds ``ways`` fixed 64-byte lines.  A compressed set
decouples tags from data: it carries ``ways * tag_factor`` tags and a data
area of ``ways * line_size`` bytes managed in small segments (8 bytes by
default), so a line occupies only ``ceil(compressed_size / segment)``
segments.  This is the variable-segment organization used by compressed
caches since Alameldeen & Wood (ISCA'04), and it is what turns a
compression *ratio* into a real *miss-rate* reduction in the experiments.

In uncompressed mode (``tag_factor=1`` and every line stored at full size)
the structure degenerates to a standard set-associative array, which is how
the baseline scheme uses it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cache.replacement import LRUPolicy


@dataclass
class BankLine:
    """One resident line of a bank data array."""

    addr: int
    data: bytes  # current (uncompressed) content
    stored_bytes: int  # footprint actually occupied (compressed size)
    dirty: bool = False
    compressed_payload: object = None  # CompressedLine when stored compressed

    def segments(self, segment_bytes: int) -> int:
        return max(1, (self.stored_bytes + segment_bytes - 1) // segment_bytes)


@dataclass
class BankStats:
    """Per-bank event counters (feed the CACTI-style energy model)."""

    reads: int = 0
    writes: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    segments_read: int = 0
    segments_written: int = 0
    tag_lookups: int = 0


class _Set:
    """One set: tags + segment budget + LRU order."""

    __slots__ = ("lines", "lru")

    def __init__(self) -> None:
        self.lines: Dict[int, BankLine] = {}
        self.lru = LRUPolicy()


class CompressedBankArray:
    """Data array of one NUCA bank with segment-granular allocation."""

    def __init__(
        self,
        n_sets: int,
        ways: int,
        line_size: int = 64,
        tag_factor: int = 2,
        segment_bytes: int = 8,
        index_stride: int = 1,
    ):
        """``index_stride`` strips the bank-interleaving bits: a NUCA home
        bank receiving every ``n_banks``-th line passes ``index_stride =
        n_banks`` so consecutive homed lines map to consecutive sets
        (otherwise the bank-select and set-index bits alias and most sets
        go unused)."""
        if n_sets < 1 or ways < 1:
            raise ValueError("n_sets and ways must be positive")
        if tag_factor < 1:
            raise ValueError("tag_factor must be at least 1")
        if line_size % segment_bytes:
            raise ValueError("line_size must be a multiple of segment_bytes")
        if index_stride < 1:
            raise ValueError("index_stride must be positive")
        self.n_sets = n_sets
        self.ways = ways
        self.line_size = line_size
        self.tag_factor = tag_factor
        self.segment_bytes = segment_bytes
        self.index_stride = index_stride
        self.max_tags = ways * tag_factor
        self.segment_budget = ways * line_size // segment_bytes
        self._sets = [_Set() for _ in range(n_sets)]
        self.stats = BankStats()

    # -- addressing -----------------------------------------------------------
    def set_index(self, addr: int) -> int:
        return (addr // self.index_stride) % self.n_sets

    def _set_for(self, addr: int) -> _Set:
        return self._sets[self.set_index(addr)]

    def _used_segments(self, cache_set: _Set) -> int:
        return sum(
            line.segments(self.segment_bytes)
            for line in cache_set.lines.values()
        )

    # -- queries ----------------------------------------------------------------
    def lookup(self, addr: int, touch: bool = True) -> Optional[BankLine]:
        """Tag match; counts a read access on hit."""
        cache_set = self._set_for(addr)
        self.stats.tag_lookups += 1
        line = cache_set.lines.get(addr)
        if line is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self.stats.reads += 1
        self.stats.segments_read += line.segments(self.segment_bytes)
        if touch:
            cache_set.lru.touch(addr)
        return line

    def contains(self, addr: int) -> bool:
        return addr in self._set_for(addr).lines

    def occupancy(self) -> Tuple[int, int]:
        """(used segments, total segments) across all sets."""
        used = sum(self._used_segments(s) for s in self._sets)
        return used, self.n_sets * self.segment_budget

    def resident_lines(self) -> int:
        return sum(len(s.lines) for s in self._sets)

    # -- updates ----------------------------------------------------------------
    def insert(
        self,
        addr: int,
        data: bytes,
        stored_bytes: Optional[int] = None,
        dirty: bool = False,
        compressed_payload: object = None,
    ) -> List[BankLine]:
        """Insert/overwrite a line; returns the victims evicted to make room.

        ``stored_bytes`` defaults to the full line size (uncompressed
        storage).  Victims are chosen LRU-first until both a tag and enough
        segments are free; the caller writes dirty victims back to memory.
        """
        if len(data) != self.line_size:
            raise ValueError(
                f"line must be {self.line_size} bytes, got {len(data)}"
            )
        footprint = self.line_size if stored_bytes is None else stored_bytes
        if not 1 <= footprint <= self.line_size:
            raise ValueError(f"stored_bytes {footprint} out of range")
        cache_set = self._set_for(addr)
        new_line = BankLine(
            addr=addr,
            data=data,
            stored_bytes=footprint,
            dirty=dirty,
            compressed_payload=compressed_payload,
        )
        old = cache_set.lines.pop(addr, None)
        if old is not None:
            cache_set.lru.remove(addr)
            new_line.dirty = new_line.dirty or old.dirty
        victims = self._make_room(
            cache_set, new_line.segments(self.segment_bytes)
        )
        cache_set.lines[addr] = new_line
        cache_set.lru.touch(addr)
        self.stats.writes += 1
        self.stats.segments_written += new_line.segments(self.segment_bytes)
        return victims

    def _make_room(self, cache_set: _Set, need_segments: int) -> List[BankLine]:
        if need_segments > self.segment_budget:
            raise ValueError("line larger than a whole set's data budget")
        victims: List[BankLine] = []
        while (
            len(cache_set.lines) >= self.max_tags
            or self._used_segments(cache_set) + need_segments
            > self.segment_budget
        ):
            victim_addr = cache_set.lru.lru()
            cache_set.lru.remove(victim_addr)
            victim = cache_set.lines.pop(victim_addr)
            victims.append(victim)
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.dirty_evictions += 1
        return victims

    def invalidate(self, addr: int) -> Optional[BankLine]:
        """Drop a line (no writeback bookkeeping here)."""
        cache_set = self._set_for(addr)
        line = cache_set.lines.pop(addr, None)
        if line is not None:
            cache_set.lru.remove(addr)
        return line

    def mark_dirty(self, addr: int) -> None:
        line = self._set_for(addr).lines.get(addr)
        if line is None:
            raise KeyError(f"line {addr:#x} not resident")
        line.dirty = True

    # -- checkpointing --------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        return {
            "version": 1,
            "sets": [
                (dict(cache_set.lines), cache_set.lru.state_dict())
                for cache_set in self._sets
            ],
            "stats": dict(self.stats.__dict__),
        }

    def load_state(self, state: Dict[str, object]) -> None:
        if state.get("version") != 1:
            raise ValueError(
                "unsupported CompressedBankArray state version "
                f"{state.get('version')!r}"
            )
        for cache_set, (lines, lru_order) in zip(self._sets, state["sets"]):
            cache_set.lines = dict(lines)
            cache_set.lru.load_state(lru_order)
        self.stats.__dict__.update(state["stats"])
