"""Private per-core L1 data cache (Table 2: 32 KB, 4-way, 64 B lines).

The L1 holds raw (uncompressed) lines in MSI states — the paper's schemes
never compress L1 contents (the MSHR receives decompressed blocks).  The
surrounding tile handles all messaging; the L1 itself is a synchronous
structure with ``access`` / ``fill`` / ``invalidate`` operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cache.mshr import MSHRFile
from repro.cache.replacement import LRUPolicy

# L1 line states (MSI; E/O omitted — see DESIGN.md protocol simplification).
STATE_S = "S"
STATE_M = "M"

# access() outcomes
HIT = "hit"
MISS = "miss"
UPGRADE = "upgrade"  # write hit on a Shared line: needs a GETX round


@dataclass
class L1Line:
    addr: int
    state: str
    data: bytes
    dirty: bool = False


@dataclass
class L1Stats:
    hits: int = 0
    misses: int = 0
    upgrades: int = 0
    writebacks: int = 0
    invalidations: int = 0
    recalls: int = 0
    reads: int = 0
    writes: int = 0


class L1Cache:
    """Set-associative write-back L1 with an MSHR file."""

    def __init__(
        self,
        n_sets: int = 128,
        ways: int = 4,
        line_size: int = 64,
        mshrs: int = 8,
    ):
        if n_sets < 1 or ways < 1:
            raise ValueError("n_sets and ways must be positive")
        self.n_sets = n_sets
        self.ways = ways
        self.line_size = line_size
        self.mshr = MSHRFile(mshrs)
        self._sets: List[Dict[int, L1Line]] = [{} for _ in range(n_sets)]
        self._lru: List[LRUPolicy] = [LRUPolicy() for _ in range(n_sets)]
        self.stats = L1Stats()

    # -- addressing --------------------------------------------------------
    def _index(self, addr: int) -> int:
        return addr % self.n_sets

    def lookup(self, addr: int) -> Optional[L1Line]:
        return self._sets[self._index(addr)].get(addr)

    # -- core-facing operations ----------------------------------------------
    def access(self, addr: int, is_write: bool) -> str:
        """Attempt an access; returns HIT, MISS or UPGRADE.

        On HIT the LRU state is updated and, for writes, the line moves to
        M/dirty (the caller commits the new value via :meth:`write_data`).
        MISS/UPGRADE leave the miss handling (MSHR, messaging) to the tile.
        """
        if is_write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1
        line = self.lookup(addr)
        if line is None:
            self.stats.misses += 1
            return MISS
        if is_write and line.state != STATE_M:
            self.stats.upgrades += 1
            return UPGRADE
        self.stats.hits += 1
        self._lru[self._index(addr)].touch(addr)
        if is_write:
            line.dirty = True
        return HIT

    def write_data(self, addr: int, data: bytes) -> None:
        """Commit a store's value into a resident M line."""
        line = self.lookup(addr)
        if line is None or line.state != STATE_M:
            raise RuntimeError(f"store commit to non-M line {addr:#x}")
        line.data = data
        line.dirty = True

    # -- fill / eviction --------------------------------------------------------
    def fill(
        self, addr: int, data: bytes, state: str
    ) -> Optional[L1Line]:
        """Install a fill; returns the evicted dirty victim (if any).

        Clean victims are dropped silently (the directory tolerates stale
        sharers by acknowledging INVs for absent lines).
        """
        if state not in (STATE_S, STATE_M):
            raise ValueError(f"bad fill state {state!r}")
        index = self._index(addr)
        cache_set = self._sets[index]
        lru = self._lru[index]
        victim = None
        existing = cache_set.get(addr)
        if existing is None and len(cache_set) >= self.ways:
            victim_addr = lru.lru()
            lru.remove(victim_addr)
            candidate = cache_set.pop(victim_addr)
            if candidate.state == STATE_M and candidate.dirty:
                self.stats.writebacks += 1
                victim = candidate
        cache_set[addr] = L1Line(addr=addr, state=state, data=data)
        lru.touch(addr)
        return victim

    def invalidate(self, addr: int) -> Optional[L1Line]:
        """Invalidate (INV or RECALL); returns the line if it was present."""
        index = self._index(addr)
        line = self._sets[index].pop(addr, None)
        if line is not None:
            self._lru[index].remove(addr)
            self.stats.invalidations += 1
        return line

    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    # -- checkpointing --------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Lines, per-set LRU order, stats fields, and the MSHR file."""
        return {
            "version": 1,
            "sets": [dict(cache_set) for cache_set in self._sets],
            "lru": [lru.state_dict() for lru in self._lru],
            "stats": dict(self.stats.__dict__),
            "mshr": self.mshr.state_dict(),
        }

    def load_state(self, state: Dict[str, object]) -> None:
        if state.get("version") != 1:
            raise ValueError(
                f"unsupported L1Cache state version {state.get('version')!r}"
            )
        self._sets = [dict(cache_set) for cache_set in state["sets"]]
        for lru, saved in zip(self._lru, state["lru"]):
            lru.load_state(saved)
        # The stats object is shared with registered providers: copy the
        # fields into it rather than replacing the instance.
        self.stats.__dict__.update(state["stats"])
        self.mshr.load_state(state["mshr"])
