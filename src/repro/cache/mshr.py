"""Miss Status Handling Registers.

The paper's §1 singles out the MSHR as the structure that receives the
depacketized block at the core side — and the reason in-network
decompression must finish before ejection: "the depacktized block has to be
decompressed before it enters into a MSHR entry".  Functionally the MSHR
file coalesces outstanding misses per line and wakes the waiting accesses
when the fill arrives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class MSHREntry:
    """One outstanding miss: the line plus its coalesced waiters."""

    addr: int
    is_write: bool  # True if the outstanding request is a GETX
    issued_cycle: int
    waiters: List[Tuple[int, bool, bool, bool]] = field(default_factory=list)
    # (issue cycle, is_write, is_primary, is_measured) per coalesced access;
    # exactly one waiter in the whole miss's lifetime is primary (the
    # allocating one); is_measured is False for warmup accesses.
    pending_upgrade: bool = False  # a store arrived after a GETS was sent
    # Coherence messages that raced with the in-flight grant and were
    # deferred to fill time (see repro.cmp.tile):
    pending_recall_from: int = -1  # home node waiting for the M line
    pending_inv: bool = False  # invalidate the S fill after one use


class MSHRFile:
    """Bounded set of outstanding misses for one L1."""

    def __init__(self, n_entries: int = 8):
        if n_entries < 1:
            raise ValueError("need at least one MSHR")
        self.n_entries = n_entries
        self.entries: Dict[int, MSHREntry] = {}
        self.allocation_failures = 0

    def lookup(self, addr: int) -> Optional[MSHREntry]:
        return self.entries.get(addr)

    def full(self) -> bool:
        return len(self.entries) >= self.n_entries

    def allocate(self, addr: int, is_write: bool, cycle: int,
                 measured: bool = True) -> MSHREntry:
        if addr in self.entries:
            raise ValueError(f"MSHR already allocated for {addr:#x}")
        if self.full():
            self.allocation_failures += 1
            raise RuntimeError("MSHR file full")
        entry = MSHREntry(addr=addr, is_write=is_write, issued_cycle=cycle)
        entry.waiters.append((cycle, is_write, True, measured))
        self.entries[addr] = entry
        return entry

    def coalesce(self, addr: int, is_write: bool, cycle: int,
                 measured: bool = True) -> MSHREntry:
        """Attach another access to an existing miss."""
        entry = self.entries[addr]
        entry.waiters.append((cycle, is_write, False, measured))
        if is_write and not entry.is_write:
            entry.pending_upgrade = True
        return entry

    def release(self, addr: int) -> MSHREntry:
        return self.entries.pop(addr)

    def __len__(self) -> int:
        return len(self.entries)

    # -- checkpointing --------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        return {
            "version": 1,
            "entries": dict(self.entries),
            "allocation_failures": self.allocation_failures,
        }

    def load_state(self, state: Dict[str, object]) -> None:
        if state.get("version") != 1:
            raise ValueError(
                f"unsupported MSHRFile state version {state.get('version')!r}"
            )
        self.entries = dict(state["entries"])
        self.allocation_failures = state["allocation_failures"]
