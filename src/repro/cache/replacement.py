"""Replacement policies (Table 2: LRU)."""

from __future__ import annotations

from typing import Hashable, Iterable, List


class LRUPolicy:
    """Least-recently-used ordering over an arbitrary key set.

    One instance serves one cache set; keys are whatever the cache uses to
    identify resident lines (tags or full line addresses).
    """

    def __init__(self) -> None:
        self._order: List[Hashable] = []  # index 0 = LRU, -1 = MRU

    def touch(self, key: Hashable) -> None:
        """Mark ``key`` most recently used (inserting it if new)."""
        try:
            self._order.remove(key)
        except ValueError:
            pass
        self._order.append(key)

    def remove(self, key: Hashable) -> None:
        try:
            self._order.remove(key)
        except ValueError:
            pass

    def victims(self) -> Iterable[Hashable]:
        """Keys in eviction order (LRU first)."""
        return list(self._order)

    def lru(self) -> Hashable:
        if not self._order:
            raise LookupError("empty LRU set")
        return self._order[0]

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._order

    # -- checkpointing --------------------------------------------------------
    def state_dict(self) -> List[Hashable]:
        return list(self._order)

    def load_state(self, state: List[Hashable]) -> None:
        self._order = list(state)
