"""Chrome trace-event JSON and OpenMetrics exposition checkers.

Perfetto is forgiving when loading traces, which means a malformed
exporter can silently render an empty timeline.  This module validates
the subset of the trace-event format our exporter emits — strictly
enough that a passing trace is known-loadable — and doubles as the CI
smoke-test entry point::

    PYTHONPATH=src python -m repro.telemetry.check trace.json
    PYTHONPATH=src python -m repro.telemetry.check --metrics metrics.txt

``--metrics`` switches to the OpenMetrics validator
(:func:`repro.telemetry.metrics.validate_openmetrics`) over a scraped
``/metrics`` exposition — the ``metrics-smoke`` CI job's gate.

Exit status 0 means the input parsed and every check passed; errors are
listed one per line on stderr otherwise.  A summary (event counts by
phase/category, packet-span count — or metric family/sample counts) is
printed on stdout so the CI log shows what the input contained.
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List, Sequence

_ALLOWED_PH = {"X", "M", "i"}
_METADATA_NAMES = {"process_name", "thread_name"}


def _check_event(event: Dict, index: int, errors: List[str]) -> None:
    where = f"traceEvents[{index}]"
    if not isinstance(event, dict):
        errors.append(f"{where}: not an object")
        return
    ph = event.get("ph")
    if ph not in _ALLOWED_PH:
        errors.append(f"{where}: bad or missing ph {ph!r}")
        return
    if not isinstance(event.get("pid"), int):
        errors.append(f"{where}: pid must be an integer")
    if ph == "M":
        if event.get("name") not in _METADATA_NAMES:
            errors.append(
                f"{where}: metadata name {event.get('name')!r} not in "
                f"{sorted(_METADATA_NAMES)}"
            )
        args = event.get("args")
        if not isinstance(args, dict) or not isinstance(
            args.get("name"), str
        ):
            errors.append(f"{where}: metadata args.name must be a string")
        return
    # "X" spans and "i" instants share the common fields.
    if not isinstance(event.get("tid"), int):
        errors.append(f"{where}: tid must be an integer")
    if not isinstance(event.get("name"), str) or not event.get("name"):
        errors.append(f"{where}: name must be a non-empty string")
    ts = event.get("ts")
    if not isinstance(ts, (int, float)) or ts < 0:
        errors.append(f"{where}: ts must be a non-negative number")
    if ph == "X":
        dur = event.get("dur")
        if not isinstance(dur, (int, float)) or dur <= 0:
            errors.append(f"{where}: dur must be a positive number")
    if ph == "i" and event.get("s") not in (None, "t", "p", "g"):
        errors.append(f"{where}: instant scope s={event.get('s')!r} invalid")


def validate_chrome_trace(trace: Dict) -> List[str]:
    """Return a list of schema violations (empty list == valid)."""
    errors: List[str] = []
    if not isinstance(trace, dict):
        return ["top level: must be a JSON object"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["top level: traceEvents must be a list"]
    if not events:
        errors.append("traceEvents: empty (nothing to display)")
    for index, event in enumerate(events):
        _check_event(event, index, errors)
    return errors


def summarize(trace: Dict) -> Dict:
    """Event counts by phase and category, plus the packet-span count."""
    by_ph: Dict[str, int] = {}
    by_cat: Dict[str, int] = {}
    packet_spans = 0
    for event in trace.get("traceEvents", []):
        if not isinstance(event, dict):
            continue
        by_ph[str(event.get("ph"))] = by_ph.get(str(event.get("ph")), 0) + 1
        cat = event.get("cat")
        if cat:
            by_cat[cat] = by_cat.get(cat, 0) + 1
        if event.get("ph") == "X" and event.get("name") == "packet":
            packet_spans += 1
    return {"by_ph": by_ph, "by_cat": by_cat, "packet_spans": packet_spans}


def check_metrics(path: str) -> int:
    """Validate one scraped OpenMetrics exposition file."""
    from repro.telemetry.metrics import parse_samples, validate_openmetrics

    try:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        print(f"{path}: unreadable: {exc}", file=sys.stderr)
        return 1
    errors = validate_openmetrics(text)
    samples = parse_samples(text)
    families = {
        line.split(" ", 3)[2]
        for line in text.split("\n")
        if line.startswith("# TYPE ")
    }
    print(
        f"{path}: {len(families)} metric families, "
        f"{sum(len(v) for v in samples.values())} samples"
    )
    if errors:
        for error in errors:
            print(f"{path}: {error}", file=sys.stderr)
        print(f"{path}: INVALID ({len(errors)} errors)", file=sys.stderr)
        return 1
    print(f"{path}: OK")
    return 0


def main(argv: Sequence[str]) -> int:
    if len(argv) == 2 and argv[0] == "--metrics":
        return check_metrics(argv[1])
    if len(argv) != 1 or argv[0] == "--metrics":
        print(
            "usage: python -m repro.telemetry.check trace.json\n"
            "       python -m repro.telemetry.check --metrics metrics.txt",
            file=sys.stderr,
        )
        return 2
    path = argv[0]
    try:
        with open(path, "r", encoding="utf-8") as fh:
            trace = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"{path}: unreadable: {exc}", file=sys.stderr)
        return 1
    errors = validate_chrome_trace(trace)
    summary = summarize(trace)
    print(
        f"{path}: {sum(summary['by_ph'].values())} events "
        f"(by ph: {summary['by_ph']}, by cat: {summary['by_cat']}), "
        f"{summary['packet_spans']} packet spans"
    )
    if errors:
        for error in errors:
            print(f"{path}: {error}", file=sys.stderr)
        print(f"{path}: INVALID ({len(errors)} errors)", file=sys.stderr)
        return 1
    print(f"{path}: OK")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI smoke job
    sys.exit(main(sys.argv[1:]))
