"""Trace exporters: Chrome trace-event JSON (Perfetto), JSONL, summaries.

The :class:`~repro.telemetry.tracer.PacketTracer` records *point* events;
this module pairs them into **spans** and renders three views:

- :func:`to_chrome_trace` — the Chrome trace-event JSON format that
  ``ui.perfetto.dev`` (and ``chrome://tracing``) loads directly.  Three
  synthetic processes: *packets* (one track per traced packet,
  inject→eject span), *routers* (one track per router, a span per hop
  from head-flit arrival to tail-flit departure), *engines* (one track
  per (de)compressor, a span per job).  Simulated cycles are rendered as
  microseconds, so the Perfetto timeline reads directly in cycles.
- :func:`to_jsonl_lines` — one JSON object per raw event, for ad-hoc
  ``jq``/pandas analysis.
- :func:`summarize_trace` — per-node hop counts (heatmap input) and an
  end-to-end latency histogram, consumed by
  :mod:`repro.experiments.report`.

Exporters are pure functions of the recorded event list — they never
touch live simulation objects, so they can run post-mortem on events
that travelled through the disk cache.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.telemetry.tracer import (
    EV_CRC_REJECT,
    EV_DROP,
    EV_DUP,
    EV_EJECT,
    EV_ENGINE,
    EV_HOP,
    EV_INJECT,
    EV_RETX,
    EV_TAIL,
    TraceEvent,
)

# Synthetic Chrome-trace process ids: one per track family.
PID_PACKETS = 1
PID_ROUTERS = 2
PID_ENGINES = 3

#: One simulated cycle rendered as this many trace microseconds, so the
#: Perfetto time axis reads directly in cycles.
US_PER_CYCLE = 1.0


# -- span pairing -------------------------------------------------------------
def packet_spans(events: Sequence[TraceEvent]) -> List[Dict]:
    """Pair inject→eject into one lifecycle span per *delivery*.

    A retransmitted packet re-injects under the same pid; each ejection
    closes the most recent open injection, so the span count equals the
    number of recorded ejections — which at sampling rate 1 is exactly
    ``packets_ejected``.  Lifecycles that never eject (dropped packets)
    are reported separately by :func:`lost_packets`.
    """
    open_inject: Dict[int, TraceEvent] = {}
    spans: List[Dict] = []
    for event in events:
        if event.kind == EV_INJECT:
            open_inject[event.pid] = event
        elif event.kind == EV_EJECT:
            start = open_inject.pop(event.pid, None)
            start_cycle = start.cycle if start is not None else event.cycle
            info = start.info if start is not None else ()
            spans.append(
                {
                    "pid": event.pid,
                    "start": start_cycle,
                    "end": event.cycle,
                    "src": info[0] if len(info) > 4 else -1,
                    "dst": event.node,
                    "ptype": info[2] if len(info) > 4 else "?",
                    "size_flits": info[3] if len(info) > 4 else 0,
                    "latency": event.info[0] if event.info else (
                        event.cycle - start_cycle
                    ),
                }
            )
    return spans


def lost_packets(events: Sequence[TraceEvent]) -> List[Dict]:
    """Traced injections that never reached an eject event."""
    open_inject: Dict[int, TraceEvent] = {}
    for event in events:
        if event.kind == EV_INJECT:
            open_inject[event.pid] = event
        elif event.kind == EV_EJECT:
            open_inject.pop(event.pid, None)
    return [
        {"pid": ev.pid, "cycle": ev.cycle, "src": ev.node}
        for ev in open_inject.values()
    ]


def hop_spans(events: Sequence[TraceEvent]) -> List[Dict]:
    """One span per (packet, router) residency: head arrival → tail out.

    A hop with no matching tail (packet still buffered at trace end, or
    events past the cap) is closed at the packet's last event cycle."""
    open_hop: Dict[Tuple[int, int], TraceEvent] = {}
    last_cycle: Dict[int, int] = {}
    spans: List[Dict] = []
    for event in events:
        last_cycle[event.pid] = event.cycle
        key = (event.pid, event.node)
        if event.kind == EV_HOP:
            open_hop[key] = event
        elif event.kind == EV_TAIL:
            start = open_hop.pop(key, None)
            if start is not None:
                spans.append(
                    {
                        "pid": event.pid,
                        "node": event.node,
                        "start": start.cycle,
                        "end": event.cycle,
                        "port": start.info[0] if start.info else -1,
                        "vc": start.info[1] if len(start.info) > 1 else -1,
                        "out_port": event.info[0] if event.info else -1,
                    }
                )
    for (pid, node), start in open_hop.items():
        spans.append(
            {
                "pid": pid,
                "node": node,
                "start": start.cycle,
                "end": last_cycle.get(pid, start.cycle),
                "port": start.info[0] if start.info else -1,
                "vc": start.info[1] if len(start.info) > 1 else -1,
                "out_port": -1,
            }
        )
    spans.sort(key=lambda span: (span["start"], span["node"], span["pid"]))
    return spans


def engine_spans(events: Sequence[TraceEvent]) -> List[Dict]:
    """One span per engine job: start → end/abort/degraded."""
    open_job: Dict[Tuple[int, int], TraceEvent] = {}
    spans: List[Dict] = []
    for event in events:
        if event.kind != EV_ENGINE:
            continue
        mode, what = event.info
        key = (event.pid, event.node)
        if what == "start":
            open_job[key] = event
        else:
            start = open_job.pop(key, None)
            if start is not None:
                spans.append(
                    {
                        "pid": event.pid,
                        "node": event.node,
                        "mode": mode,
                        "outcome": what,
                        "start": start.cycle,
                        "end": event.cycle,
                    }
                )
    spans.sort(key=lambda span: (span["start"], span["node"], span["pid"]))
    return spans


# -- Chrome trace-event JSON --------------------------------------------------
def _span_event(
    name: str,
    cat: str,
    pid: int,
    tid: int,
    start: int,
    end: int,
    args: Optional[Dict] = None,
) -> Dict:
    event = {
        "name": name,
        "cat": cat,
        "ph": "X",
        "pid": pid,
        "tid": tid,
        "ts": start * US_PER_CYCLE,
        "dur": max(1, end - start) * US_PER_CYCLE,
    }
    if args:
        event["args"] = args
    return event


def _instant_event(
    name: str, cat: str, pid: int, tid: int, cycle: int, args: Optional[Dict] = None
) -> Dict:
    event = {
        "name": name,
        "cat": cat,
        "ph": "i",
        "s": "t",
        "pid": pid,
        "tid": tid,
        "ts": cycle * US_PER_CYCLE,
    }
    if args:
        event["args"] = args
    return event


def _metadata(pid: int, tid: Optional[int], name: str) -> Dict:
    event: Dict = {
        "name": "process_name" if tid is None else "thread_name",
        "ph": "M",
        "pid": pid,
        "args": {"name": name},
    }
    if tid is not None:
        event["tid"] = tid
    return event


def to_chrome_trace(
    events: Sequence[TraceEvent],
    *,
    label: str = "repro",
    correlation: Optional[str] = None,
) -> Dict:
    """Render recorded events as a Chrome trace-event JSON object.

    Load the written file at ``ui.perfetto.dev``: the *packets* process
    shows one track per traced packet (its full lifecycle span plus
    retransmit/CRC/duplicate instants), *routers* one track per router
    (per-hop residency spans), *engines* one track per (de)compressor.
    ``correlation`` (the service's submit-time id, when the trace came
    out of a service unit) rides in ``otherData`` so a Perfetto load is
    joinable with the service log and journal.
    """
    trace_events: List[Dict] = [
        _metadata(PID_PACKETS, None, f"{label}: packets"),
        _metadata(PID_ROUTERS, None, f"{label}: routers"),
        _metadata(PID_ENGINES, None, f"{label}: engines"),
    ]
    router_nodes = set()
    engine_nodes = set()

    for span in packet_spans(events):
        trace_events.append(
            _span_event(
                "packet",
                "packet",
                PID_PACKETS,
                span["pid"],
                span["start"],
                span["end"],
                {
                    "src": span["src"],
                    "dst": span["dst"],
                    "ptype": span["ptype"],
                    "size_flits": span["size_flits"],
                    "latency_cycles": span["latency"],
                },
            )
        )
    for span in hop_spans(events):
        router_nodes.add(span["node"])
        trace_events.append(
            _span_event(
                f"pkt {span['pid']}",
                "hop",
                PID_ROUTERS,
                span["node"],
                span["start"],
                span["end"],
                {
                    "in_port": span["port"],
                    "vc": span["vc"],
                    "out_port": span["out_port"],
                },
            )
        )
    for span in engine_spans(events):
        engine_nodes.add(span["node"])
        trace_events.append(
            _span_event(
                f"{span['mode']} pkt {span['pid']}",
                "engine",
                PID_ENGINES,
                span["node"],
                span["start"],
                span["end"],
                {"outcome": span["outcome"]},
            )
        )
    # Protocol/fault incidents as instants on the packet's own track.
    instant_names = {
        EV_RETX: "retransmit",
        EV_CRC_REJECT: "crc_reject",
        EV_DUP: "duplicate_dropped",
        EV_DROP: "ni_drop",
    }
    for event in events:
        name = instant_names.get(event.kind)
        if name is None:
            continue
        trace_events.append(
            _instant_event(
                name,
                "incident",
                PID_PACKETS,
                event.pid,
                event.cycle,
                {"node": event.node, "info": list(event.info)},
            )
        )
    for node in sorted(router_nodes):
        trace_events.append(_metadata(PID_ROUTERS, node, f"router {node}"))
    for node in sorted(engine_nodes):
        trace_events.append(_metadata(PID_ENGINES, node, f"engine {node}"))
    other: Dict = {
        "clock": "1 simulated cycle = 1 trace microsecond",
        "label": label,
    }
    if correlation:
        other["correlation_id"] = correlation
    return {
        "displayTimeUnit": "ms",
        "otherData": other,
        "traceEvents": trace_events,
    }


def write_chrome_trace(
    path: str,
    events: Sequence[TraceEvent],
    *,
    label: str = "repro",
    correlation: Optional[str] = None,
) -> Dict:
    """Write the Chrome trace JSON to ``path``; returns the trace dict."""
    trace = to_chrome_trace(events, label=label, correlation=correlation)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, separators=(",", ":"))
    return trace


# -- JSONL --------------------------------------------------------------------
def to_jsonl_lines(events: Iterable[TraceEvent]) -> Iterator[str]:
    """One compact JSON object per raw event (``jq``/pandas-friendly)."""
    for event in events:
        yield json.dumps(event.to_dict(), separators=(",", ":"))


def write_jsonl(path: str, events: Iterable[TraceEvent]) -> int:
    """Write raw events as JSONL; returns the number of lines written."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for line in to_jsonl_lines(events):
            fh.write(line + "\n")
            count += 1
    return count


# -- summaries (report-table inputs) -----------------------------------------
def node_hop_counts(events: Sequence[TraceEvent]) -> Dict[int, int]:
    """Traced head-flit arrivals per router — the heatmap input."""
    counts: Dict[int, int] = {}
    for event in events:
        if event.kind == EV_HOP:
            counts[event.node] = counts.get(event.node, 0) + 1
    return counts


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-quantile (``0 <= q <= 1``) with linear interpolation.

    The classic "linear" / "type 7" definition (numpy's default): rank
    ``q * (n - 1)`` into the sorted sample, interpolating between the
    two straddling order statistics.  Implemented in pure stdlib so the
    quantile math is identical with or without numpy — the pinned
    unit test holds both paths to the same numbers.
    """
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q!r}")
    ordered = sorted(float(v) for v in values)
    if len(ordered) == 1:
        return ordered[0]
    rank = q * (len(ordered) - 1)
    low = int(rank)
    frac = rank - low
    if frac == 0.0:
        return ordered[low]
    return ordered[low] + (ordered[low + 1] - ordered[low]) * frac


def latency_percentiles(
    events: Sequence[TraceEvent],
    quantiles: Sequence[float] = (0.5, 0.95, 0.99),
) -> Dict[str, float]:
    """p50/p95/p99 (by default) of traced end-to-end latencies, keyed
    ``p50``-style; empty when no ejection carried a latency."""
    latencies = [
        float(event.info[0])
        for event in events
        if event.kind == EV_EJECT and event.info
    ]
    if not latencies:
        return {}
    return {
        f"p{round(q * 100):d}": percentile(latencies, q) for q in quantiles
    }


def latency_histogram(
    events: Sequence[TraceEvent], bins: int = 8
) -> List[Tuple[str, int]]:
    """Bucketed end-to-end latencies of traced ejections.

    Returns ``(label, count)`` rows with equal-width bins over the
    observed range — small traces stay readable, outliers visible.
    """
    latencies = [
        int(event.info[0])
        for event in events
        if event.kind == EV_EJECT and event.info
    ]
    if not latencies:
        return []
    low, high = min(latencies), max(latencies)
    if low == high:
        return [(f"{low}", len(latencies))]
    width = max(1, (high - low + bins) // bins)
    counts: Dict[int, int] = {}
    for value in latencies:
        counts[(value - low) // width] = counts.get((value - low) // width, 0) + 1
    return [
        (f"{low + b * width}-{low + (b + 1) * width - 1}", counts[b])
        for b in sorted(counts)
    ]


def summarize_trace(events: Sequence[TraceEvent]) -> Dict:
    """Aggregate view for reports: span counts, heat, latency histogram."""
    spans = packet_spans(events)
    latencies = [span["latency"] for span in spans]
    return {
        "events": len(events),
        "packet_spans": len(spans),
        "lost_packets": len(lost_packets(events)),
        "hop_spans": len(hop_spans(events)),
        "engine_spans": len(engine_spans(events)),
        "node_hop_counts": node_hop_counts(events),
        "latency_histogram": latency_histogram(events),
        "latency_percentiles": latency_percentiles(events),
        "mean_latency": (
            sum(latencies) / len(latencies) if latencies else 0.0
        ),
    }
