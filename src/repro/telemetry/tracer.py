"""Opt-in per-packet lifecycle tracing.

The :class:`PacketTracer` records point events along each sampled
packet's life — inject, per-hop head arrival / RC / VA / first-flit
switch grant / tail departure, engine compress/decompress enter/exit,
eject, plus the reliability layer's retransmit/CRC-reject/duplicate
events — through the same cheap ``if tracer is not None`` hook style the
fault layer uses in ``router.py`` / ``interface.py`` / ``network.py`` /
``reliability.py``.  Exporters (:mod:`repro.telemetry.export`) pair the
events into spans for Perfetto or stream them as JSONL.

Two safety valves keep tracing bounded:

- **sampling rate** — every ``sample_interval``-th *first-injected*
  packet is traced (a retransmitted clone inherits its original's
  decision, so a packet's lifecycle never goes half-recorded);
- **event cap** — a hard ceiling on recorded events; once reached,
  further events are counted as dropped, never stored.

The tracer only observes.  Every hook mutates tracer-private state
exclusively, so enabling it cannot change a simulation digest.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.sim.stats import TelemetryStats

# Event kinds (the JSONL/export schema enumerates exactly these).
EV_INJECT = "inject"
EV_DROP = "drop"
EV_HOP = "hop"          # head flit landed in a router input VC
EV_RC = "rc"            # route computed
EV_VA = "va"            # downstream VC granted
EV_SA = "sa"            # first flit won switch allocation
EV_TAIL = "tail"        # tail flit left the router
EV_ENGINE = "engine"    # compress/decompress enter/exit/abort
EV_EJECT = "eject"
EV_RETX = "retx"
EV_CRC_REJECT = "crc_reject"
EV_DUP = "dup"

EVENT_KINDS = (
    EV_INJECT, EV_DROP, EV_HOP, EV_RC, EV_VA, EV_SA, EV_TAIL,
    EV_ENGINE, EV_EJECT, EV_RETX, EV_CRC_REJECT, EV_DUP,
)


class TraceEvent:
    """One lifecycle point event (lightweight: slots, no dataclass)."""

    __slots__ = ("cycle", "kind", "pid", "node", "info")

    def __init__(
        self, cycle: int, kind: str, pid: int, node: int, info: Tuple = ()
    ):
        self.cycle = cycle
        self.kind = kind
        self.pid = pid
        self.node = node
        self.info = info

    def to_dict(self) -> Dict:
        return {
            "cycle": self.cycle,
            "kind": self.kind,
            "pid": self.pid,
            "node": self.node,
            "info": list(self.info),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TraceEvent({self.cycle}, {self.kind!r}, pid={self.pid}, "
            f"node={self.node}, {self.info!r})"
        )


class PacketTracer:
    """Sampled per-packet lifecycle event recorder."""

    def __init__(
        self,
        sample_interval: int = 1,
        event_cap: int = 200_000,
        stats: Optional[TelemetryStats] = None,
    ):
        if sample_interval < 1:
            raise ValueError("trace_sample_interval must be at least 1")
        if event_cap < 1:
            raise ValueError("trace_event_cap must be at least 1")
        self.sample_interval = sample_interval
        self.event_cap = event_cap
        self.stats = stats if stats is not None else TelemetryStats()
        self.events: List[TraceEvent] = []
        self.dropped = 0
        self._decided: Dict[int, bool] = {}
        self._injections_seen = 0

    # -- sampling -------------------------------------------------------------
    def _decide(self, pid: int) -> bool:
        """Trace every ``sample_interval``-th first-seen packet; clones
        (retransmissions share their original's pid) reuse the original
        decision so sampled lifecycles stay complete."""
        decision = self._decided.get(pid)
        if decision is None:
            decision = self._injections_seen % self.sample_interval == 0
            self._injections_seen += 1
            self._decided[pid] = decision
            if decision:
                self.stats.packets_traced += 1
        return decision

    def wants(self, pid: int) -> bool:
        """Hook-site guard: is this packet being traced?"""
        return self._decided.get(pid, False)

    def describe(self) -> str:
        return (
            f"1/{self.sample_interval} packets, "
            f"{len(self.events)}/{self.event_cap} events"
            + (f" ({self.dropped} dropped)" if self.dropped else "")
        )

    @property
    def truncated(self) -> bool:
        return self.dropped > 0

    # -- recording ------------------------------------------------------------
    def _record(
        self, cycle: int, kind: str, pid: int, node: int, info: Tuple = ()
    ) -> None:
        if len(self.events) >= self.event_cap:
            self.dropped += 1
            self.stats.trace_events_dropped += 1
            return
        self.events.append(TraceEvent(cycle, kind, pid, node, info))
        self.stats.trace_events += 1

    # -- hook sites (called by the NoC layers) --------------------------------
    def on_inject(self, cycle: int, packet, node: int) -> None:
        """Injection attempt at a source NI (or ``Network.send`` for
        same-tile traffic).  Makes the sampling decision."""
        if not self._decide(packet.pid):
            return
        self._record(
            cycle,
            EV_INJECT,
            packet.pid,
            node,
            (
                packet.src,
                packet.dst,
                packet.ptype.value,
                packet.size_flits,
                packet.retransmissions,
            ),
        )

    def on_ni_drop(self, cycle: int, packet, node: int) -> None:
        """An injected fault dropped the packet at the NI."""
        if self.wants(packet.pid):
            self._record(cycle, EV_DROP, packet.pid, node)

    def on_hop(self, cycle: int, packet, node: int, port: int, vc: int) -> None:
        """Head flit landed in a router input VC (buffer-write stage)."""
        if self.wants(packet.pid):
            self._record(cycle, EV_HOP, packet.pid, node, (port, vc))

    def on_route_computed(
        self, cycle: int, packet, node: int, out_port: int
    ) -> None:
        if self.wants(packet.pid):
            self._record(cycle, EV_RC, packet.pid, node, (out_port,))

    def on_vc_allocated(
        self, cycle: int, packet, node: int, out_port: int
    ) -> None:
        if self.wants(packet.pid):
            self._record(cycle, EV_VA, packet.pid, node, (out_port,))

    def on_switch_granted(
        self, cycle: int, packet, node: int, out_port: int
    ) -> None:
        """First flit of the packet won switch allocation at this router."""
        if self.wants(packet.pid):
            self._record(cycle, EV_SA, packet.pid, node, (out_port,))

    def on_tail_sent(self, cycle: int, packet, node: int, out_port: int) -> None:
        """Tail flit left the router (hop span closes here)."""
        if self.wants(packet.pid):
            self._record(cycle, EV_TAIL, packet.pid, node, (out_port,))

    def on_engine(
        self, cycle: int, packet, node: int, mode: str, what: str
    ) -> None:
        """Engine job lifecycle: ``what`` is start/end/abort/degraded for
        a ``mode`` of compress/decompress."""
        if self.wants(packet.pid):
            self._record(cycle, EV_ENGINE, packet.pid, node, (mode, what))

    def on_eject(self, cycle: int, packet, node: int) -> None:
        if self.wants(packet.pid):
            latency = cycle - packet.injected_cycle
            self._record(cycle, EV_EJECT, packet.pid, node, (latency,))

    def on_retransmit(self, cycle: int, packet, node: int) -> None:
        if self.wants(packet.pid):
            self._record(
                cycle, EV_RETX, packet.pid, node, (packet.retransmissions,)
            )

    def on_crc_reject(self, cycle: int, packet, node: int) -> None:
        if self.wants(packet.pid):
            self._record(cycle, EV_CRC_REJECT, packet.pid, node, (packet.seq,))

    def on_duplicate(self, cycle: int, packet, node: int) -> None:
        if self.wants(packet.pid):
            self._record(cycle, EV_DUP, packet.pid, node, (packet.seq,))

    # -- checkpointing --------------------------------------------------------
    def state_dict(self) -> Dict:
        return {
            "version": 1,
            "events": list(self.events),
            "dropped": self.dropped,
            "decided": dict(self._decided),
            "injections_seen": self._injections_seen,
        }

    def load_state(self, state: Dict) -> None:
        if state.get("version") != 1:
            raise ValueError(
                "unsupported PacketTracer state version "
                f"{state.get('version')!r}"
            )
        self.events = list(state["events"])
        self.dropped = state["dropped"]
        self._decided = dict(state["decided"])
        self._injections_seen = state["injections_seen"]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PacketTracer({self.describe()})"
