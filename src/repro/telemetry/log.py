"""Structured logging for the runner and telemetry layer.

One shared stdlib ``logging`` tree rooted at ``repro``: every message
carries a timestamp, the process id (parallel pool workers interleave on
one terminal) and the logger name, so a line like ::

    14:02:31 41232 repro.runner INFO [a1b2c3d4e5f6] running disco/delta on
    canneal (4x4, seed 7)

can be attributed to its worker and spec without guessing.  The threshold
comes from ``REPRO_LOG_LEVEL`` (name or number, default ``WARNING``);
``verbose=True`` call sites lower it to ``INFO`` for their messages via
:func:`ensure_level` without overriding an explicit env setting that asks
for *more* output (e.g. ``DEBUG``).

This replaces the ad-hoc ``print``/``verbose`` output the experiment
runner used to produce — pool workers configure their own handler on
first use (fork inherits the parent's, spawn re-imports), so worker-side
messages are structured too.

Correlation
-----------
Every record additionally carries a **correlation id** — the token the
service mints at ``POST /submit`` and threads through job → work unit →
pool worker → ``RunSpec`` annotations.  It rides a :mod:`contextvars`
variable (so each dispatcher thread and each pool worker tags only its
own records) and lands in the line via :class:`CorrelationFilter` as a
``corr=<id>`` suffix on the logger name field: ``-`` when no request
context is active, so batch-runner output is unchanged apart from the
constant field.  ``grep <corr>`` across the service log, the journal and
a flight record then reconstructs one unit's full lifecycle.
"""

from __future__ import annotations

import contextlib
import contextvars
import logging
import os

_ROOT_NAME = "repro"
_FORMAT = (
    "%(asctime)s %(process)d %(name)s %(levelname)s corr=%(corr)s "
    "%(message)s"
)
_DATE_FORMAT = "%H:%M:%S"
_configured = False

#: The active correlation id for this thread/task (``None`` outside any
#: correlated request — rendered as ``-``).
_correlation: contextvars.ContextVar = contextvars.ContextVar(
    "repro_correlation", default=None
)


def current_correlation():
    """The correlation id bound to this context, or ``None``."""
    return _correlation.get()


def set_correlation(corr):
    """Bind ``corr`` (or clear with ``None``); returns the reset token."""
    return _correlation.set(corr)


@contextlib.contextmanager
def correlation_scope(corr):
    """Bind a correlation id for the duration of a ``with`` block."""
    token = _correlation.set(corr)
    try:
        yield corr
    finally:
        _correlation.reset(token)


class CorrelationFilter(logging.Filter):
    """Stamp every record with the context's correlation id.

    Installed on the shared ``repro`` handler; also importable for
    callers shipping repro records into their own handlers.  A filter
    (not a formatter) so the ``corr`` attribute exists on the record
    itself — flight recorders and test capture read it structurally.
    """

    def filter(self, record: logging.LogRecord) -> bool:
        if not hasattr(record, "corr") or record.corr is None:
            corr = _correlation.get()
            record.corr = corr if corr else "-"
        return True


def level_from_env(default: int = logging.WARNING) -> int:
    """Resolve ``REPRO_LOG_LEVEL`` (a name like ``debug`` or a number)
    into a logging level; unparseable values fall back to ``default``."""
    raw = os.environ.get("REPRO_LOG_LEVEL", "").strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        pass
    resolved = logging.getLevelName(raw.upper())
    if isinstance(resolved, int):
        return resolved
    return default


def get_logger(name: str = _ROOT_NAME) -> logging.Logger:
    """Return a logger under the ``repro`` tree, configuring the shared
    handler + ``REPRO_LOG_LEVEL`` threshold on first use."""
    global _configured
    root = logging.getLogger(_ROOT_NAME)
    if not _configured:
        _configured = True
        if not root.handlers:
            handler = logging.StreamHandler()
            handler.setFormatter(logging.Formatter(_FORMAT, _DATE_FORMAT))
            handler.addFilter(CorrelationFilter())
            root.addHandler(handler)
        root.propagate = False
        root.setLevel(level_from_env())
    if name == _ROOT_NAME:
        return root
    if not name.startswith(_ROOT_NAME + "."):
        name = f"{_ROOT_NAME}.{name}"
    return logging.getLogger(name)


def ensure_level(level: int) -> None:
    """Lower the ``repro`` threshold to ``level`` if it is currently
    stricter (never raises it — an explicit ``REPRO_LOG_LEVEL=DEBUG``
    stays in force when a ``verbose=True`` call site asks for INFO)."""
    root = get_logger()
    if root.level == logging.NOTSET or root.level > level:
        root.setLevel(level)


def reset_for_tests() -> None:
    """Drop the cached configuration so a test can re-run the env-driven
    setup from scratch (handlers are removed as well)."""
    global _configured
    _configured = False
    root = logging.getLogger(_ROOT_NAME)
    for handler in list(root.handlers):
        root.removeHandler(handler)
    root.setLevel(logging.NOTSET)
