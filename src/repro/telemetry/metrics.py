"""OpenMetrics exposition: Counter/Gauge/Histogram over the stats layer.

The repo already counts everything — :class:`~repro.sim.stats.StatsRegistry`
groups inside a simulation, :class:`~repro.service.scheduler.ServiceStats`
and :class:`~repro.service.admission.AdmissionStats` around it — but those
counters only surfaced as ad-hoc JSON (``/stats``) or batch-at-end
snapshots.  This module is the bridge to the one format every scraper,
alerting rule and dashboard already speaks: the OpenMetrics / Prometheus
text exposition.

Three metric families, deliberately small:

- :class:`Counter` — monotonically increasing totals (``_total`` sample
  suffix, per the OpenMetrics counter contract);
- :class:`Gauge` — instantaneous readings (queue depth, heartbeat lag);
- :class:`Histogram` — cumulative ``le`` buckets + ``_sum``/``_count``
  (queue-age distribution, unit latency).

All three support label sets (``{scheme="disco"}``), and a
:class:`MetricsRegistry` renders the whole family list as one exposition
ending in the mandatory ``# EOF`` terminator.  Rendering walks an
immutable snapshot of each family's samples, so a scrape racing a
writer sees a consistent (never torn) exposition.

Bridging is one-way and pull-based: :func:`snapshot_families` maps a
:class:`~repro.sim.stats.CounterSnapshot` (every registry group) onto
``repro_<group>_<counter>_total`` counters at scrape time — nothing in
the simulator ever writes a metric object, so the plane is provably
inert when nobody scrapes.

``python -m repro.telemetry.metrics --dump`` renders the exposition for
an offline run (a quick simulation resolved through the normal
memo/disk caches), so the same metric names can be grepped from a batch
run without standing the service up.

:func:`validate_openmetrics` is the syntax checker CI runs over scraped
expositions (``python -m repro.telemetry.check --metrics file``): name
charset, TYPE/HELP placement, label syntax, float-parseable values,
histogram bucket monotonicity, the single trailing ``# EOF``.
"""

from __future__ import annotations

import re
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.sim.stats import CounterSnapshot

#: Every exposed metric name starts with this, so one scrape config
#: (``{__name__=~"repro_.*"}``) covers the whole plane.
PREFIX = "repro"

#: The exposition content type (headers the service endpoint sends).
CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"

_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default queue-age histogram buckets (milliseconds): sub-ms dispatch
#: through the 60s retry-after cap.
QUEUE_AGE_BUCKETS_MS = (1.0, 5.0, 25.0, 100.0, 500.0, 2_000.0, 10_000.0, 60_000.0)


def _sanitize(token: str) -> str:
    """Fold an arbitrary counter/group name into the metric charset."""
    cleaned = re.sub(r"[^a-zA-Z0-9_]", "_", token)
    if not cleaned or not re.match(r"[a-zA-Z_]", cleaned[0]):
        cleaned = "_" + cleaned
    return cleaned


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    """Render a sample value: integral floats print as integers so the
    exposition is stable across int/float counter providers."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


class _Family:
    """Shared plumbing: name/help checks and the labelled-sample store."""

    kind = "untyped"

    def __init__(self, name: str, help: str):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._samples: Dict[Tuple[Tuple[str, str], ...], float] = {}

    @staticmethod
    def _label_key(labels: Mapping[str, str]) -> Tuple[Tuple[str, str], ...]:
        for label in labels:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        return tuple(sorted((k, str(v)) for k, v in labels.items()))

    def samples(self) -> List[Tuple[Dict[str, str], float]]:
        """A consistent point-in-time copy of every labelled sample."""
        with self._lock:
            return [(dict(key), value) for key, value in self._samples.items()]

    def render(self) -> Iterable[str]:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Family):
    """A monotonically increasing total (exposed as ``<name>_total``)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._label_key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def set_total(self, value: float, **labels: str) -> None:
        """Pin the total outright — the bridge path, where the source of
        truth is an external monotonic counter being mirrored."""
        key = self._label_key(labels)
        with self._lock:
            self._samples[key] = float(value)

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._samples.get(self._label_key(labels), 0.0)

    def render(self):
        yield f"# TYPE {self.name} counter"
        if self.help:
            yield f"# HELP {self.name} {self.help}"
        for labels, value in sorted(
            self.samples(), key=lambda item: sorted(item[0].items())
        ):
            yield (
                f"{self.name}_total{_render_labels(labels)} "
                f"{_format_value(value)}"
            )


class Gauge(_Family):
    """An instantaneous reading that can go either way."""

    kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        key = self._label_key(labels)
        with self._lock:
            self._samples[key] = float(value)

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._samples.get(self._label_key(labels), 0.0)

    def render(self):
        yield f"# TYPE {self.name} gauge"
        if self.help:
            yield f"# HELP {self.name} {self.help}"
        for labels, value in sorted(
            self.samples(), key=lambda item: sorted(item[0].items())
        ):
            yield f"{self.name}{_render_labels(labels)} {_format_value(value)}"


class Histogram:
    """Cumulative-bucket histogram (``le`` buckets + ``_sum``/``_count``).

    Bucket upper bounds are fixed at construction; every observation
    lands in all buckets whose bound is >= the value (cumulative, as the
    exposition format requires) plus the implicit ``+Inf`` bucket.
    Unlabelled only — the queue-age and latency uses need no label axis,
    and dropping labels keeps rendering trivially torn-free.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str, buckets: Sequence[float]):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be sorted and non-empty")
        self.name = name
        self.help = help
        self.buckets = tuple(float(b) for b in buckets)
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.buckets) + 1)  # +Inf last
        self._sum = 0.0

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[index] += 1
            self._counts[-1] += 1

    def snapshot(self) -> Tuple[List[int], float]:
        with self._lock:
            return list(self._counts), self._sum

    def render(self):
        counts, total = self.snapshot()
        yield f"# TYPE {self.name} histogram"
        if self.help:
            yield f"# HELP {self.name} {self.help}"
        cumulative = 0
        for index, bound in enumerate(self.buckets):
            cumulative = counts[index]
            yield (
                f'{self.name}_bucket{{le="{_format_value(bound)}"}} '
                f"{cumulative}"
            )
        yield f'{self.name}_bucket{{le="+Inf"}} {counts[-1]}'
        yield f"{self.name}_sum {_format_value(total)}"
        yield f"{self.name}_count {counts[-1]}"


class MetricsRegistry:
    """An ordered family list rendered as one OpenMetrics exposition."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, object] = {}

    def _add(self, family):
        with self._lock:
            if family.name in self._families:
                raise ValueError(f"metric {family.name!r} already registered")
            self._families[family.name] = family
        return family

    def counter(self, name: str, help: str = "") -> Counter:
        return self._add(Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._add(Gauge(name, help))

    def histogram(
        self, name: str, help: str = "", buckets: Sequence[float] = (1.0,)
    ) -> Histogram:
        return self._add(Histogram(name, help, buckets))

    def get(self, name: str):
        with self._lock:
            return self._families.get(name)

    def families(self) -> List[object]:
        with self._lock:
            return list(self._families.values())

    def render(self) -> str:
        """The full exposition, ``# EOF``-terminated.

        Families are rendered from per-family snapshots, so a scrape
        concurrent with writers yields a syntactically complete document
        whose counters are each at-or-after their last scraped value —
        the monotonicity the concurrent-scrape test pins.
        """
        lines: List[str] = []
        for family in self.families():
            lines.extend(family.render())
        lines.append("# EOF")
        return "\n".join(lines) + "\n"


# --------------------------------------------------------------------------
# bridging the existing stats layer
# --------------------------------------------------------------------------


def snapshot_families(
    snapshot: CounterSnapshot,
    registry: Optional[MetricsRegistry] = None,
    prefix: str = PREFIX,
) -> MetricsRegistry:
    """Mirror every registry group onto ``<prefix>_<group>_<counter>``
    counters.

    The :class:`~repro.sim.stats.StatsRegistry` convention is that every
    group counter is monotonic over a run, so the bridge exposes them as
    OpenMetrics counters; scrape-to-scrape monotonicity then follows
    from the substrate counters themselves.
    """
    registry = registry if registry is not None else MetricsRegistry()
    for group in snapshot:
        for key, value in snapshot[group].items():
            name = f"{prefix}_{_sanitize(group)}_{_sanitize(key)}"
            family = registry.get(name)
            if family is None:
                family = registry.counter(
                    name, f"registry counter {key!r} of group {group!r}"
                )
            family.set_total(float(value))
    return registry


def build_service_registry(service) -> MetricsRegistry:
    """One scrape's view of a :class:`~repro.service.scheduler.CampaignService`.

    Counters come from the service's own :class:`StatsRegistry` snapshot
    (the same numbers ``/stats`` serves, so the two endpoints reconcile
    by construction); gauges and the per-scheme/queue-age views read the
    scheduler's live structures.
    """
    registry = MetricsRegistry()
    snapshot_families(service.snapshot(), registry)

    depth = registry.gauge(
        "repro_service_queue_depth_units",
        "queued + delayed + in-flight work units",
    )
    depth.set(service.queue_depth())
    up = registry.gauge(
        "repro_service_up", "1 while the dispatcher threads are alive"
    )
    up.set(1.0 if service.live() else 0.0)
    accepting = registry.gauge(
        "repro_service_accepting", "1 while submissions are admitted"
    )
    accepting.set(1.0 if service.accepting else 0.0)
    if service.started_mono is not None:
        import time as _time

        uptime = registry.gauge(
            "repro_service_uptime_seconds", "seconds since service start"
        )
        uptime.set(_time.monotonic() - service.started_mono)

    rates = registry.gauge(
        "repro_service_rate_per_second",
        "trailing 60s wall-clock rates from the service series",
    )
    for key in ("completed", "failed", "shed", "retry", "admitted"):
        rates.set(service.series.rate(key, 60.0), kind=key)

    by_scheme = registry.counter(
        "repro_service_units_completed_by_scheme",
        "completed spec units, labelled by compression scheme",
    )
    for scheme, count in sorted(service.scheme_completed().items()):
        by_scheme.set_total(float(count), scheme=scheme)

    cache = registry.counter(
        "repro_service_unit_cache_outcomes",
        "completed units by cache outcome (hit = no pool trip)",
    )
    stats = service.stats
    cache.set_total(float(stats.cache_hits), outcome="hit")
    cache.set_total(
        float(max(0, stats.units_completed - stats.cache_hits)),
        outcome="miss",
    )

    ages = registry.histogram(
        "repro_service_queue_age_ms",
        "unit queue age at dispatch (milliseconds)",
        buckets=QUEUE_AGE_BUCKETS_MS,
    )
    for age in service.queue_age_observations():
        ages.observe(age)

    lag = registry.gauge(
        "repro_worker_heartbeat_lag_seconds",
        "seconds since each pool worker's heartbeat file was refreshed",
    )
    for pid, age in service.heartbeat_lags().items():
        lag.set(age, pid=str(pid))

    burn = registry.gauge(
        "repro_slo_burn_rate",
        "error-budget burn rate per SLO (>1 means the objective is burning)",
    )
    ok = registry.gauge(
        "repro_slo_ok", "1 while the SLO meets its objective"
    )
    for status in service.evaluate_slos(publish=False):
        burn.set(status.burn_rate, slo=status.name)
        ok.set(1.0 if status.ok else 0.0, slo=status.name)
    return registry


# --------------------------------------------------------------------------
# the OpenMetrics syntax checker
# --------------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(\s+(?P<timestamp>[^\s]+))?$"
)
_LABEL_PAIR_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"'
)


def validate_openmetrics(text: str) -> List[str]:
    """Return the list of syntax violations (empty == valid).

    Checks the subset the renderer emits — which is also the subset any
    Prometheus-compatible scraper requires: metric-name charset, ``#
    TYPE``/``# HELP`` shape, label syntax, float-parseable values,
    per-family sample-name consistency (``_total`` for counters, bucket
    suffixes for histograms), cumulative-bucket monotonicity, and
    exactly one terminating ``# EOF`` as the final line.
    """
    errors: List[str] = []
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines = lines[:-1]
    if not lines:
        return ["empty exposition"]
    if lines[-1] != "# EOF":
        errors.append("missing '# EOF' terminator as the final line")
    types: Dict[str, str] = {}
    bucket_state: Dict[str, float] = {}
    seen_samples: set = set()
    for number, line in enumerate(lines, start=1):
        if line == "# EOF":
            if number != len(lines):
                errors.append(f"line {number}: '# EOF' before the final line")
            continue
        if not line:
            errors.append(f"line {number}: blank line inside the exposition")
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[1] not in ("TYPE", "HELP", "UNIT"):
                errors.append(f"line {number}: malformed comment {line!r}")
                continue
            name = parts[2]
            if not _NAME_RE.match(name):
                errors.append(
                    f"line {number}: invalid metric name {name!r}"
                )
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "info",
                    "stateset", "unknown",
                ):
                    errors.append(
                        f"line {number}: invalid TYPE declaration {line!r}"
                    )
                elif name in types:
                    errors.append(
                        f"line {number}: duplicate TYPE for {name!r}"
                    )
                else:
                    types[name] = parts[3]
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            errors.append(f"line {number}: unparseable sample {line!r}")
            continue
        name = match.group("name")
        labels_raw = match.group("labels") or ""
        labels: Dict[str, str] = {}
        if labels_raw:
            body = labels_raw[1:-1]
            consumed = _LABEL_PAIR_RE.findall(body)
            rebuilt = ",".join(f'{k}="{v}"' for k, v in consumed)
            if body and rebuilt != body:
                errors.append(
                    f"line {number}: malformed label set {labels_raw!r}"
                )
            labels = dict(consumed)
        try:
            value = float(match.group("value"))
        except ValueError:
            errors.append(
                f"line {number}: value {match.group('value')!r} "
                "is not a number"
            )
            continue
        family, kind = _family_of(name, types)
        if kind == "counter":
            if not name.endswith("_total") and not name.endswith(
                ("_created",)
            ):
                errors.append(
                    f"line {number}: counter sample {name!r} must use the "
                    "'_total' suffix"
                )
            if value < 0:
                errors.append(
                    f"line {number}: counter {name!r} is negative"
                )
        if kind == "histogram" and name.endswith("_bucket"):
            le = labels.get("le")
            if le is None:
                errors.append(
                    f"line {number}: histogram bucket without an 'le' label"
                )
            else:
                previous = bucket_state.get(family)
                if previous is not None and value < previous:
                    errors.append(
                        f"line {number}: bucket counts of {family!r} are "
                        "not cumulative"
                    )
                bucket_state[family] = value
        sample_id = (name, tuple(sorted(labels.items())))
        if sample_id in seen_samples:
            errors.append(
                f"line {number}: duplicate sample {name}{labels_raw}"
            )
        seen_samples.add(sample_id)
    return errors


def _family_of(sample_name: str, types: Dict[str, str]) -> Tuple[str, str]:
    """Resolve a sample name to its declared family + kind."""
    for suffix in ("_total", "_bucket", "_sum", "_count", "_created"):
        if sample_name.endswith(suffix):
            family = sample_name[: -len(suffix)]
            if family in types:
                return family, types[family]
    return sample_name, types.get(sample_name, "unknown")


def parse_samples(text: str) -> Dict[str, Dict[Tuple[Tuple[str, str], ...], float]]:
    """Fold an exposition into ``{sample_name: {label_key: value}}`` —
    the comparison view the reconciliation tests use."""
    out: Dict[str, Dict[Tuple[Tuple[str, str], ...], float]] = {}
    for line in text.split("\n"):
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            continue
        labels = tuple(
            sorted(_LABEL_PAIR_RE.findall(match.group("labels") or ""))
        )
        try:
            value = float(match.group("value"))
        except ValueError:
            continue  # the validator reports these; the fold stays lenient
        out.setdefault(match.group("name"), {})[labels] = value
    return out


# --------------------------------------------------------------------------
# offline dump (python -m repro.telemetry.metrics --dump)
# --------------------------------------------------------------------------


def dump_offline(
    scheme: str = "disco",
    workload: str = "x264",
    accesses: int = 100,
    seed: int = 7,
) -> str:
    """Run (or recall) one quick spec and render its registry snapshots
    as the same exposition the service serves — batch runs and the
    service expose one metric namespace."""
    from repro.experiments.runner import RunSpec, run_spec

    spec = RunSpec(
        scheme=scheme,
        workload=workload,
        accesses_per_core=accesses,
        seed=seed,
    )
    result = run_spec(spec)
    registry = MetricsRegistry()
    snapshot_families(result.snapshot_full, registry)
    meta = registry.gauge(
        "repro_run_cycles", "simulated cycles of the dumped run"
    )
    meta.set(float(result.cycles))
    latency = registry.gauge(
        "repro_run_avg_miss_latency_cycles",
        "the paper's average on-chip miss latency metric",
    )
    latency.set(result.avg_miss_latency)
    return registry.render()


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.metrics",
        description="OpenMetrics exposition for offline runs.",
    )
    parser.add_argument(
        "--dump", action="store_true",
        help="run/recall one quick spec and print its exposition",
    )
    parser.add_argument("--scheme", default="disco")
    parser.add_argument("--workload", default="x264")
    parser.add_argument("--accesses", type=int, default=100)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)
    if not args.dump:
        parser.error("nothing to do (pass --dump)")
    text = dump_offline(
        scheme=args.scheme,
        workload=args.workload,
        accesses=args.accesses,
        seed=args.seed,
    )
    errors = validate_openmetrics(text)
    if errors:  # pragma: no cover - renderer and validator co-evolve
        for error in errors:
            print(f"metrics: {error}", file=__import__("sys").stderr)
        return 1
    print(text, end="")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI smoke job
    import sys

    sys.exit(main(sys.argv[1:]))
