"""Declarative SLOs evaluated over wall-clock telemetry rings.

An :class:`SLOSpec` states an objective over a
:class:`~repro.telemetry.sampler.WallClockSeries` metric — "p95 queue
age under 5 seconds", "shed rate under 0.5/s", "completion throughput at
least 0.05 units/s while work is admitted" — and :func:`evaluate` turns
the ring's recent window into an :class:`SLOStatus` with an explicit
**burn rate**: how many times over (or under) the objective the fleet is
running.  ``burn_rate <= 1`` means the objective holds; ``2.0`` means
the error budget is burning at twice the sustainable pace.

Four objective kinds cover the service's signals:

``quantile_max``
    The ``quantile`` (default p95) of the metric's samples in the window
    must not exceed ``objective`` (unit-latency style objectives).
``mean_max``
    The windowed mean must not exceed ``objective``.
``rate_max``
    The windowed occurrence rate (events/second) must not exceed
    ``objective`` (shed/failure style objectives).
``rate_min``
    The windowed rate must be at least ``objective`` (throughput).  A
    throughput objective over an *idle* service would burn forever, so
    ``demand_metric`` names the companion signal (e.g. ``admitted``)
    that must have fired in the window for the objective to apply.

The specs are plain data: :func:`parse_slos` builds them from JSON-style
dicts, so a deployment can ship its own objectives, and
:func:`default_slos` pins the repo's out-of-the-box set.  Evaluation is
read-only over the ring — the observability plane never feeds back into
scheduling or simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.telemetry.export import percentile
from repro.telemetry.sampler import WallClockSeries

_KINDS = ("quantile_max", "mean_max", "rate_max", "rate_min")


@dataclass(frozen=True)
class SLOSpec:
    """One declarative objective over a series metric."""

    name: str
    metric: str
    objective: float
    kind: str = "quantile_max"
    window: float = 60.0
    quantile: float = 0.95
    #: For ``rate_min``: the objective only applies when this companion
    #: metric fired inside the window (idle fleets are not "burning").
    demand_metric: Optional[str] = None

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown SLO kind {self.kind!r} (expected one of {_KINDS})"
            )
        if self.objective <= 0:
            raise ValueError("SLO objectives must be positive")

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "metric": self.metric,
            "objective": self.objective,
            "kind": self.kind,
            "window": self.window,
            "quantile": self.quantile,
            "demand_metric": self.demand_metric,
        }


@dataclass(frozen=True)
class SLOStatus:
    """One evaluation: the measured value, the burn rate, the verdict."""

    name: str
    metric: str
    kind: str
    objective: float
    value: Optional[float]
    burn_rate: float
    ok: bool
    window: float

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "metric": self.metric,
            "kind": self.kind,
            "objective": self.objective,
            "value": self.value,
            "burn_rate": round(self.burn_rate, 4),
            "ok": self.ok,
            "window": self.window,
        }


def evaluate(
    slo: SLOSpec,
    series: WallClockSeries,
    elapsed: Optional[float] = None,
) -> SLOStatus:
    """Evaluate one objective over the ring's trailing window.

    ``elapsed`` is how long the series has been collecting (service
    uptime).  A ring younger than a ``rate_min`` objective's window
    under-reports the rate — the divisor is the full window — so the
    objective is held in abeyance (burn 0) until a whole window has
    elapsed; ``rate_max`` keeps the biased-low estimate, which can only
    under-alarm, never false-alarm.
    """
    window = series.window(slo.window)
    samples = [
        float(point[slo.metric]) for point in window if slo.metric in point
    ]
    value: Optional[float] = None
    burn = 0.0
    if slo.kind == "quantile_max":
        if samples:
            value = percentile(samples, slo.quantile)
            burn = value / slo.objective
    elif slo.kind == "mean_max":
        if samples:
            value = sum(samples) / len(samples)
            burn = value / slo.objective
    elif slo.kind == "rate_max":
        value = series.rate(slo.metric, slo.window)
        burn = value / slo.objective
    else:  # rate_min
        demanded = True
        if slo.demand_metric is not None:
            demanded = any(slo.demand_metric in point for point in window)
        if elapsed is not None and elapsed < slo.window:
            demanded = False
        value = series.rate(slo.metric, slo.window)
        if demanded:
            # Guard the div: a zero rate against a positive floor burns
            # "infinitely" — cap at a large finite burn so JSON stays
            # portable and dashboards stay plottable.
            burn = min(slo.objective / value, 1000.0) if value > 0 else 1000.0
        else:
            burn = 0.0
    return SLOStatus(
        name=slo.name,
        metric=slo.metric,
        kind=slo.kind,
        objective=slo.objective,
        value=value,
        burn_rate=burn,
        ok=burn <= 1.0,
        window=slo.window,
    )


def evaluate_all(
    slos: Sequence[SLOSpec],
    series: WallClockSeries,
    elapsed: Optional[float] = None,
) -> List[SLOStatus]:
    return [evaluate(slo, series, elapsed=elapsed) for slo in slos]


def default_slos() -> List[SLOSpec]:
    """The out-of-the-box service objectives.

    Numbers are deliberately loose — they catch a service that is
    drowning (minute-old queue entries, sustained shedding, admitted
    work going nowhere), not one that is merely busy.
    """
    return [
        SLOSpec(
            name="queue_age_p95",
            metric="queue_age_ms",
            objective=30_000.0,
            kind="quantile_max",
            quantile=0.95,
            window=60.0,
        ),
        SLOSpec(
            name="shed_rate",
            metric="shed",
            objective=0.5,
            kind="rate_max",
            window=60.0,
        ),
        SLOSpec(
            name="throughput",
            metric="completed",
            objective=0.02,
            kind="rate_min",
            window=120.0,
            demand_metric="admitted",
        ),
    ]


def parse_slos(payload: Sequence[Dict]) -> List[SLOSpec]:
    """Build specs from JSON-style dicts (unknown keys rejected, so a
    typoed ``quantile`` cannot silently fall back to a default)."""
    allowed = {
        "name", "metric", "objective", "kind", "window", "quantile",
        "demand_metric",
    }
    specs = []
    for entry in payload:
        if not isinstance(entry, dict):
            raise ValueError("each SLO must be an object")
        unknown = set(entry) - allowed
        if unknown:
            raise ValueError(f"unknown SLO fields: {sorted(unknown)}")
        if "name" not in entry or "metric" not in entry:
            raise ValueError("SLOs need at least 'name' and 'metric'")
        if "objective" not in entry:
            raise ValueError(f"SLO {entry['name']!r} needs an 'objective'")
        specs.append(SLOSpec(**entry))
    return specs
