"""repro.telemetry — the zero-cost-when-off observability layer.

Seven parts, all defaulting off and digest-invariant when on:

- :mod:`repro.telemetry.sampler` — windowed time-series snapshots of the
  stats registry (:class:`TimeSeriesSampler`), ring-buffered, plus the
  wall-clock :class:`WallClockSeries` rings the service samples into;
- :mod:`repro.telemetry.tracer` — sampled per-packet lifecycle events
  (:class:`PacketTracer`) recorded at fault-hook-style sites in the NoC;
- :mod:`repro.telemetry.export` — Chrome trace-event JSON (Perfetto),
  JSONL, report-table summaries, and quantile math
  (:func:`percentile`);
- :mod:`repro.telemetry.profiler` — per-component wall-clock attribution
  of the simulator itself (:class:`RunProfile`);
- :mod:`repro.telemetry.metrics` — OpenMetrics/Prometheus text
  exposition over the stats layer (``GET /metrics`` and the offline
  ``--dump``), with its own syntax validator;
- :mod:`repro.telemetry.slo` — declarative objectives with burn rates,
  evaluated over the wall-clock rings;
- :mod:`repro.telemetry.flight` — the crash flight recorder (bounded
  event ring dumped atomically next to the heartbeat files; enabled by
  ``REPRO_FLIGHT_DIR``).

:mod:`repro.telemetry.log` carries the structured logger the experiment
runner uses in place of ad-hoc prints — including the correlation-id
context (:func:`correlation_scope`) that joins service, runner, journal
and flight records on one token; :mod:`repro.telemetry.check` validates
exported traces and scraped expositions (CI smoke entry points).
"""

from repro.telemetry.export import (
    latency_percentiles,
    percentile,
    summarize_trace,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.flight import FlightRecorder
from repro.telemetry.log import (
    correlation_scope,
    current_correlation,
    get_logger,
    set_correlation,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    validate_openmetrics,
)
from repro.telemetry.profiler import (
    RunProfile,
    merge_profiles,
    profile_from_kernel,
    render_profile,
    write_profile,
)
from repro.telemetry.sampler import (
    SampleWindow,
    TimeSeriesSampler,
    WallClockSeries,
)
from repro.telemetry.slo import SLOSpec, SLOStatus, default_slos, evaluate_all
from repro.telemetry.tracer import PacketTracer, TraceEvent

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PacketTracer",
    "RunProfile",
    "SLOSpec",
    "SLOStatus",
    "SampleWindow",
    "TimeSeriesSampler",
    "TraceEvent",
    "WallClockSeries",
    "correlation_scope",
    "current_correlation",
    "default_slos",
    "evaluate_all",
    "get_logger",
    "latency_percentiles",
    "merge_profiles",
    "percentile",
    "profile_from_kernel",
    "render_profile",
    "set_correlation",
    "summarize_trace",
    "to_chrome_trace",
    "validate_openmetrics",
    "write_chrome_trace",
    "write_jsonl",
    "write_profile",
]
