"""repro.telemetry — the zero-cost-when-off observability layer.

Four parts, all defaulting off and digest-invariant when on:

- :mod:`repro.telemetry.sampler` — windowed time-series snapshots of the
  stats registry (:class:`TimeSeriesSampler`), ring-buffered;
- :mod:`repro.telemetry.tracer` — sampled per-packet lifecycle events
  (:class:`PacketTracer`) recorded at fault-hook-style sites in the NoC;
- :mod:`repro.telemetry.export` — Chrome trace-event JSON (Perfetto),
  JSONL, and report-table summaries;
- :mod:`repro.telemetry.profiler` — per-component wall-clock attribution
  of the simulator itself (:class:`RunProfile`).

:mod:`repro.telemetry.log` carries the structured logger the experiment
runner uses in place of ad-hoc prints; :mod:`repro.telemetry.check`
validates exported traces (CI smoke entry point).
"""

from repro.telemetry.export import (
    summarize_trace,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.log import get_logger
from repro.telemetry.profiler import (
    RunProfile,
    merge_profiles,
    profile_from_kernel,
    render_profile,
    write_profile,
)
from repro.telemetry.sampler import SampleWindow, TimeSeriesSampler
from repro.telemetry.tracer import PacketTracer, TraceEvent

__all__ = [
    "PacketTracer",
    "RunProfile",
    "SampleWindow",
    "TimeSeriesSampler",
    "TraceEvent",
    "get_logger",
    "merge_profiles",
    "profile_from_kernel",
    "render_profile",
    "summarize_trace",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "write_profile",
]
