"""Windowed time-series sampling of the kernel's stats registry.

End-of-run :class:`~repro.sim.stats.CounterSnapshot` aggregates can show
*that* DISCO hid compression latency inside queueing delay, but not
*when* or *where*: a retransmission storm in cycle window [4096, 8192)
and a quiet tail average out to the same totals.  The
:class:`TimeSeriesSampler` is a kernel component that snapshots the
registry every ``interval`` cycles and stores the **delta** against the
previous boundary — per-window injected packets, link flits,
compressions, retransmissions, degraded transmissions... — so any
counter becomes a curve over the run.

Memory is bounded: windows live in a ring buffer of ``capacity`` entries
(oldest evicted first, evictions counted), so an arbitrarily long run
records at most ``capacity`` windows.  Gauges — instantaneous values
like per-router buffer occupancy that deltas cannot express — are
sampled at each boundary through registered callables.

The sampler only *reads* simulation state; attaching it never changes a
digest.  Window boundaries are stamped with start/end cycles rather than
assumed equidistant, because the CMP fast-forward can jump the shared
clock over idle regions.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.sim.kernel import SimKernel
from repro.sim.stats import CounterSnapshot, TelemetryStats

Gauge = Callable[[], float]


@dataclass
class SampleWindow:
    """One sampling interval: counter deltas + gauge readings."""

    #: Monotonic window number (survives ring-buffer eviction, so the
    #: first retained window of a long run is not number 0).
    index: int
    start_cycle: int
    end_cycle: int
    #: Registry counters accumulated within this window.
    delta: CounterSnapshot
    #: Instantaneous gauge values at the window's end boundary.
    gauges: Dict[str, float] = field(default_factory=dict)

    @property
    def span(self) -> int:
        return max(1, self.end_cycle - self.start_cycle)

    def rate(self, counter: str) -> float:
        """Per-cycle rate of a flat counter within this window."""
        return self.delta.get_counter(counter, 0) / self.span


class TimeSeriesSampler:
    """Kernel component: periodic registry snapshots into windowed deltas."""

    def __init__(
        self,
        kernel: SimKernel,
        interval: int,
        capacity: int = 256,
        stats: Optional[TelemetryStats] = None,
    ):
        if interval < 1:
            raise ValueError("sampler interval must be at least 1 cycle")
        if capacity < 1:
            raise ValueError("sampler capacity must be at least 1")
        self.kernel = kernel
        self.interval = interval
        self.capacity = capacity
        self.stats = stats if stats is not None else TelemetryStats()
        self._windows: Deque[SampleWindow] = deque(maxlen=capacity)
        self._gauges: Dict[str, Gauge] = {}
        self._base: Optional[CounterSnapshot] = None
        self._base_cycle = 0
        self._next_index = 0

    # -- configuration -------------------------------------------------------
    def add_gauge(self, name: str, fn: Gauge) -> None:
        """Register an instantaneous reading sampled at every boundary."""
        if name in self._gauges:
            raise ValueError(f"gauge {name!r} already registered")
        self._gauges[name] = fn

    def describe(self) -> str:
        return (
            f"every {self.interval} cycles, ring of {self.capacity} "
            f"windows, {len(self._gauges)} gauges"
        )

    # -- kernel component protocol -------------------------------------------
    def has_work(self) -> bool:
        return True  # the off-boundary tick is a single modulo

    def next_wake(self, cycle: int) -> int:
        """Idleness contract: timed wakeup at the next window boundary."""
        return cycle + self.interval - cycle % self.interval

    def tick(self, cycle: int) -> None:
        if cycle % self.interval:
            return
        self.sample(cycle)

    def sample(self, cycle: int) -> SampleWindow:
        """Close the current window at ``cycle`` (also usable manually,
        e.g. to flush a final partial window after a drain)."""
        snapshot = self.kernel.stats.snapshot()
        base = self._base if self._base is not None else CounterSnapshot()
        window = SampleWindow(
            index=self._next_index,
            start_cycle=self._base_cycle,
            end_cycle=cycle,
            delta=snapshot.delta(base),
            gauges={name: fn() for name, fn in self._gauges.items()},
        )
        if len(self._windows) == self.capacity:
            self.stats.windows_evicted += 1
        self._windows.append(window)
        self._next_index += 1
        self._base = snapshot
        self._base_cycle = cycle
        self.stats.windows_sampled += 1
        return window

    # -- checkpointing --------------------------------------------------------
    def state_dict(self) -> Dict:
        """Retained windows + delta base (gauge callables re-register at
        construction, like stats providers)."""
        return {
            "version": 1,
            "windows": list(self._windows),
            "base": self._base,
            "base_cycle": self._base_cycle,
            "next_index": self._next_index,
            "windows_sampled": self.stats.windows_sampled,
            "windows_evicted": self.stats.windows_evicted,
        }

    def load_state(self, state: Dict) -> None:
        if state.get("version") != 1:
            raise ValueError(
                "unsupported TimeSeriesSampler state version "
                f"{state.get('version')!r}"
            )
        self._windows = deque(state["windows"], maxlen=self.capacity)
        self._base = state["base"]
        self._base_cycle = state["base_cycle"]
        self._next_index = state["next_index"]
        self.stats.windows_sampled = state["windows_sampled"]
        self.stats.windows_evicted = state["windows_evicted"]

    # -- views ----------------------------------------------------------------
    def windows(self) -> List[SampleWindow]:
        return list(self._windows)

    def series(
        self, counter: str, per_cycle: bool = False
    ) -> List[Tuple[int, float]]:
        """``(end_cycle, value)`` curve of one flat counter across the
        retained windows; ``per_cycle=True`` divides by the window span
        (e.g. injection *rate* instead of injected count)."""
        out: List[Tuple[int, float]] = []
        for window in self._windows:
            value = window.delta.get_counter(counter, 0)
            if per_cycle:
                value /= window.span
            out.append((window.end_cycle, value))
        return out

    def gauge_series(self, name: str) -> List[Tuple[int, float]]:
        """``(end_cycle, reading)`` curve of one registered gauge."""
        return [
            (window.end_cycle, window.gauges[name])
            for window in self._windows
            if name in window.gauges
        ]

    def to_dicts(self) -> List[Dict]:
        """Plain-data view of the retained windows (picklable/JSON-able)."""
        return [
            {
                "index": window.index,
                "start_cycle": window.start_cycle,
                "end_cycle": window.end_cycle,
                "counters": window.delta.to_dict(),
                "gauges": dict(window.gauges),
            }
            for window in self._windows
        ]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TimeSeriesSampler(every {self.interval} cycles, "
            f"{len(self._windows)}/{self.capacity} windows)"
        )


class WallClockSeries:
    """Bounded wall-clock time series for *service-side* gauges.

    The kernel-cycle sampler above cannot observe the campaign service —
    queue depth, per-job queue age and shed decisions happen between
    simulations, on the wall clock.  This is the same ring-buffer design
    re-keyed on ``time.time()``: every :meth:`record` call appends one
    point (a dict of numeric gauges), the ring bounds memory, evictions
    are counted, and :meth:`rate` folds any key into an events-per-second
    figure over a trailing window — the shed-rate and queue-age curves
    the service's ``/stats`` endpoint exposes.

    Thread-safe: the service records from its admission path and from
    every worker thread concurrently.
    """

    def __init__(self, capacity: int = 1024):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        import threading
        import time as _time

        self.capacity = capacity
        self.evicted = 0
        self._clock = _time.time
        self._lock = threading.Lock()
        self._points: Deque[Dict[str, float]] = deque(maxlen=capacity)

    def record(self, **gauges: float) -> None:
        """Append one point stamped with the current wall-clock time."""
        point = {"ts": self._clock()}
        for key, value in gauges.items():
            point[key] = float(value)
        with self._lock:
            if len(self._points) == self.capacity:
                self.evicted += 1
            self._points.append(point)

    def points(self, limit: Optional[int] = None) -> List[Dict[str, float]]:
        """The retained points, oldest first (optionally the last N)."""
        with self._lock:
            points = list(self._points)
        if limit is not None:
            points = points[-limit:]
        return points

    def window(self, seconds: float) -> List[Dict[str, float]]:
        """Points recorded within the trailing ``seconds`` window."""
        horizon = self._clock() - seconds
        return [p for p in self.points() if p["ts"] >= horizon]

    def rate(self, key: str, seconds: float = 60.0) -> float:
        """Sum of ``key`` over the trailing window, per second."""
        if seconds <= 0:
            raise ValueError("window must be positive")
        total = sum(p.get(key, 0.0) for p in self.window(seconds))
        return total / seconds

    def mean(self, key: str, seconds: float = 60.0) -> float:
        """Mean of ``key`` over the trailing window (0.0 when empty)."""
        points = [p[key] for p in self.window(seconds) if key in p]
        if not points:
            return 0.0
        return sum(points) / len(points)

    def __len__(self) -> int:
        with self._lock:
            return len(self._points)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"WallClockSeries({len(self)}/{self.capacity} points, "
            f"{self.evicted} evicted)"
        )
