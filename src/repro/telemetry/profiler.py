"""Run-level wall-clock profiling of the simulator itself.

``SimKernel.enable_timing(per_component=True)`` accumulates host seconds
per phase and per component label; this module turns those raw dicts
into a :class:`RunProfile` — a picklable value that rides inside
``SimulationResult`` through the process pool and the disk cache — and
aggregates profiles across a campaign into the ``profile.json`` the
runner emits (top-k hot components by attributed wall-clock).

Profiling measures the *simulator*, not the simulation: it reports where
host time goes (router switch allocation? engine modelling? stats
sampling?) so optimisation effort lands on the real hot path.  Numbers
are wall-clock and therefore machine- and load-dependent — compare runs
on the same host, and expect cached results to carry the profile of the
run that populated the cache.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim.kernel import SimKernel

#: ``(phase, component label)`` — the attribution key.
Key = Tuple[str, str]


@dataclass
class RunProfile:
    """Wall-clock attribution for one simulation run (picklable)."""

    #: Host seconds attributed to each (phase, component-label) pair.
    component_seconds: Dict[Key, float] = field(default_factory=dict)
    #: Ticks executed per (phase, component-label) pair.
    component_ticks: Dict[Key, int] = field(default_factory=dict)
    #: Host seconds per phase (includes scheduling overhead the
    #: per-component numbers cannot see).
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    phase_ticks: Dict[str, int] = field(default_factory=dict)
    #: End-to-end wall seconds of the run (simulate + collect), when the
    #: caller measured it; 0.0 otherwise.
    wall_seconds: float = 0.0
    #: Simulated cycles covered (for cycles/sec throughput).
    cycles: int = 0
    #: Number of runs merged into this profile (1 for a single run).
    runs: int = 1

    def total_attributed(self) -> float:
        return sum(self.component_seconds.values())

    def merge(self, other: "RunProfile") -> "RunProfile":
        """Key-wise sum of two profiles (campaign aggregation)."""
        out = RunProfile(
            component_seconds=dict(self.component_seconds),
            component_ticks=dict(self.component_ticks),
            phase_seconds=dict(self.phase_seconds),
            phase_ticks=dict(self.phase_ticks),
            wall_seconds=self.wall_seconds + other.wall_seconds,
            cycles=self.cycles + other.cycles,
            runs=self.runs + other.runs,
        )
        for key, value in other.component_seconds.items():
            out.component_seconds[key] = (
                out.component_seconds.get(key, 0.0) + value
            )
        for key, ticks in other.component_ticks.items():
            out.component_ticks[key] = out.component_ticks.get(key, 0) + ticks
        for name, value in other.phase_seconds.items():
            out.phase_seconds[name] = out.phase_seconds.get(name, 0.0) + value
        for name, ticks in other.phase_ticks.items():
            out.phase_ticks[name] = out.phase_ticks.get(name, 0) + ticks
        return out

    def top_components(self, k: int = 10) -> List[Dict]:
        """The ``k`` hottest (phase, component) pairs by attributed
        seconds, with share-of-attributed-time and per-tick cost."""
        total = self.total_attributed()
        ranked = sorted(
            self.component_seconds.items(),
            key=lambda item: (-item[1], item[0]),
        )
        out: List[Dict] = []
        for (phase, label), seconds in ranked[:k]:
            ticks = self.component_ticks.get((phase, label), 0)
            out.append(
                {
                    "phase": phase,
                    "component": label,
                    "seconds": seconds,
                    "share": seconds / total if total else 0.0,
                    "ticks": ticks,
                    "us_per_tick": (seconds / ticks * 1e6) if ticks else 0.0,
                }
            )
        return out

    def to_dict(self, top_k: int = 10) -> Dict:
        """JSON-able view (tuple keys flattened as ``phase/label``)."""
        return {
            "runs": self.runs,
            "cycles": self.cycles,
            "wall_seconds": self.wall_seconds,
            "attributed_seconds": self.total_attributed(),
            "cycles_per_second": (
                self.cycles / self.wall_seconds if self.wall_seconds else 0.0
            ),
            "top_components": self.top_components(top_k),
            "phase_seconds": {
                name: self.phase_seconds[name]
                for name in sorted(self.phase_seconds)
            },
            "component_seconds": {
                f"{phase}/{label}": seconds
                for (phase, label), seconds in sorted(
                    self.component_seconds.items()
                )
            },
        }


def profile_from_kernel(
    kernel: SimKernel, *, wall_seconds: float = 0.0, cycles: Optional[int] = None
) -> RunProfile:
    """Snapshot a kernel's timing accumulators into a profile value."""
    return RunProfile(
        component_seconds=dict(kernel.component_seconds),
        component_ticks=dict(kernel.component_ticks),
        phase_seconds=dict(kernel.phase_seconds),
        phase_ticks=dict(kernel.phase_ticks),
        wall_seconds=wall_seconds,
        cycles=kernel.cycle if cycles is None else cycles,
    )


def merge_profiles(profiles: List[RunProfile]) -> Optional[RunProfile]:
    """Campaign-level aggregate; ``None`` when no run carried a profile."""
    merged: Optional[RunProfile] = None
    for profile in profiles:
        if profile is None:
            continue
        merged = profile if merged is None else merged.merge(profile)
    return merged


def write_profile(path: str, profile: RunProfile, *, top_k: int = 10) -> Dict:
    """Write ``profile.json``; returns the written dict."""
    payload = profile.to_dict(top_k)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload


def render_profile(profile: RunProfile, *, top_k: int = 10) -> str:
    """Terminal-friendly top-k table (used by the runner's verbose log)."""
    lines = [
        f"profile: {profile.runs} run(s), {profile.cycles} cycles, "
        f"{profile.wall_seconds:.2f}s wall, "
        f"{profile.total_attributed():.2f}s attributed"
    ]
    for row in profile.top_components(top_k):
        lines.append(
            f"  {row['share']:6.1%}  {row['seconds']:8.3f}s  "
            f"{row['us_per_tick']:8.2f}us/tick  "
            f"{row['phase']}/{row['component']}"
        )
    return "\n".join(lines)
