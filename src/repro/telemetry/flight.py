"""Crash flight recorder: a bounded ring of recent structured events.

When a pool worker dies — watchdog SIGKILL, OOM, ``BrokenProcessPool``,
invariant violation, checkpoint quarantine — today's evidence is one log
line ("worker process died") and a stale heartbeat file.  The flight
recorder turns that into a postmortem artifact: each process keeps a
bounded ring of recent structured events (scheduler decisions, progress
samples with the simulated cycle, kernel phase timings, the last N log
records) and dumps it as one atomically-written JSON file next to the
heartbeat files.

SIGKILL is unsurvivable from inside, so the worker-side recorder does
not *react* to death — it **persists ahead of it**: the runner's
progress hook (the same callback that writes heartbeats) periodically
dumps the ring with ``reason="inflight"``, throttled to roughly one
write per second.  When the watchdog kills the worker, the last inflight
dump *is* the flight record — carrying the correlation id and the last
sampled simulated cycle.  Exception paths (invariant violations,
quarantine, broken pools) dump explicitly with their own reason, from
whichever process observed the failure.

Off by default and provably inert: everything here no-ops unless
``REPRO_FLIGHT_DIR`` names a directory.  Nothing in the simulation or
caching path reads the recorder, so results and disk-cache envelopes are
byte-identical with the plane on or off (the invariance test pins this).

Dump schema (``flight_<pid>.json``)::

    {
      "pid": 12345,
      "role": "worker" | "service",
      "reason": "inflight" | "invariant_violation" | "broken_pool"
              | "quarantine" | ...,
      "ts": 1760000000.0,
      "corr": "c0ffee..." | null,        # correlation id, when bound
      "extra": {...},                    # site-specific detail (spec key,
                                         #   last cycle, phase timings...)
      "events": [{"seq": 1, "ts": ..., "kind": ..., ...}, ...],
      "logs":   [{"ts": ..., "level": "INFO", "name": ...,
                  "corr": ..., "message": ...}, ...]
    }
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
import threading
import time
from collections import deque
from pathlib import Path
from typing import Dict, List, Optional

from repro.telemetry.log import CorrelationFilter, current_correlation

#: Ring capacities — small enough that an inflight dump costs microseconds,
#: large enough to hold the tail that explains a death.
EVENT_CAPACITY = 256
LOG_CAPACITY = 64


def flight_dir() -> Optional[Path]:
    """The flight-record directory, or ``None`` when the recorder is off
    (``REPRO_FLIGHT_DIR`` unset/empty — the default)."""
    raw = os.environ.get("REPRO_FLIGHT_DIR", "").strip()
    return Path(raw) if raw else None


def enabled() -> bool:
    return flight_dir() is not None


class FlightRecorder:
    """A thread-safe bounded ring of structured events plus a log tail."""

    def __init__(
        self,
        role: str = "worker",
        capacity: int = EVENT_CAPACITY,
        log_capacity: int = LOG_CAPACITY,
    ):
        self.role = role
        self._lock = threading.Lock()
        self._events: deque = deque(maxlen=capacity)
        self._logs: deque = deque(maxlen=log_capacity)
        self._seq = 0

    def record(self, kind: str, **data) -> None:
        """Append one structured event (no-op when the plane is off, so
        hot-path call sites need no guard of their own)."""
        if not enabled():
            return
        with self._lock:
            self._seq += 1
            event = {"seq": self._seq, "ts": time.time(), "kind": kind}
            event.update(data)
            corr = current_correlation()
            if corr and "corr" not in event:
                event["corr"] = corr
            self._events.append(event)

    def record_log(self, record: logging.LogRecord) -> None:
        if not enabled():
            return
        entry = {
            "ts": record.created,
            "level": record.levelname,
            "name": record.name,
            "corr": getattr(record, "corr", None),
            "message": record.getMessage(),
        }
        with self._lock:
            self._logs.append(entry)

    def snapshot(self) -> Dict[str, List[Dict]]:
        with self._lock:
            return {
                "events": [dict(e) for e in self._events],
                "logs": [dict(entry) for entry in self._logs],
            }

    def dump(
        self,
        reason: str,
        corr: Optional[str] = None,
        extra: Optional[Dict] = None,
        pid: Optional[int] = None,
    ) -> Optional[Path]:
        """Atomically write the ring as ``flight_<pid>.json``.

        Returns the path written, or ``None`` when the recorder is off
        or the write failed (flight records are a triage aid — a full
        disk must never take the simulation down).  Successive dumps
        from one process replace the file, so the newest state wins —
        exactly what the inflight-ahead-of-SIGKILL strategy needs.
        """
        directory = flight_dir()
        if directory is None:
            return None
        pid = pid if pid is not None else os.getpid()
        payload = {
            "pid": pid,
            "role": self.role,
            "reason": reason,
            "ts": time.time(),
            "corr": corr if corr is not None else current_correlation(),
            "extra": extra or {},
        }
        payload.update(self.snapshot())
        path = directory / f"flight_{pid}.json"
        try:
            directory.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=str(directory), suffix=".tmp"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True, default=str)
            os.replace(tmp_name, path)
        except (OSError, TypeError):
            try:
                os.unlink(tmp_name)  # noqa: SIM105 - best effort
            except (OSError, UnboundLocalError):
                pass
            return None
        return path


class FlightLogHandler(logging.Handler):
    """Tee ``repro`` log records into a recorder's log ring."""

    def __init__(self, recorder: FlightRecorder):
        super().__init__(level=logging.DEBUG)
        self.recorder = recorder
        self.addFilter(CorrelationFilter())

    def emit(self, record: logging.LogRecord) -> None:
        try:
            self.recorder.record_log(record)
        except Exception:  # pragma: no cover - never break logging
            self.handleError(record)


_recorder: Optional[FlightRecorder] = None
_recorder_pid: Optional[int] = None
_handler: Optional[FlightLogHandler] = None
_lock = threading.Lock()


def recorder(role: str = "worker") -> FlightRecorder:
    """The process-wide recorder (per-pid: fork children get their own).

    Lazily installs the log tee on the ``repro`` logger the first time a
    process asks — but only when the plane is enabled, so the default
    environment never grows an extra handler.
    """
    global _recorder, _recorder_pid, _handler
    with _lock:
        pid = os.getpid()
        if _recorder is None or _recorder_pid != pid:
            _recorder = FlightRecorder(role=role)
            _recorder_pid = pid
            _handler = None
        if enabled() and _handler is None:
            _handler = FlightLogHandler(_recorder)
            logging.getLogger("repro").addHandler(_handler)
        return _recorder


def reset_for_tests() -> None:
    """Drop the singleton (and its log tee) so tests re-run the lazy
    setup under their own environment."""
    global _recorder, _recorder_pid, _handler
    with _lock:
        if _handler is not None:
            logging.getLogger("repro").removeHandler(_handler)
        _recorder = None
        _recorder_pid = None
        _handler = None


def read_flight_records(
    directory: Optional[Path] = None,
) -> List[Dict]:
    """Load every ``flight_*.json`` in the directory (triage helper for
    drills, tests and CI artifact collection)."""
    directory = directory if directory is not None else flight_dir()
    if directory is None:
        return []
    records = []
    try:
        paths = sorted(Path(directory).glob("flight_*.json"))
    except OSError:
        return []
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                records.append(json.load(handle))
        except (OSError, ValueError):
            continue
    return records
