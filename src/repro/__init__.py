"""DISCO reproduction: a low-overhead in-network data compressor for
energy-efficient chip multi-processors (Wang et al., DAC 2016).

This package is a full, from-scratch Python reproduction of the DISCO
system and its evaluation environment:

- :mod:`repro.compression` — cache-line compression algorithms (delta, BDI,
  FPC/SFPC, C-Pack, SC², FVC, zero-content) with Table 1 timing models;
- :mod:`repro.noc` — a cycle-level virtual-channel wormhole mesh NoC;
- :mod:`repro.core` — the DISCO router: in-network compressor engine,
  confidence-based arbitrator, shadow packets, coordinated scheduling;
- :mod:`repro.cache` — L1 caches, MSHRs, a blocking coherence directory,
  segmented compressed NUCA L2 banks, and a DRAM model;
- :mod:`repro.cmp` — the tiled CMP tying it all together, plus the five
  evaluated schemes (baseline / ideal / CC / CNC / DISCO);
- :mod:`repro.workloads` — synthetic PARSEC-like traces;
- :mod:`repro.energy` — Orion/CACTI-style energy and area models;
- :mod:`repro.experiments` — runners that regenerate every table and figure
  of the paper's evaluation section.

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for
paper-vs-measured results.
"""

__version__ = "1.0.0"
