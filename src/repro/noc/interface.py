"""Network interfaces: packetization, injection and ejection queues.

The NI is where the *scheme-dependent* compression steps of the paper's
comparison live (§4.1): CNC equips every NI with a (de)compressor that
compresses all injected and decompresses all ejected packets, charging the
algorithm's latency on both ends; DISCO's NI only pays a decompression
charge when a compressed packet reaches a destination that needs the raw
line and no router along the way found idle time to decompress it (the
mis-prediction residue of §3.2).  Those policies are injected by the
:mod:`repro.cmp.schemes` layer through :class:`repro.noc.network.Network`
hooks; the NI itself is scheme-agnostic.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, List, Optional, Tuple

from repro.noc.flit import Packet
from repro.noc.router import InputVC
from repro.noc.topology import PORT_LOCAL

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.noc.network import Network


class NetworkInterface:
    """Injection/ejection endpoint of one node."""

    def __init__(self, node: int, network: "Network"):
        self.node = node
        self.network = network
        self.config = network.config
        # One injection queue per vnet so responses never wait behind
        # requests at the source (protocol-deadlock avoidance).
        self._queues: List[Deque[Tuple[int, Packet]]] = [
            deque() for _ in range(self.config.vnets)
        ]
        self._streaming: List[Optional[Tuple[Packet, InputVC, int]]] = [
            None for _ in range(self.config.vnets)
        ]
        # Ejected packets waiting out an NI decompression charge.
        self._pending_delivery: List[Tuple[int, Packet]] = []

    # -- injection -----------------------------------------------------------
    def inject(self, packet: Packet) -> None:
        """Queue a packet for injection (applies the inject transform).

        Every injection *attempt* counts toward ``packets_injected`` — a
        packet an injected fault drops at the NI is still an attempt, and
        the drop itself lands in ``degraded.packets_dropped``, so
        ``injected == ejected + dropped + still-in-network`` holds whether
        or not faults fire (drain-time reasoning relies on it).
        """
        now = self.network.cycle
        self.network.stats.packets_injected += 1
        tracer = self.network.tracer
        if tracer is not None:
            # Lifecycle hook: the sampling decision is made here, so every
            # injection attempt (first sends, retransmit clones, acks)
            # counts toward the 1/N rate.
            tracer.on_inject(now, packet, self.node)
        faults = self.network.faults
        if faults is not None and faults.drop_at_ni(now, self.node, packet):
            if tracer is not None:
                tracer.on_ni_drop(now, packet, self.node)
            return  # injected fault: the packet vanishes before queueing
        packet.injected_cycle = now
        extra = self.network.inject_transform(self.node, packet)
        self._queues[packet.ptype.vnet].append((now + extra, packet))
        # Idle->busy transition: the NI may be asleep; wake it for the
        # cycle the packet becomes streamable.
        self.network.kernel.wake(self, now + extra)

    def has_work(self) -> bool:
        if self._pending_delivery:
            return True
        for stream in self._streaming:
            if stream is not None:
                return True
        for queue in self._queues:
            if queue:
                return True
        return False

    def tick(self, cycle: Optional[int] = None) -> None:
        self._deliver_pending()
        for vnet in range(self.config.vnets):
            self._advance_stream(vnet)

    def next_wake(self, cycle: int) -> Optional[int]:
        """Idleness contract: poll every cycle while a stream is open or a
        queue head is streamable (progress depends on VC/buffer state the
        NI cannot observe changing); otherwise sleep until the earliest
        ready deadline, or indefinitely (``inject`` /
        ``complete_ejection`` wake us)."""
        for stream in self._streaming:
            if stream is not None:
                return cycle + 1
        best: Optional[int] = None
        for queue in self._queues:
            if queue:
                ready = queue[0][0]
                if ready <= cycle:
                    return cycle + 1
                if best is None or ready < best:
                    best = ready
        for ready, _packet in self._pending_delivery:
            if ready <= cycle:
                return cycle + 1
            if best is None or ready < best:
                best = ready
        return best

    def cancel_packet(self, packet: Packet) -> bool:
        """Remove a packet from the injection queues / an open stream.

        Squash support for :mod:`repro.noc.reliability`: flits already
        streamed into the local VC are reclaimed by the VC squash; this
        only cancels state the NI itself still holds.  Returns True when
        anything was removed.
        """
        cancelled = False
        for vnet, queue in enumerate(self._queues):
            kept = [(ready, p) for ready, p in queue if p is not packet]
            if len(kept) != len(queue):
                self._queues[vnet] = deque(kept)
                cancelled = True
        for vnet, stream in enumerate(self._streaming):
            if stream is not None and stream[0] is packet:
                vc = stream[1]
                if vc.packet is None and vc.reserved:
                    vc.reserved = False  # head never entered the VC
                self._streaming[vnet] = None
                cancelled = True
        return cancelled

    def describe_backlog(self) -> str:
        """One-line queue/stream summary for wedge snapshots."""
        queued = sum(len(queue) for queue in self._queues)
        streaming = sum(
            1 for stream in self._streaming if stream is not None
        )
        return (
            f"{queued} packets queued, {streaming} streams open, "
            f"{len(self._pending_delivery)} ejections pending"
        )

    # -- checkpointing --------------------------------------------------------
    def state_dict(self) -> dict:
        """Per-vnet injection queues, open streams, and pending ejections.

        Open streams path-encode their target VC; the packets themselves
        travel live through the system's single-pickle envelope.
        """
        return {
            "version": 1,
            "queues": [list(queue) for queue in self._queues],
            "streaming": [
                (
                    None
                    if stream is None
                    else (
                        stream[0],
                        (stream[1].port, stream[1].vc_index),
                        stream[2],
                    )
                )
                for stream in self._streaming
            ],
            "pending_delivery": list(self._pending_delivery),
        }

    def load_state(self, state: dict) -> None:
        if state.get("version") != 1:
            raise ValueError(
                "unsupported NetworkInterface state version "
                f"{state.get('version')!r}"
            )
        self._queues = [deque(queue) for queue in state["queues"]]
        router = self.network.routers[self.node]
        streaming: List[Optional[Tuple[Packet, InputVC, int]]] = []
        for stream in state["streaming"]:
            if stream is None:
                streaming.append(None)
            else:
                packet, (port, vc_index), sent = stream
                streaming.append((packet, router.inputs[port][vc_index], sent))
        self._streaming = streaming
        self._pending_delivery = list(state["pending_delivery"])

    def _advance_stream(self, vnet: int) -> None:
        stream = self._streaming[vnet]
        if stream is None:
            stream = self._start_stream(vnet)
            if stream is None:
                return
        packet, vc, sent = stream
        # Hot path: read buffer fullness straight off the fabric array
        # (the local link has no in-flight credits to account for).
        fs = vc.fs
        if fs.depth - fs.flits_present[vc.vid] <= 0:
            return  # no buffer space this cycle
        is_head = sent == 0
        vc.accept_flit(packet, is_head)
        # The local router may be asleep; it has a flit to move now.
        self.network.kernel.wake(vc.router)
        self.network.stats.flits_injected += 1
        self.network.stats.buffer_writes += 1
        if is_head and self.network.tracer is not None:
            # Lifecycle hook: head flit entered the source router's local
            # input VC (the packet's first hop).
            self.network.tracer.on_hop(
                self.network.cycle, packet, self.node, PORT_LOCAL, vc.vc_index
            )
        sent += 1
        if sent == packet.size_flits:
            self._streaming[vnet] = None
        else:
            self._streaming[vnet] = (packet, vc, sent)

    def _start_stream(self, vnet: int):
        queue = self._queues[vnet]
        if not queue:
            return None
        ready, packet = queue[0]
        if ready > self.network.cycle:
            return None
        vc = self._allocate_local_vc(packet)
        if vc is None:
            return None
        queue.popleft()
        vc.reserved = True
        # Reservation alone makes the router "busy": wake it so it is
        # polling when the head flit lands (accept may still be a cycle
        # away if the buffer is momentarily full).
        self.network.kernel.wake(vc.router)
        stream = (packet, vc, 0)
        self._streaming[vnet] = stream
        return stream

    def _allocate_local_vc(self, packet: Packet) -> Optional[InputVC]:
        router = self.network.routers[self.node]
        for vc in router.inputs[PORT_LOCAL]:
            if vc.vc_index not in self.config.vnet_vcs(packet.ptype.vnet):
                continue
            if vc.is_free():
                return vc
        return None

    # -- ejection ------------------------------------------------------------
    def complete_ejection(self, packet: Packet) -> None:
        """Tail flit left the router: apply eject transform, then deliver."""
        now = self.network.cycle
        extra = self.network.eject_transform(self.node, packet)
        if extra > 0:
            self.network.stats.eject_decompress_stall_cycles += extra
            self._pending_delivery.append((now + extra, packet))
            self.network.kernel.wake(self, now + extra)
        else:
            self._deliver(packet)

    def _deliver_pending(self) -> None:
        if not self._pending_delivery:
            return
        now = self.network.cycle
        remaining = []
        for ready, packet in self._pending_delivery:
            if ready <= now:
                self._deliver(packet)
            else:
                remaining.append((ready, packet))
        self._pending_delivery = remaining

    def _deliver(self, packet: Packet) -> None:
        now = self.network.cycle
        packet.ejected_cycle = now
        self.network.stats.record_ejection(
            packet.ptype.value, now - packet.injected_cycle
        )
        if self.network.tracer is not None:
            # Lifecycle hook: mirrors record_ejection exactly, so traced
            # eject events (and packet spans) match ``packets_ejected``.
            self.network.tracer.on_eject(now, packet, self.node)
        self.network.deliver(self.node, packet)
