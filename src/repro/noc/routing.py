"""Deterministic deadlock-free routing, one algorithm per topology.

Route functions take ``(topology, current, dst)`` and return
``(out_port, vc_class)``:

- ``out_port`` — the output port at ``current`` (:data:`PORT_LOCAL` on
  arrival);
- ``vc_class`` — ``None`` when the algorithm is deadlock-free on any VC
  (XY on a mesh, star+XY on a cmesh), or ``0``/``1`` when the topology
  has wrap-around links and needs dateline escape VCs.  The router then
  restricts VC allocation to the class's half of the vnet's VCs.

The dateline rule used for torus/ring rings of size ``n``: a packet
travelling in the ``+1`` direction starts in class 0 and is in class 1
exactly when ``current > dst`` (it still has to cross the ``n-1 -> 0``
wrap); symmetrically, a ``-1``-direction packet is in class 1 when
``current < dst``.  Within one class the channel-dependency graph is
acyclic (class 0 never uses the wrap link; a class-1 chain cannot extend
past the wrap), and dimension order breaks cycles between dimensions, so
the route is deadlock-free with 2 VCs per vnet.

The legacy ``xy_route``/``xy_hops`` helpers are kept for mesh-specific
callers and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.noc.topology import (
    ConcentratedMesh2D,
    Mesh,
    PORT_EAST,
    PORT_LOCAL,
    PORT_NORTH,
    PORT_SOUTH,
    PORT_WEST,
    RING_CCW,
    RING_CW,
    Ring,
    Topology,
    Torus2D,
)

RouteDecision = Tuple[int, Optional[int]]
RouteFn = Callable[[Topology, int, int], RouteDecision]


def xy_route(mesh: Mesh, current: int, dst: int) -> int:
    """Output port at ``current`` for a packet heading to ``dst``.

    X first, then Y; returns ``PORT_LOCAL`` on arrival.  XY routing on a
    mesh is deadlock-free, which keeps the wormhole network live without a
    turn model.
    """
    cx, cy = mesh.coords(current)
    dx, dy = mesh.coords(dst)
    if cx < dx:
        return PORT_EAST
    if cx > dx:
        return PORT_WEST
    if cy > dy:
        return PORT_NORTH
    if cy < dy:
        return PORT_SOUTH
    return PORT_LOCAL


def xy_hops(mesh: Mesh, src: int, dst: int) -> int:
    """Manhattan hop distance between two nodes."""
    sx, sy = mesh.coords(src)
    dx, dy = mesh.coords(dst)
    return abs(sx - dx) + abs(sy - dy)


def route_mesh_xy(topology: Topology, current: int, dst: int) -> RouteDecision:
    """XY dimension order on a mesh; no escape class needed."""
    return xy_route(topology, current, dst), None


def _ring_step(
    current: int, dst: int, n: int, plus_port: int, minus_port: int
) -> RouteDecision:
    """One minimal step around a ring of ``n`` nodes with dateline classes.

    Ties between the two directions go to ``plus_port`` so the choice is
    deterministic and distance-symmetric pairs agree on a direction.
    """
    forward = (dst - current) % n
    backward = (current - dst) % n
    if forward <= backward:
        return plus_port, 1 if current > dst else 0
    return minus_port, 1 if current < dst else 0


def route_torus_dor(topology: Torus2D, current: int, dst: int) -> RouteDecision:
    """Dimension-order routing on a torus with a dateline per dimension."""
    cx, cy = topology.coords(current)
    dx, dy = topology.coords(dst)
    if cx != dx:
        return _ring_step(cx, dx, topology.width, PORT_EAST, PORT_WEST)
    if cy != dy:
        return _ring_step(cy, dy, topology.height, PORT_SOUTH, PORT_NORTH)
    return PORT_LOCAL, None


def route_ring_dateline(topology: Ring, current: int, dst: int) -> RouteDecision:
    """Minimal bidirectional ring routing with a dateline per direction."""
    if current == dst:
        return PORT_LOCAL, None
    return _ring_step(current, dst, topology.n_nodes, RING_CW, RING_CCW)


def route_cmesh_xy(
    topology: ConcentratedMesh2D, current: int, dst: int
) -> RouteDecision:
    """Star-up, XY over the hub mesh, star-down.  The star links form a
    tree and the hub mesh uses XY, so the union is acyclic."""
    if current == dst:
        return PORT_LOCAL, None
    if not topology.is_hub(current):
        return 1, None  # leaf: the uplink is the only way out
    dst_hub = topology.hub_of(dst)
    if current == dst_hub:
        return topology.star_port(dst), None  # descend to the leaf
    c = topology.concentration
    mesh_port = xy_route(
        topology._hub_mesh, current // c, dst_hub // c
    )
    return mesh_port, None


@dataclass(frozen=True)
class RoutingAlgorithm:
    """A named route function plus the topologies it is valid for."""

    name: str
    fn: RouteFn
    topologies: Tuple[str, ...]
    #: True when the algorithm returns dateline VC classes and therefore
    #: needs ``vcs_per_vnet >= 2`` (one escape class per half).
    needs_escape_vcs: bool = False
    description: str = field(default="", compare=False)


ROUTING_REGISTRY: Dict[str, RoutingAlgorithm] = {}


def register_routing(algorithm: RoutingAlgorithm) -> RoutingAlgorithm:
    if algorithm.name in ROUTING_REGISTRY:
        raise ValueError(f"routing {algorithm.name!r} already registered")
    ROUTING_REGISTRY[algorithm.name] = algorithm
    return algorithm


register_routing(RoutingAlgorithm(
    name="xy",
    fn=route_mesh_xy,
    topologies=("mesh",),
    description="XY dimension order (paper Table 2)",
))
register_routing(RoutingAlgorithm(
    name="dor_dateline",
    fn=route_torus_dor,
    topologies=("torus",),
    needs_escape_vcs=True,
    description="dimension order with dateline escape VCs",
))
register_routing(RoutingAlgorithm(
    name="ring_dateline",
    fn=route_ring_dateline,
    topologies=("ring",),
    needs_escape_vcs=True,
    description="minimal bidirectional ring with dateline escape VCs",
))
register_routing(RoutingAlgorithm(
    name="cmesh_xy",
    fn=route_cmesh_xy,
    topologies=("cmesh",),
    description="star ascent/descent around hub-mesh XY",
))

#: Topology name -> default routing algorithm name.
DEFAULT_ROUTING = {
    "mesh": "xy",
    "torus": "dor_dateline",
    "ring": "ring_dateline",
    "cmesh": "cmesh_xy",
}


def resolve_routing(topology_name: str, routing_name: str = "") -> RoutingAlgorithm:
    """Look up a routing algorithm and check it fits the topology.

    An empty ``routing_name`` selects the topology's default.
    """
    if not routing_name:
        routing_name = DEFAULT_ROUTING[topology_name]
    algorithm = ROUTING_REGISTRY.get(routing_name)
    if algorithm is None:
        raise ValueError(
            f"unknown routing {routing_name!r}; "
            f"choose from {sorted(ROUTING_REGISTRY)}"
        )
    if topology_name not in algorithm.topologies:
        raise ValueError(
            f"routing {routing_name!r} does not support topology "
            f"{topology_name!r} (supports {algorithm.topologies})"
        )
    return algorithm
