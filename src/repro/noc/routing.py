"""Deterministic XY dimension-order routing (paper Table 2)."""

from __future__ import annotations

from repro.noc.topology import (
    Mesh,
    PORT_EAST,
    PORT_LOCAL,
    PORT_NORTH,
    PORT_SOUTH,
    PORT_WEST,
)


def xy_route(mesh: Mesh, current: int, dst: int) -> int:
    """Output port at ``current`` for a packet heading to ``dst``.

    X first, then Y; returns ``PORT_LOCAL`` on arrival.  XY routing on a
    mesh is deadlock-free, which keeps the wormhole network live without a
    turn model.
    """
    cx, cy = mesh.coords(current)
    dx, dy = mesh.coords(dst)
    if cx < dx:
        return PORT_EAST
    if cx > dx:
        return PORT_WEST
    if cy > dy:
        return PORT_NORTH
    if cy < dy:
        return PORT_SOUTH
    return PORT_LOCAL


def xy_hops(mesh: Mesh, src: int, dst: int) -> int:
    """Manhattan hop distance between two nodes."""
    sx, sy = mesh.coords(src)
    dx, dy = mesh.coords(dst)
    return abs(sx - dx) + abs(sy - dy)
