"""The 3-stage virtual-channel router (paper §3.1, Fig. 2).

Pipeline: buffer-write + route computation (RC) -> VC allocation (VA) +
switch allocation (SA) -> switch traversal (ST) + link traversal.  The
stages are emulated by processing SA first, then VA, then RC within each
cycle, so a packet advances exactly one stage per cycle.

Flow control is credit-based: a sender inspects the downstream VC's free
slots (``depth - buffered - in flight``).  Wormhole allocates a downstream
VC to a packet from head to tail; virtual cut-through and store-and-forward
additionally require the whole packet to fit (and, for SAF, to have fully
arrived) before it advances — the property §3.3-A relies on for whole-packet
compression.

:class:`Router` exposes the hook points the DISCO router overrides:
``_post_switch_allocation`` (receives this cycle's SA losers — the
compression candidates of §3.2 step-1) and ``_on_flit_sent`` (shadow-packet
abort, step-3).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.noc.config import FlowControl, NocConfig
from repro.noc.flit import Packet
from repro.noc.topology import PORT_LOCAL

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.noc.network import Network

# InputVC states.
VC_IDLE = 0
VC_ROUTING = 1
VC_VA = 2
VC_ACTIVE = 3


class InputVC:
    """One virtual-channel buffer of one input port.

    Holds at most one packet at a time (wormhole VC allocation: the VC is
    bound to a packet from head to tail).  Buffering is tracked as flit
    counts; ``incoming`` counts flits already launched on the link toward
    this VC, so ``free_slots`` is the sender-visible credit count.
    """

    __slots__ = (
        "router",
        "port",
        "vc_index",
        "depth",
        "packet",
        "state",
        "flits_present",
        "flits_received",
        "flits_sent",
        "incoming",
        "reserved",
        "out_port",
        "out_vc_class",
        "out_vc",
        "engine_job",
        "wait_cycles",
        "credit_debt",
        "wedged_until",
    )

    def __init__(self, router: "Router", port: int, vc_index: int, depth: int):
        self.router = router
        self.port = port
        self.vc_index = vc_index
        self.depth = depth
        self.packet: Optional[Packet] = None
        self.state = VC_IDLE
        self.flits_present = 0
        self.flits_received = 0
        self.flits_sent = 0
        self.incoming = 0
        self.reserved = False
        self.out_port = -1
        #: Dateline escape-VC class picked at route computation (None when
        #: the routing algorithm is deadlock-free on any VC).
        self.out_vc_class: Optional[int] = None
        self.out_vc: Optional["InputVC"] = None
        self.engine_job = None  # set by the DISCO engine
        self.wait_cycles = 0
        #: Credits destroyed by an injected fault (repro.faults): the
        #: sender-visible credit count shrinks until the resync restores
        #: them, squeezing throughput without corrupting occupancy.
        self.credit_debt = 0
        #: Fault-injected wedge: the VC refuses to send while the network
        #: cycle is below this bound (-1 = never wedged).
        self.wedged_until = -1

    # -- credit view --------------------------------------------------------
    def free_slots(self) -> int:
        """Sender-visible credits (never negative; decompression overflow
        is absorbed by the engine's staging registers)."""
        return max(
            0, self.depth - self.flits_present - self.incoming - self.credit_debt
        )

    def occupancy(self) -> int:
        """Buffered + in-flight flits (the congestion signal DISCO reads)."""
        return self.flits_present + self.incoming

    def is_free(self) -> bool:
        return self.packet is None and not self.reserved and self.incoming == 0

    # -- lifecycle ----------------------------------------------------------
    def accept_flit(self, packet: Packet, is_head: bool) -> None:
        """Deliver one flit into the buffer (buffer-write stage)."""
        if self.incoming > 0:
            self.incoming -= 1
        if is_head:
            if self.packet is not None:
                raise RuntimeError(
                    f"VC collision at router {self.router.node} "
                    f"port {self.port} vc {self.vc_index}"
                )
            self.packet = packet
            self.reserved = False
            self.state = VC_ROUTING
            self.flits_received = 0
            self.flits_sent = 0
            self.wait_cycles = 0
        self.flits_present += 1
        self.flits_received += 1

    def force_release(self) -> int:
        """Squash-evict whatever packet state this VC holds.

        Recovery path of :mod:`repro.noc.reliability`: the invariant
        monitor empties every VC along a stalled packet's wormhole chain
        and requeues a pristine copy through the retransmission path.
        Returns the buffered flit count removed (the caller accounts for
        it in ``recovered.flits_squashed``).  Clears a fault-injected
        wedge so the repaired VC is immediately usable, and releases a
        downstream reservation whose head flit will now never arrive.
        The caller must purge in-flight arrivals targeting this VC (and
        decrement ``incoming``) *before* calling.
        """
        removed = self.flits_present
        target = self.out_vc
        if target is not None and target.packet is None and target.reserved:
            target.reserved = False
        self.release()
        self.reserved = False
        self.wedged_until = -1
        return removed

    def release(self) -> None:
        """Free the VC after the tail flit has left."""
        self.packet = None
        self.state = VC_IDLE
        self.flits_present = 0
        self.flits_received = 0
        self.flits_sent = 0
        self.out_port = -1
        self.out_vc_class = None
        self.out_vc = None
        self.engine_job = None
        self.wait_cycles = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<VC r{self.router.node} p{self.port} v{self.vc_index} "
            f"state={self.state} buf={self.flits_present}>"
        )


class Router:
    """A single fabric router; see module docstring for the pipeline model.

    The port layout is driven by the topology's per-node radix (5 on the
    Table 2 mesh, 3 on a ring, 2 on a cmesh leaf, ...); port 0 is always
    the local injection/ejection port.
    """

    def __init__(self, node: int, config: NocConfig, network: "Network"):
        self.node = node
        self.config = config
        self.network = network
        self.topology = network.topology
        self.mesh = network.topology  # legacy alias (pre-fabric callers)
        self.radix = self.topology.radix(node)
        self.inputs: List[List[InputVC]] = [
            [
                InputVC(self, port, vc, config.vc_depth)
                for vc in range(config.vcs_per_port)
            ]
            for port in range(self.radix)
        ]
        #: Flattened VC list — the per-cycle scans iterate this once.
        self.all_vcs: List[InputVC] = [
            vc for port_vcs in self.inputs for vc in port_vcs
        ]
        self._sa_rr: List[int] = [0] * self.radix  # round-robin per output port
        # Round-robin key space: (port, vc) -> port * stride + vc.  The
        # floors of 8 keep the Table 2 mesh arithmetic (stride 8, span 64)
        # bit-identical to the fixed-radix implementation.
        self._rr_stride = max(8, config.vcs_per_port)
        self._rr_span = self._rr_stride * max(8, self.radix)

    # -- queries used by DISCO and flow control ------------------------------
    def input_port_occupancy(self, port: int) -> int:
        """Total flits buffered/in-flight on one input port."""
        return sum(vc.occupancy() for vc in self.inputs[port])

    def downstream_occupancy(self, out_port: int) -> int:
        """Occupancy of the input port this output port feeds (credit_in)."""
        if out_port == PORT_LOCAL:
            return 0
        neighbor = self.topology.neighbor[self.node].get(out_port)
        if neighbor is None:
            return 0
        return self.network.routers[neighbor].input_port_occupancy(
            self.topology.neighbor_port(self.node, out_port)
        )

    def local_contention(self, out_port: int, exclude: InputVC) -> int:
        """Flits buffered locally that also head for ``out_port``
        (credit_out / competitor pressure in Eq. (1)/(2))."""
        total = 0
        for vc in self.all_vcs:
            if vc is exclude or vc.packet is None:
                continue
            if vc.out_port == out_port:
                total += vc.flits_present
        return total

    def has_work(self) -> bool:
        """Cheap idle test so the network can skip quiescent routers."""
        for vc in self.all_vcs:
            if vc.packet is not None or vc.incoming or vc.reserved:
                return True
        return False

    # -- per-cycle pipeline --------------------------------------------------
    def tick(self, cycle: Optional[int] = None) -> None:
        """One cycle: SA/ST first, then VA, then RC (stage separation)."""
        self._switch_allocation()
        self._vc_allocation()
        self._route_computation()

    # .. stage 3+2b: switch allocation and traversal ..........................
    def _switch_allocation(self) -> None:
        requests: Dict[int, List[InputVC]] = {}
        blocked: List[InputVC] = []
        for vc in self.all_vcs:
            if vc.state != VC_ACTIVE or vc.flits_present == 0:
                continue
            if not self._can_send(vc):
                vc.wait_cycles += 1
                blocked.append(vc)
                continue
            requests.setdefault(vc.out_port, []).append(vc)

        used_inputs = set()
        winners: List[InputVC] = []
        losers: List[InputVC] = []
        for out_port in sorted(requests):
            candidates = [
                vc for vc in requests[out_port] if vc.port not in used_inputs
            ]
            if not candidates:
                losers.extend(requests[out_port])
                continue
            winner = self._arbitrate(out_port, candidates)
            used_inputs.add(winner.port)
            winners.append(winner)
            losers.extend(
                vc for vc in requests[out_port] if vc is not winner
            )

        for vc in winners:
            self._send_flit(vc)
        for vc in losers:
            vc.wait_cycles += 1
            self.network.stats.sa_losses += 1
        self._post_switch_allocation(losers + blocked)

    def _can_send(self, vc: InputVC) -> bool:
        packet = vc.packet
        assert packet is not None
        if vc.wedged_until > self.network.cycle:
            return False  # fault-injected wedge (repro.faults)
        if self.config.flow_control is FlowControl.STORE_AND_FORWARD:
            if vc.flits_received < packet.size_flits:
                return False
        if vc.out_port == PORT_LOCAL:
            return self.network.can_eject(self.node)
        target = vc.out_vc
        assert target is not None
        return target.free_slots() > 0

    def _arbitrate(self, out_port: int, candidates: List[InputVC]) -> InputVC:
        """Highest effective priority wins; round-robin among equals."""
        best_priority = max(self._priority(vc) for vc in candidates)
        top = [vc for vc in candidates if self._priority(vc) == best_priority]
        pointer = self._sa_rr[out_port]
        stride, span = self._rr_stride, self._rr_span
        top.sort(key=lambda vc: ((vc.port * stride + vc.vc_index) - pointer) % span)
        self._sa_rr[out_port] = (top[0].port * stride + top[0].vc_index + 1) % span
        return top[0]

    def _priority(self, vc: InputVC) -> int:
        packet = vc.packet
        assert packet is not None
        return self.network.packet_priority(packet)

    def _send_flit(self, vc: InputVC) -> None:
        packet = vc.packet
        assert packet is not None
        stats = self.network.stats
        if vc.flits_sent == 0:
            self._on_first_flit_sent(vc)
        vc.flits_present -= 1
        vc.flits_sent += 1
        stats.buffer_reads += 1
        stats.crossbar_flits += 1
        stats.sa_grants += 1
        is_head = vc.flits_sent == 1
        is_tail = vc.flits_sent == packet.size_flits
        tracer = self.network.tracer
        if tracer is not None:
            cycle = self.network.cycle
            if is_head:
                tracer.on_switch_granted(cycle, packet, self.node, vc.out_port)
            if is_tail:
                tracer.on_tail_sent(cycle, packet, self.node, vc.out_port)
        if vc.out_port == PORT_LOCAL:
            self.network.eject_flit(self.node, packet, is_tail)
        else:
            target = vc.out_vc
            assert target is not None
            target.incoming += 1
            stats.link_flits += 1
            self.network.schedule_arrival(
                self.config.link_latency, target, packet, is_head, is_tail
            )
        if is_tail:
            if vc.flits_present != 0:
                raise RuntimeError(
                    f"tail sent with {vc.flits_present} flits still buffered"
                )
            vc.release()

    # .. stage 2a: VC allocation ..............................................
    def _vc_allocation(self) -> None:
        tracer = self.network.tracer
        for vc in self.all_vcs:
            if vc.state != VC_VA:
                continue
            packet = vc.packet
            assert packet is not None
            if vc.out_port == PORT_LOCAL:
                vc.state = VC_ACTIVE
                self.network.stats.va_grants += 1
                if tracer is not None:
                    tracer.on_vc_allocated(
                        self.network.cycle, packet, self.node, vc.out_port
                    )
                continue
            target = self._allocate_downstream_vc(vc, packet)
            if target is None:
                vc.wait_cycles += 1
                continue
            target.reserved = True
            vc.out_vc = target
            vc.state = VC_ACTIVE
            self.network.stats.va_grants += 1
            if tracer is not None:
                tracer.on_vc_allocated(
                    self.network.cycle, packet, self.node, vc.out_port
                )

    def _allocate_downstream_vc(
        self, vc: InputVC, packet: Packet
    ) -> Optional[InputVC]:
        neighbor = self.topology.neighbor[self.node].get(vc.out_port)
        assert neighbor is not None, "deterministic routing never exits the fabric"
        in_port = self.topology.neighbor_port(self.node, vc.out_port)
        whole_packet = self.config.flow_control in (
            FlowControl.VIRTUAL_CUT_THROUGH,
            FlowControl.STORE_AND_FORWARD,
        )
        if whole_packet and packet.size_flits > self.config.vc_depth:
            raise RuntimeError(
                f"{self.config.flow_control.value} needs vc_depth >= packet "
                f"size ({packet.size_flits} flits > {self.config.vc_depth})"
            )
        if vc.out_vc_class is None:
            allowed = self.config.vnet_vcs(packet.ptype.vnet)
        else:
            # Dateline routing: restrict allocation to the escape class
            # chosen at route computation.
            allowed = self.config.escape_class_vcs(
                packet.ptype.vnet, vc.out_vc_class
            )
        router = self.network.routers[neighbor]
        for candidate in router.inputs[in_port]:
            if candidate.vc_index not in allowed:
                continue
            if not candidate.is_free():
                continue
            if whole_packet and candidate.free_slots() < packet.size_flits:
                continue
            return candidate
        return None

    # .. stage 1: route computation ...........................................
    def _route_computation(self) -> None:
        tracer = self.network.tracer
        for vc in self.all_vcs:
            if vc.state != VC_ROUTING:
                continue
            packet = vc.packet
            assert packet is not None
            vc.out_port, vc.out_vc_class = self.network.route(
                self.node, packet.dst
            )
            vc.state = VC_VA
            if tracer is not None:
                tracer.on_route_computed(
                    self.network.cycle, packet, self.node, vc.out_port
                )

    # -- DISCO hook points ----------------------------------------------------
    def _post_switch_allocation(self, losers: List[InputVC]) -> None:
        """Called each cycle with the VCs that wanted but failed to send.

        The baseline router ignores them; the DISCO router feeds them to
        the arbitrator as compression candidates (§3.2 step-1).
        """

    def _on_first_flit_sent(self, vc: InputVC) -> None:
        """Called when a packet starts leaving this router.

        The DISCO router uses this to abort an in-flight (de)compression of
        the shadow packet (§3.2 step-3, non-blocking compression).
        """
