"""The 3-stage virtual-channel router (paper §3.1, Fig. 2).

Pipeline: buffer-write + route computation (RC) -> VC allocation (VA) +
switch allocation (SA) -> switch traversal (ST) + link traversal.  The
stages are emulated by processing SA first, then VA, then RC within each
cycle, so a packet advances exactly one stage per cycle.

Flow control is credit-based: a sender inspects the downstream VC's free
slots (``depth - buffered - in flight``).  Wormhole allocates a downstream
VC to a packet from head to tail; virtual cut-through and store-and-forward
additionally require the whole packet to fit (and, for SAF, to have fully
arrived) before it advances — the property §3.3-A relies on for whole-packet
compression.

State layout: every mutable numeric field of a VC lives in the fabric's
struct-of-arrays layer (:class:`repro.noc.fabric_state.FabricState`),
indexed by the VC's flat ``vid``.  :class:`InputVC` is a typed *view*
onto that layer — its properties keep every existing call site (faults,
reliability, diagnostics, the DISCO engine) working unchanged, while the
per-cycle pipeline below and the batched kernel mode
(:mod:`repro.noc.batch`) index the arrays directly.

:class:`Router` exposes the hook points the DISCO router overrides:
``_post_switch_allocation`` (receives this cycle's SA losers — the
compression candidates of §3.2 step-1) and ``_on_flit_sent`` (shadow-packet
abort, step-3).
"""

from __future__ import annotations

from bisect import insort
from operator import attrgetter
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.noc.config import FlowControl, NocConfig
from repro.noc.fabric_state import NO_CLASS, NO_PORT, NO_VC, FabricState
from repro.noc.flit import Packet
from repro.noc.topology import PORT_LOCAL

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.noc.network import Network

# InputVC states.
VC_IDLE = 0
VC_ROUTING = 1
VC_VA = 2
VC_ACTIVE = 3

_by_scan_key = attrgetter("scan_key")

#: Resolved lazily (import cycle): the stock ``Network.can_eject``, so the
#: SA hot path can tell "unmodified ejection policy" (inlinable token
#: check) from a subclass override or a test/fault monkey-patch.
_BASE_CAN_EJECT = None


def _base_can_eject():
    global _BASE_CAN_EJECT
    if _BASE_CAN_EJECT is None:
        from repro.noc.network import Network

        _BASE_CAN_EJECT = Network.can_eject
    return _BASE_CAN_EJECT


class InputVC:
    """One virtual-channel buffer of one input port (a fabric-state view).

    Holds at most one packet at a time (wormhole VC allocation: the VC is
    bound to a packet from head to tail).  Buffering is tracked as flit
    counts; ``incoming`` counts flits already launched on the link toward
    this VC, so ``free_slots`` is the sender-visible credit count.

    The object itself holds only *structure* (router, port, vc index, the
    flat ``vid``); every mutable field reads/writes the fabric's arrays.
    """

    __slots__ = ("router", "port", "vc_index", "scan_key", "depth", "vid", "fs")

    def __init__(
        self, router: "Router", port: int, vc_index: int, depth: int,
        fs: FabricState, vid: int,
    ):
        self.router = router
        self.port = port
        self.vc_index = vc_index
        #: Position in the router's ``all_vcs`` scan order — keeps the
        #: bound-VC active list sorted identically to a full scan.
        self.scan_key = 0
        self.depth = depth
        self.fs = fs
        self.vid = vid
        fs.views[vid] = self

    # -- typed view onto the fabric arrays -----------------------------------
    @property
    def packet(self) -> Optional[Packet]:
        return self.fs.packet[self.vid]

    @packet.setter
    def packet(self, value: Optional[Packet]) -> None:
        self.fs.packet[self.vid] = value

    @property
    def state(self) -> int:
        return self.fs.state[self.vid]

    @state.setter
    def state(self, value: int) -> None:
        self.fs.state[self.vid] = value

    @property
    def flits_present(self) -> int:
        return self.fs.flits_present[self.vid]

    @flits_present.setter
    def flits_present(self, value: int) -> None:
        self.fs.flits_present[self.vid] = value

    @property
    def flits_received(self) -> int:
        return self.fs.flits_received[self.vid]

    @flits_received.setter
    def flits_received(self, value: int) -> None:
        self.fs.flits_received[self.vid] = value

    @property
    def flits_sent(self) -> int:
        return self.fs.flits_sent[self.vid]

    @flits_sent.setter
    def flits_sent(self, value: int) -> None:
        self.fs.flits_sent[self.vid] = value

    @property
    def incoming(self) -> int:
        return self.fs.incoming[self.vid]

    @incoming.setter
    def incoming(self, value: int) -> None:
        self.fs.incoming[self.vid] = value

    @property
    def reserved(self) -> bool:
        return bool(self.fs.reserved[self.vid])

    @reserved.setter
    def reserved(self, value: bool) -> None:
        self.fs.reserved[self.vid] = 1 if value else 0

    @property
    def out_port(self) -> int:
        return self.fs.out_port[self.vid]

    @out_port.setter
    def out_port(self, value: int) -> None:
        self.fs.out_port[self.vid] = value

    @property
    def out_vc_class(self) -> Optional[int]:
        value = self.fs.out_vc_class[self.vid]
        return None if value == NO_CLASS else value

    @out_vc_class.setter
    def out_vc_class(self, value: Optional[int]) -> None:
        self.fs.out_vc_class[self.vid] = NO_CLASS if value is None else value

    @property
    def out_vc(self) -> Optional["InputVC"]:
        target = self.fs.out_vc[self.vid]
        return None if target == NO_VC else self.fs.views[target]

    @out_vc.setter
    def out_vc(self, value: Optional["InputVC"]) -> None:
        self.fs.out_vc[self.vid] = NO_VC if value is None else value.vid

    @property
    def engine_job(self):
        return self.fs.engine_job[self.vid]

    @engine_job.setter
    def engine_job(self, value) -> None:
        self.fs.engine_job[self.vid] = value

    @property
    def wait_cycles(self) -> int:
        return self.fs.wait_cycles[self.vid]

    @wait_cycles.setter
    def wait_cycles(self, value: int) -> None:
        self.fs.wait_cycles[self.vid] = value

    @property
    def credit_debt(self) -> int:
        return self.fs.credit_debt[self.vid]

    @credit_debt.setter
    def credit_debt(self, value: int) -> None:
        self.fs.credit_debt[self.vid] = value

    @property
    def wedged_until(self) -> int:
        return self.fs.wedged_until[self.vid]

    @wedged_until.setter
    def wedged_until(self, value: int) -> None:
        self.fs.wedged_until[self.vid] = value

    # -- credit view --------------------------------------------------------
    def free_slots(self) -> int:
        """Sender-visible credits (never negative; decompression overflow
        is absorbed by the engine's staging registers)."""
        fs = self.fs
        i = self.vid
        slots = (
            fs.depth - fs.flits_present[i] - fs.incoming[i] - fs.credit_debt[i]
        )
        return slots if slots > 0 else 0

    def occupancy(self) -> int:
        """Buffered + in-flight flits (the congestion signal DISCO reads)."""
        fs = self.fs
        i = self.vid
        return fs.flits_present[i] + fs.incoming[i]

    def is_free(self) -> bool:
        fs = self.fs
        i = self.vid
        return (
            fs.packet[i] is None
            and not fs.reserved[i]
            and fs.incoming[i] == 0
        )

    # -- lifecycle ----------------------------------------------------------
    def accept_flit(self, packet: Packet, is_head: bool) -> None:
        """Deliver one flit into the buffer (buffer-write stage)."""
        fs = self.fs
        i = self.vid
        if fs.incoming[i] > 0:
            fs.incoming[i] -= 1
        if is_head:
            if fs.packet[i] is not None:
                raise RuntimeError(
                    f"VC collision at router {self.router.node} "
                    f"port {self.port} vc {self.vc_index}"
                )
            fs.packet[i] = packet
            self.router._bind_vc(self)
            fs.reserved[i] = 0
            fs.state[i] = VC_ROUTING
            fs.flits_received[i] = 0
            fs.flits_sent[i] = 0
            fs.wait_cycles[i] = 0
        fs.flits_present[i] += 1
        fs.flits_received[i] += 1

    def force_release(self) -> int:
        """Squash-evict whatever packet state this VC holds.

        Recovery path of :mod:`repro.noc.reliability`: the invariant
        monitor empties every VC along a stalled packet's wormhole chain
        and requeues a pristine copy through the retransmission path.
        Returns the buffered flit count removed (the caller accounts for
        it in ``recovered.flits_squashed``).  Clears a fault-injected
        wedge so the repaired VC is immediately usable, and releases a
        downstream reservation whose head flit will now never arrive.
        The caller must purge in-flight arrivals targeting this VC (and
        decrement ``incoming``) *before* calling.
        """
        fs = self.fs
        i = self.vid
        removed = fs.flits_present[i]
        target = fs.out_vc[i]
        if (
            target != NO_VC
            and fs.packet[target] is None
            and fs.reserved[target]
        ):
            fs.reserved[target] = 0
        self.release()
        fs.reserved[i] = 0
        fs.wedged_until[i] = -1
        return removed

    def release(self) -> None:
        """Free the VC after the tail flit has left."""
        fs = self.fs
        i = self.vid
        if fs.packet[i] is not None:
            self.router._unbind_vc(self)
        fs.packet[i] = None
        fs.state[i] = VC_IDLE
        fs.flits_present[i] = 0
        fs.flits_received[i] = 0
        fs.flits_sent[i] = 0
        fs.out_port[i] = NO_PORT
        fs.out_vc_class[i] = NO_CLASS
        fs.out_vc[i] = NO_VC
        fs.engine_job[i] = None
        fs.wait_cycles[i] = 0

    # -- checkpointing -------------------------------------------------------
    def state_dict(self) -> dict:
        """Dynamic buffer state; structural fields (router/port/depth) are
        reconstructed, and the downstream VC reference is path-encoded.

        The numeric fields are also captured wholesale by the fabric's
        :meth:`~repro.noc.fabric_state.FabricState.state_dict` (the
        authoritative copy on restore); they are repeated here so a VC
        snapshot stays self-describing for diagnostics and tests.

        ``engine_job`` is deliberately absent: the DISCO engine owns the
        job objects and re-links them when its own state loads.
        """
        out_vc = self.out_vc
        return {
            "packet": self.packet,
            "state": self.state,
            "flits_present": self.flits_present,
            "flits_received": self.flits_received,
            "flits_sent": self.flits_sent,
            "incoming": self.incoming,
            "reserved": self.reserved,
            "out_port": self.out_port,
            "out_vc_class": self.out_vc_class,
            "out_vc": (
                None
                if out_vc is None
                else (out_vc.router.node, out_vc.port, out_vc.vc_index)
            ),
            "wait_cycles": self.wait_cycles,
            "credit_debt": self.credit_debt,
            "wedged_until": self.wedged_until,
        }

    def load_state(self, state: dict, network: "Network") -> None:
        self.packet = state["packet"]
        self.state = state["state"]
        self.flits_present = state["flits_present"]
        self.flits_received = state["flits_received"]
        self.flits_sent = state["flits_sent"]
        self.incoming = state["incoming"]
        self.reserved = state["reserved"]
        self.out_port = state["out_port"]
        self.out_vc_class = state["out_vc_class"]
        path = state["out_vc"]
        if path is None:
            self.out_vc = None
        else:
            node, port, vc_index = path
            self.out_vc = network.routers[node].inputs[port][vc_index]
        self.engine_job = None
        self.wait_cycles = state["wait_cycles"]
        self.credit_debt = state["credit_debt"]
        self.wedged_until = state["wedged_until"]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<VC r{self.router.node} p{self.port} v{self.vc_index} "
            f"state={self.state} buf={self.flits_present}>"
        )


class Router:
    """A single fabric router; see module docstring for the pipeline model.

    The port layout is driven by the topology's per-node radix (5 on the
    Table 2 mesh, 3 on a ring, 2 on a cmesh leaf, ...); port 0 is always
    the local injection/ejection port.
    """

    def __init__(self, node: int, config: NocConfig, network: "Network"):
        self.node = node
        self.config = config
        self.network = network
        self.topology = network.topology
        self.mesh = network.topology  # legacy alias (pre-fabric callers)
        self.radix = self.topology.radix(node)
        fs = network.fabric
        self.fs = fs
        self.inputs: List[List[InputVC]] = [
            [
                InputVC(
                    self, port, vc, config.vc_depth, fs, fs.vid(node, port, vc)
                )
                for vc in range(config.vcs_per_port)
            ]
            for port in range(self.radix)
        ]
        #: Flattened VC list (diagnostics, faults, the invariant monitor).
        self.all_vcs: List[InputVC] = [
            vc for port_vcs in self.inputs for vc in port_vcs
        ]
        for index, vc in enumerate(self.all_vcs):
            vc.scan_key = index
        #: This router's contiguous slice of the fabric's VC id space.
        self._vid_lo = fs.vc_base[node]
        self._vid_hi = self._vid_lo + len(self.all_vcs)
        #: Bound-VC active list: every VC currently holding a packet, kept
        #: sorted by ``scan_key``.  The per-cycle pipeline stages iterate
        #: this short list instead of scanning all ``radix × vcs_per_port``
        #: buffers — iteration order (and thus arbitration) is identical
        #: to a full scan because the sort key *is* the scan position.
        self._bound: List[InputVC] = []
        self._sa_rr: List[int] = [0] * self.radix  # round-robin per output port
        # Round-robin key space: (port, vc) -> port * stride + vc.  The
        # floors of 8 keep the Table 2 mesh arithmetic (stride 8, span 64)
        # bit-identical to the fixed-radix implementation.
        self._rr_stride = max(8, config.vcs_per_port)
        self._rr_span = self._rr_stride * max(8, self.radix)
        # Hot-path precomputation.  The flags let the per-cycle pipeline
        # skip hook dispatch entirely on the plain router (subclasses that
        # override a hook are detected once here, not per flit).
        self._saf = config.flow_control is FlowControl.STORE_AND_FORWARD
        self._whole_packet = config.flow_control in (
            FlowControl.VIRTUAL_CUT_THROUGH,
            FlowControl.STORE_AND_FORWARD,
        )
        self._link_latency = config.link_latency
        self._plain_can_send = type(self)._can_send is Router._can_send
        self._sa_hook = (
            type(self)._post_switch_allocation
            is not Router._post_switch_allocation
        )
        self._ff_hook = (
            type(self)._on_first_flit_sent is not Router._on_first_flit_sent
        )
        #: (out_port, vnet, vc_class) -> downstream candidate VCs in scan
        #: order; the topology is static so the lists never change.
        self._va_candidates: Dict[tuple, List[InputVC]] = {}

    # -- bound-VC bookkeeping -------------------------------------------------
    def _bind_vc(self, vc: InputVC) -> None:
        insort(self._bound, vc, key=_by_scan_key)

    def _unbind_vc(self, vc: InputVC) -> None:
        self._bound.remove(vc)

    # -- queries used by DISCO and flow control ------------------------------
    def input_port_occupancy(self, port: int) -> int:
        """Total flits buffered/in-flight on one input port."""
        fs = self.fs
        lo = self._vid_lo + port * fs.vcs_per_port
        hi = lo + fs.vcs_per_port
        fp = fs.flits_present
        inc = fs.incoming
        total = 0
        for i in range(lo, hi):
            total += fp[i] + inc[i]
        return total

    def downstream_occupancy(self, out_port: int) -> int:
        """Occupancy of the input port this output port feeds (credit_in)."""
        if out_port == PORT_LOCAL:
            return 0
        neighbor = self.topology.neighbor[self.node].get(out_port)
        if neighbor is None:
            return 0
        return self.network.routers[neighbor].input_port_occupancy(
            self.topology.neighbor_port(self.node, out_port)
        )

    def local_contention(self, out_port: int, exclude: InputVC) -> int:
        """Flits buffered locally that also head for ``out_port``
        (credit_out / competitor pressure in Eq. (1)/(2)).

        Scans every buffer rather than the bound-VC list: it is off the
        per-flit hot path and diagnostics poke VC state directly.
        """
        fs = self.fs
        ports = fs.out_port
        fp = fs.flits_present
        exclude_vid = exclude.vid
        total = 0
        for i in range(self._vid_lo, self._vid_hi):
            if i != exclude_vid and ports[i] == out_port:
                total += fp[i]
        return total

    def has_work(self) -> bool:
        """Cheap idle test so the network can skip quiescent routers."""
        if self._bound:
            return True
        fs = self.fs
        inc = fs.incoming
        res = fs.reserved
        for i in range(self._vid_lo, self._vid_hi):
            if inc[i] or res[i]:
                return True
        return False

    # -- per-cycle pipeline --------------------------------------------------
    def tick(self, cycle: Optional[int] = None) -> None:
        """One cycle: SA/ST first, then VA, then RC (stage separation).

        A single pass over the bound VCs snapshots each stage's work list,
        then the stages run in pipeline order — identical to three separate
        scans because a VC is in exactly one state at scan time and stage
        processing never moves a VC into an *earlier* stage's set within
        the same cycle.
        """
        fs = self.fs
        states = fs.state
        fp = fs.flits_present
        sa = va = rc = None
        for vc in self._bound:
            i = vc.vid
            state = states[i]
            if state == VC_ACTIVE:
                if fp[i]:
                    if sa is None:
                        sa = [vc]
                    else:
                        sa.append(vc)
            elif state == VC_VA:
                if va is None:
                    va = [vc]
                else:
                    va.append(vc)
            elif state == VC_ROUTING:
                if rc is None:
                    rc = [vc]
                else:
                    rc.append(vc)
        if sa is not None:
            self._switch_allocation(sa)
        if va is not None:
            self._vc_allocation(va)
        if rc is not None:
            self._route_computation(rc)

    # .. stage 3+2b: switch allocation and traversal ..........................
    def _switch_allocation(self, active: List[InputVC]) -> None:
        network = self.network
        now = network.kernel.cycle
        saf = self._saf
        plain = self._plain_can_send
        fs = self.fs
        out_ports = fs.out_port
        wedged = fs.wedged_until
        fp = fs.flits_present
        inc = fs.incoming
        debt = fs.credit_debt
        out_vcs = fs.out_vc
        depth = fs.depth
        # The eject-token pool only changes when a flit is actually sent,
        # and at most one local-port winner sends per cycle, so the check
        # hoists out of the partition loop — but only for the stock
        # ejection policy: a replaced ``can_eject`` (subclass or
        # test/fault monkey-patch) must be consulted per VC.
        eject_call = None
        if plain:
            eject_fn = network.can_eject
            if getattr(eject_fn, "__func__", None) is _base_can_eject():
                eject_ok = fs.eject_tokens[self.node] > 0
            else:
                eject_call = eject_fn
        else:
            eject_ok = False
        single: Optional[List[InputVC]] = None  # all requesters, one port
        requests: Optional[Dict[int, List[InputVC]]] = None
        blocked: Optional[List[InputVC]] = None
        for vc in active:
            i = vc.vid
            if plain:
                out_port = out_ports[i]
                if wedged[i] > now:
                    ok = False  # fault-injected wedge (repro.faults)
                elif saf and fs.flits_received[i] < fs.packet[i].size_flits:
                    ok = False
                elif out_port == PORT_LOCAL:
                    ok = (
                        eject_ok
                        if eject_call is None
                        else eject_call(self.node)
                    )
                else:
                    t = out_vcs[i]
                    ok = (depth - fp[t] - inc[t] - debt[t]) > 0
            else:
                ok = self._can_send(vc)
                out_port = out_ports[i]
            if not ok:
                fs.wait_cycles[i] += 1
                if blocked is None:
                    blocked = [vc]
                else:
                    blocked.append(vc)
            elif requests is not None:
                requests.setdefault(out_port, []).append(vc)
            elif single is None:
                single = [vc]
            elif out_ports[single[0].vid] == out_port:
                single.append(vc)
            else:
                requests = {out_ports[single[0].vid]: single, out_port: [vc]}
                single = None

        losers: Optional[List[InputVC]] = None
        if single is not None:
            # The overwhelmingly common shape (one output port requested):
            # no cross-port input conflicts are possible, so the used-input
            # filtering reduces to a single arbitration.
            winner = self._arbitrate(out_ports[single[0].vid], single)
            self._send_flit(winner)
            if len(single) > 1:
                losers = [vc for vc in single if vc is not winner]
        elif requests is not None:
            used_inputs = set()
            winners: List[InputVC] = []
            losers = []
            for out_port in sorted(requests):
                candidates = [
                    vc for vc in requests[out_port] if vc.port not in used_inputs
                ]
                if not candidates:
                    losers.extend(requests[out_port])
                    continue
                winner = self._arbitrate(out_port, candidates)
                used_inputs.add(winner.port)
                winners.append(winner)
                losers.extend(
                    vc for vc in requests[out_port] if vc is not winner
                )
            for vc in winners:
                self._send_flit(vc)
            if not losers:
                losers = None

        if losers is not None:
            stats = network.stats
            wait = fs.wait_cycles
            for vc in losers:
                wait[vc.vid] += 1
                stats.sa_losses += 1
        if self._sa_hook and (losers is not None or blocked is not None):
            self._post_switch_allocation((losers or []) + (blocked or []))

    def _can_send(self, vc: InputVC) -> bool:
        packet = vc.packet
        assert packet is not None
        if vc.wedged_until > self.network.cycle:
            return False  # fault-injected wedge (repro.faults)
        if self.config.flow_control is FlowControl.STORE_AND_FORWARD:
            if vc.flits_received < packet.size_flits:
                return False
        if vc.out_port == PORT_LOCAL:
            return self.network.can_eject(self.node)
        target = vc.out_vc
        assert target is not None
        return target.free_slots() > 0

    def _arbitrate(self, out_port: int, candidates: List[InputVC]) -> InputVC:
        """Highest effective priority wins; round-robin among equals."""
        stride, span = self._rr_stride, self._rr_span
        if len(candidates) == 1:
            winner = candidates[0]
        else:
            priorities = [self._priority(vc) for vc in candidates]
            best_priority = max(priorities)
            top = [
                vc
                for vc, priority in zip(candidates, priorities)
                if priority == best_priority
            ]
            pointer = self._sa_rr[out_port]
            top.sort(
                key=lambda vc: ((vc.port * stride + vc.vc_index) - pointer) % span
            )
            winner = top[0]
        self._sa_rr[out_port] = (winner.port * stride + winner.vc_index + 1) % span
        return winner

    def _priority(self, vc: InputVC) -> int:
        packet = self.fs.packet[vc.vid]
        assert packet is not None
        return self.network.packet_priority(packet)

    def _send_flit(self, vc: InputVC) -> None:
        fs = self.fs
        i = vc.vid
        packet = fs.packet[i]
        network = self.network
        stats = network.stats
        if fs.flits_sent[i] == 0 and self._ff_hook:
            self._on_first_flit_sent(vc)
        fs.flits_present[i] -= 1
        sent = fs.flits_sent[i] + 1
        fs.flits_sent[i] = sent
        stats.buffer_reads += 1
        stats.crossbar_flits += 1
        stats.sa_grants += 1
        is_head = sent == 1
        is_tail = sent == packet.size_flits
        tracer = network.tracer
        out_port = fs.out_port[i]
        if tracer is not None:
            cycle = network.kernel.cycle
            if is_head:
                tracer.on_switch_granted(cycle, packet, self.node, out_port)
            if is_tail:
                tracer.on_tail_sent(cycle, packet, self.node, out_port)
        if out_port == PORT_LOCAL:
            network.eject_flit(self.node, packet, is_tail)
        else:
            t = fs.out_vc[i]
            fs.incoming[t] += 1
            stats.link_flits += 1
            network.arrival_queue.schedule(
                network.kernel.cycle + self._link_latency,
                fs.views[t],
                packet,
                is_head,
                is_tail,
            )
        if is_tail:
            if fs.flits_present[i] != 0:
                raise RuntimeError(
                    f"tail sent with {fs.flits_present[i]} flits still buffered"
                )
            vc.release()

    # .. stage 2a: VC allocation ..............................................
    def _vc_allocation(self, vcs: List[InputVC]) -> None:
        network = self.network
        tracer = network.tracer
        stats = network.stats
        fs = self.fs
        states = fs.state
        for vc in vcs:
            i = vc.vid
            packet = fs.packet[i]
            out_port = fs.out_port[i]
            if out_port == PORT_LOCAL:
                states[i] = VC_ACTIVE
                stats.va_grants += 1
                if tracer is not None:
                    tracer.on_vc_allocated(
                        network.kernel.cycle, packet, self.node, out_port
                    )
                continue
            target = self._allocate_downstream_vc(vc, packet)
            if target is None:
                fs.wait_cycles[i] += 1
                continue
            fs.reserved[target.vid] = 1
            fs.out_vc[i] = target.vid
            states[i] = VC_ACTIVE
            stats.va_grants += 1
            if tracer is not None:
                tracer.on_vc_allocated(
                    network.kernel.cycle, packet, self.node, out_port
                )

    def _allocate_downstream_vc(
        self, vc: InputVC, packet: Packet
    ) -> Optional[InputVC]:
        whole_packet = self._whole_packet
        if whole_packet and packet.size_flits > self.config.vc_depth:
            raise RuntimeError(
                f"{self.config.flow_control.value} needs vc_depth >= packet "
                f"size ({packet.size_flits} flits > {self.config.vc_depth})"
            )
        fs = self.fs
        key = (
            fs.out_port[vc.vid],
            packet.ptype.vnet,
            fs.out_vc_class[vc.vid],
        )
        candidates = self._va_candidates.get(key)
        if candidates is None:
            candidates = self._build_va_candidates(*key)
            self._va_candidates[key] = candidates
        size = packet.size_flits
        packets = fs.packet
        res = fs.reserved
        inc = fs.incoming
        for candidate in candidates:
            c = candidate.vid
            if packets[c] is None and not res[c] and inc[c] == 0:
                if whole_packet and candidate.free_slots() < size:
                    continue
                return candidate
        return None

    def _build_va_candidates(
        self, out_port: int, vnet: int, vc_class: int
    ) -> List[InputVC]:
        """Downstream VCs eligible for (out_port, vnet, class), scan order.

        The topology never changes mid-run, so the filtered list is built
        once per key and reused every VC allocation.  ``vc_class`` uses
        the array encoding (``NO_CLASS`` = unconstrained).
        """
        neighbor = self.topology.neighbor[self.node].get(out_port)
        assert neighbor is not None, "deterministic routing never exits the fabric"
        in_port = self.topology.neighbor_port(self.node, out_port)
        if vc_class == NO_CLASS:
            allowed = self.config.vnet_vcs(vnet)
        else:
            # Dateline routing: restrict allocation to the escape class
            # chosen at route computation.
            allowed = self.config.escape_class_vcs(vnet, vc_class)
        router = self.network.routers[neighbor]
        return [
            candidate
            for candidate in router.inputs[in_port]
            if candidate.vc_index in allowed
        ]

    # .. stage 1: route computation ...........................................
    def _route_computation(self, vcs: List[InputVC]) -> None:
        network = self.network
        tracer = network.tracer
        route = network.route
        node = self.node
        fs = self.fs
        for vc in vcs:
            i = vc.vid
            packet = fs.packet[i]
            out_port, vc_class = route(node, packet.dst)
            fs.out_port[i] = out_port
            fs.out_vc_class[i] = NO_CLASS if vc_class is None else vc_class
            fs.state[i] = VC_VA
            if tracer is not None:
                tracer.on_route_computed(
                    network.kernel.cycle, packet, node, out_port
                )

    # -- checkpointing --------------------------------------------------------
    def state_dict(self) -> dict:
        """Every VC's dynamic state plus the SA round-robin pointers.

        Derived structures are skipped: ``_va_candidates`` is a pure cache
        over the static topology and ``_bound`` is rebuilt from the VCs
        that hold a packet (its sort key is the scan position, so the
        rebuild is order-identical to the incremental maintenance).
        """
        return {
            "version": 1,
            "vcs": [vc.state_dict() for vc in self.all_vcs],
            "sa_rr": list(self._sa_rr),
        }

    def load_state(self, state: dict) -> None:
        if state.get("version") != 1:
            raise ValueError(
                f"unsupported Router state version {state.get('version')!r}"
            )
        for vc, vc_state in zip(self.all_vcs, state["vcs"]):
            vc.load_state(vc_state, self.network)
        self._sa_rr = list(state["sa_rr"])
        self._bound = sorted(
            (vc for vc in self.all_vcs if vc.packet is not None),
            key=_by_scan_key,
        )

    # -- DISCO hook points ----------------------------------------------------
    def _post_switch_allocation(self, losers: List[InputVC]) -> None:
        """Called each cycle with the VCs that wanted but failed to send.

        The baseline router ignores them; the DISCO router feeds them to
        the arbitrator as compression candidates (§3.2 step-1).
        """

    def _on_first_flit_sent(self, vc: InputVC) -> None:
        """Called when a packet starts leaving this router.

        The DISCO router uses this to abort an in-flight (de)compression of
        the shadow packet (§3.2 step-3, non-blocking compression).
        """
