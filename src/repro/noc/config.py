"""Structural NoC parameters (paper Table 2 defaults)."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class FlowControl(enum.Enum):
    """Flow-control policies discussed in §3.3-A.

    ``WORMHOLE`` (the Table 2 baseline) lets a packet's flits spread over
    several routers; ``VIRTUAL_CUT_THROUGH`` and ``STORE_AND_FORWARD`` keep
    whole packets within one node (a downstream VC is only granted when it
    can hold the entire packet), which is the property that makes
    whole-packet in-network compression trivially safe.
    """

    WORMHOLE = "wormhole"
    VIRTUAL_CUT_THROUGH = "vct"
    STORE_AND_FORWARD = "saf"


@dataclass(frozen=True)
class NocConfig:
    """Mesh/router structural configuration.

    Defaults reproduce the paper's Table 2: 4x4 mesh, XY routing, 3
    pipeline stages, wormhole flow control, 8-flit buffers, 2 virtual
    channels, 64-bit flits.
    """

    width: int = 4
    height: int = 4
    vnets: int = 2
    vcs_per_vnet: int = 1
    vc_depth: int = 8
    flit_bytes: int = 8
    flow_control: FlowControl = FlowControl.WORMHOLE
    link_latency: int = 1
    ejection_bandwidth: int = 1  # flits per cycle per node

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ValueError("mesh dimensions must be positive")
        if self.vnets < 1 or self.vcs_per_vnet < 1:
            raise ValueError("need at least one VC per vnet")
        if self.vc_depth < 1:
            raise ValueError("vc_depth must be positive")
        if self.flit_bytes < 1:
            raise ValueError("flit_bytes must be positive")
        if self.link_latency < 1:
            raise ValueError("link_latency must be at least 1 cycle")
        if self.ejection_bandwidth < 1:
            raise ValueError("ejection_bandwidth must be at least 1")

    @property
    def n_nodes(self) -> int:
        return self.width * self.height

    @property
    def vcs_per_port(self) -> int:
        return self.vnets * self.vcs_per_vnet

    def vnet_vcs(self, vnet: int):
        """The VC indices belonging to a virtual network."""
        start = vnet * self.vcs_per_vnet
        return range(start, start + self.vcs_per_vnet)
