"""Structural NoC parameters (paper Table 2 defaults)."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.noc.topology import TOPOLOGY_NAMES, Topology, build_topology, fabric_n_nodes


class FlowControl(enum.Enum):
    """Flow-control policies discussed in §3.3-A.

    ``WORMHOLE`` (the Table 2 baseline) lets a packet's flits spread over
    several routers; ``VIRTUAL_CUT_THROUGH`` and ``STORE_AND_FORWARD`` keep
    whole packets within one node (a downstream VC is only granted when it
    can hold the entire packet), which is the property that makes
    whole-packet in-network compression trivially safe.
    """

    WORMHOLE = "wormhole"
    VIRTUAL_CUT_THROUGH = "vct"
    STORE_AND_FORWARD = "saf"


@dataclass(frozen=True)
class NocConfig:
    """Fabric/router structural configuration.

    Defaults reproduce the paper's Table 2: 4x4 mesh, XY routing, 3
    pipeline stages, wormhole flow control, 8-flit buffers, 2 virtual
    channels, 64-bit flits.

    ``topology`` selects the fabric shape ("mesh", "torus", "ring",
    "cmesh"); ``routing`` selects a registered algorithm ("" picks the
    topology's deadlock-free default).  ``width``/``height`` shape the
    grid fabrics; the ring reuses ``width * height`` as its node count
    and the cmesh multiplies it by ``concentration``.
    """

    width: int = 4
    height: int = 4
    vnets: int = 2
    vcs_per_vnet: int = 1
    vc_depth: int = 8
    flit_bytes: int = 8
    flow_control: FlowControl = FlowControl.WORMHOLE
    link_latency: int = 1
    ejection_bandwidth: int = 1  # flits per cycle per node
    topology: str = "mesh"
    routing: str = ""  # "" -> the topology's default algorithm
    concentration: int = 4  # terminals per hub (cmesh only)
    max_line_bytes: int = 64  # largest cache line the fabric carries
    # -- reliability layer (repro.noc.reliability; all off by default so
    # the Table 2 mesh stays bit-identical to the golden digests) --------
    #: Enable the NI retransmission protocol: per-(src, dst, vnet)
    #: sequence numbers + CRC, a bounded source replay buffer, duplicate
    #: suppression and ack/NACK-driven re-delivery.
    retransmission: bool = False
    #: Cycles without an ack before the first retransmission of a packet.
    #: The clock starts at ``Network.send``, so the window must cover the
    #: source NI queueing delay + fabric traversal + the ack's return trip
    #: under congestion (p99 one-way latency at campaign loads is ~800
    #: cycles, and the ack+retransmit load feeds back into it); too small
    #: a value turns ordinary queueing into a retransmit storm of
    #: duplicates.  At 4096 a fault-free campaign retransmits nothing.
    retx_timeout: int = 4096
    #: Retransmission attempts per packet before it is abandoned to the
    #: integrity layer's loss detection.
    retx_max_retries: int = 8
    #: Cap on the exponential backoff multiplier (timeout, 2x, 4x, ...).
    retx_backoff_cap: int = 8
    #: Max simultaneously outstanding retransmissions per flow (bounds a
    #: retransmit storm; further due entries wait for the next deadline).
    retx_inflight_cap: int = 4
    #: Unacked packets retained per flow in the source replay buffer;
    #: beyond this the oldest entry is evicted (and counted).
    retx_window: int = 32
    #: Invariant-monitor check interval in cycles; 0 disables the monitor
    #: (the default — no component is registered, digests unchanged).
    invariant_interval: int = 0
    #: Consecutive no-progress checks before a VC is declared stalled.
    invariant_patience: int = 8
    #: When the monitor finds a stalled VC: squash it and requeue the
    #: victim through the retransmission path (needs ``retransmission``)
    #: instead of raising :class:`InvariantViolation`.
    invariant_recovery: bool = False
    # -- telemetry layer (repro.telemetry; all off by default so the
    # Table 2 mesh stays bit-identical to the golden digests) ------------
    #: Time-series sampling interval in cycles; 0 disables the sampler
    #: (the default — no component is registered, digests unchanged).
    stats_interval: int = 0
    #: Ring-buffer capacity of the sampler: at most this many windows are
    #: retained (oldest evicted first), bounding memory on long runs.
    stats_window_cap: int = 256
    #: Enable per-packet lifecycle tracing (repro.telemetry.tracer).
    trace_packets: bool = False
    #: Trace every Nth injected packet (1 = every packet).
    trace_sample_interval: int = 1
    #: Hard cap on recorded trace events; overflow is counted, not stored.
    trace_event_cap: int = 200_000

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ValueError("fabric dimensions must be positive")
        if self.vnets < 1 or self.vcs_per_vnet < 1:
            raise ValueError("need at least one VC per vnet")
        if self.vc_depth < 1:
            raise ValueError("vc_depth must be positive")
        if self.flit_bytes < 1:
            raise ValueError("flit_bytes must be positive")
        if self.link_latency < 1:
            raise ValueError("link_latency must be at least 1 cycle")
        if self.ejection_bandwidth < 1:
            raise ValueError("ejection_bandwidth must be at least 1")
        if self.concentration < 1:
            raise ValueError("concentration must be at least 1")
        if self.max_line_bytes < 1:
            raise ValueError("max_line_bytes must be positive")
        if self.retx_timeout < 1:
            raise ValueError("retx_timeout must be at least 1 cycle")
        if self.retx_max_retries < 1:
            raise ValueError("retx_max_retries must be at least 1")
        if self.retx_backoff_cap < 1:
            raise ValueError("retx_backoff_cap must be at least 1")
        if self.retx_inflight_cap < 1:
            raise ValueError("retx_inflight_cap must be at least 1")
        if self.retx_window < 1:
            raise ValueError("retx_window must be at least 1")
        if self.invariant_interval < 0:
            raise ValueError("invariant_interval must be >= 0 (0 disables)")
        if self.invariant_patience < 1:
            raise ValueError("invariant_patience must be at least 1")
        if self.stats_interval < 0:
            raise ValueError("stats_interval must be >= 0 (0 disables)")
        if self.stats_window_cap < 1:
            raise ValueError("stats_window_cap must be at least 1")
        if self.trace_sample_interval < 1:
            raise ValueError("trace_sample_interval must be at least 1")
        if self.trace_event_cap < 1:
            raise ValueError("trace_event_cap must be at least 1")
        if self.invariant_recovery and not self.retransmission:
            raise ValueError(
                "invariant_recovery requeues victims through the "
                "retransmission path; enable retransmission too"
            )
        if self.invariant_recovery and self.invariant_interval == 0:
            raise ValueError(
                "invariant_recovery needs the monitor: set "
                "invariant_interval > 0"
            )
        if self.topology not in TOPOLOGY_NAMES:
            raise ValueError(
                f"unknown topology {self.topology!r}; "
                f"choose from {TOPOLOGY_NAMES}"
            )
        if self.topology == "torus" and (self.width < 2 or self.height < 2):
            raise ValueError("torus dimensions must be at least 2")
        if self.topology == "ring" and self.width * self.height < 2:
            raise ValueError("ring needs at least 2 nodes")
        # Resolving eagerly rejects unknown names and topology/routing
        # mismatches at construction time (import here to avoid a cycle).
        from repro.noc.routing import resolve_routing

        algorithm = resolve_routing(self.topology, self.routing)
        if algorithm.needs_escape_vcs and self.vcs_per_vnet < 2:
            raise ValueError(
                f"routing {algorithm.name!r} uses dateline escape VCs and "
                f"needs vcs_per_vnet >= 2 (got {self.vcs_per_vnet})"
            )
        if self.flow_control is not FlowControl.WORMHOLE:
            if self.vc_depth < self.max_packet_flits:
                raise ValueError(
                    f"{self.flow_control.value} keeps whole packets per "
                    f"node: vc_depth ({self.vc_depth}) must be >= the max "
                    f"packet length ({self.max_packet_flits} flits for "
                    f"{self.max_line_bytes}-byte lines)"
                )

    @property
    def telemetry_enabled(self) -> bool:
        """True when any observability knob is on (the ``telemetry`` stat
        group is only registered — and snapshot layout only changes —
        in that case)."""
        return self.stats_interval > 0 or self.trace_packets

    @property
    def n_nodes(self) -> int:
        return fabric_n_nodes(
            self.topology, self.width, self.height, self.concentration
        )

    @property
    def vcs_per_port(self) -> int:
        return self.vnets * self.vcs_per_vnet

    @property
    def max_packet_flits(self) -> int:
        """Longest packet the fabric carries: head flit + data flits for a
        full ``max_line_bytes`` line (see :class:`repro.noc.flit.Packet`)."""
        data_flits = -(-self.max_line_bytes // self.flit_bytes)
        return 1 + data_flits

    def vnet_vcs(self, vnet: int):
        """The VC indices belonging to a virtual network."""
        start = vnet * self.vcs_per_vnet
        return range(start, start + self.vcs_per_vnet)

    def escape_class_vcs(self, vnet: int, vc_class: int):
        """The VC indices of a dateline class within a vnet.

        Class 0 owns the first half of the vnet's VCs, class 1 the second
        half (``vcs_per_vnet >= 2`` is validated for dateline routings).
        """
        start = vnet * self.vcs_per_vnet
        half = self.vcs_per_vnet // 2
        if vc_class == 0:
            return range(start, start + half)
        return range(start + half, start + self.vcs_per_vnet)

    def make_topology(self) -> Topology:
        """Build the configured topology object."""
        return build_topology(
            self.topology, self.width, self.height, self.concentration
        )

    def make_routing(self):
        """Resolve the configured routing algorithm."""
        from repro.noc.routing import resolve_routing

        return resolve_routing(self.topology, self.routing)
