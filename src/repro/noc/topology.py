"""2-D mesh topology and port numbering."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: Router port indices.
PORT_LOCAL = 0
PORT_EAST = 1
PORT_WEST = 2
PORT_NORTH = 3
PORT_SOUTH = 4

PORT_NAMES = {
    PORT_LOCAL: "local",
    PORT_EAST: "east",
    PORT_WEST: "west",
    PORT_NORTH: "north",
    PORT_SOUTH: "south",
}

#: The port on the neighbouring router that a given output port feeds.
OPPOSITE = {
    PORT_EAST: PORT_WEST,
    PORT_WEST: PORT_EAST,
    PORT_NORTH: PORT_SOUTH,
    PORT_SOUTH: PORT_NORTH,
}

N_PORTS = 5


class Mesh:
    """A ``width x height`` mesh; node ids are row-major."""

    def __init__(self, width: int, height: int):
        if width < 1 or height < 1:
            raise ValueError("mesh dimensions must be positive")
        self.width = width
        self.height = height
        self.n_nodes = width * height
        # neighbor[node][port] -> neighbouring node id or None.
        self.neighbor: List[Dict[int, Optional[int]]] = []
        for node in range(self.n_nodes):
            x, y = self.coords(node)
            self.neighbor.append(
                {
                    PORT_EAST: self.node_at(x + 1, y),
                    PORT_WEST: self.node_at(x - 1, y),
                    PORT_NORTH: self.node_at(x, y - 1),
                    PORT_SOUTH: self.node_at(x, y + 1),
                }
            )

    def coords(self, node: int) -> Tuple[int, int]:
        """Node id -> (x, y); x grows east, y grows south."""
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range")
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> Optional[int]:
        """(x, y) -> node id, or None outside the mesh."""
        if 0 <= x < self.width and 0 <= y < self.height:
            return y * self.width + x
        return None

    def links(self) -> List[Tuple[int, int]]:
        """All directed links (src node, dst node)."""
        out = []
        for node in range(self.n_nodes):
            for port, nbr in self.neighbor[node].items():
                if nbr is not None:
                    out.append((node, nbr))
        return out
