"""Pluggable fabric topologies and the port-numbering contract.

A :class:`Topology` describes the fabric shape the rest of the NoC is
built from: node count, per-node radix, adjacency (which output port of
which node feeds which input port of which neighbour), deterministic hop
distance, and the placement queries the CMP layer needs (corner nodes for
memory controllers, the transpose permutation for synthetic traffic).

The port-numbering contract every topology obeys:

- port ``0`` (:data:`PORT_LOCAL`) is always the local injection/ejection
  port — routers, NIs and the ejection path rely on it;
- ports ``1 .. radix(node)-1`` are link ports; ``neighbor[node][port]``
  names the node that output port feeds (``None`` for an unconnected
  port, e.g. a mesh edge), and :meth:`Topology.neighbor_port` names the
  input port it lands on.

Topologies are paired with a deterministic deadlock-free route function
by the registry in :mod:`repro.noc.routing`.

The module-level ``PORT_*`` constants describe the 2-D mesh/torus port
space (the paper's Table 2 fabric) and are kept for the mesh-specific
tests; code outside this module should address ports through the
topology object instead.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: Router port indices (2-D mesh/torus port space).
PORT_LOCAL = 0
PORT_EAST = 1
PORT_WEST = 2
PORT_NORTH = 3
PORT_SOUTH = 4

PORT_NAMES = {
    PORT_LOCAL: "local",
    PORT_EAST: "east",
    PORT_WEST: "west",
    PORT_NORTH: "north",
    PORT_SOUTH: "south",
}

#: The port on the neighbouring router that a given output port feeds
#: (mesh/torus port space).
OPPOSITE = {
    PORT_EAST: PORT_WEST,
    PORT_WEST: PORT_EAST,
    PORT_NORTH: PORT_SOUTH,
    PORT_SOUTH: PORT_NORTH,
}

#: Radix of a 2-D mesh/torus router (local + 4 directions).
N_PORTS = 5

#: Ring port space: one clockwise (+1) and one counter-clockwise (-1) link.
RING_CW = 1
RING_CCW = 2


class Topology:
    """Base class: adjacency + distance queries over a fixed node set.

    Subclasses fill ``neighbor`` (one ``{port: node | None}`` dict per
    node, link ports only) and implement :meth:`radix`,
    :meth:`neighbor_port` and :meth:`hop_distance`.
    """

    name = "abstract"

    def __init__(self, n_nodes: int):
        if n_nodes < 1:
            raise ValueError("topology needs at least one node")
        self.n_nodes = n_nodes
        #: ``neighbor[node][port]`` -> neighbouring node id or ``None``.
        self.neighbor: List[Dict[int, Optional[int]]] = []

    # -- adjacency ----------------------------------------------------------
    def radix(self, node: int) -> int:
        """Port count of one router, local port included."""
        raise NotImplementedError

    def neighbor_port(self, node: int, port: int) -> int:
        """The input port on ``neighbor[node][port]`` that the link feeds."""
        raise NotImplementedError

    def hop_distance(self, src: int, dst: int) -> int:
        """Hops along the topology's deterministic minimal route."""
        raise NotImplementedError

    def links(self) -> List[Tuple[int, int]]:
        """All directed links (src node, dst node)."""
        out = []
        for node in range(self.n_nodes):
            for port, nbr in self.neighbor[node].items():
                if nbr is not None:
                    out.append((node, nbr))
        return out

    def port_name(self, port: int) -> str:
        """Human-readable port label (wedge snapshots, debug)."""
        return "local" if port == PORT_LOCAL else f"link{port}"

    # -- placement queries (CMP layer) --------------------------------------
    def corner_nodes(self) -> Tuple[int, ...]:
        """Nodes suited to memory-controller placement (fabric edges for
        meshes; evenly spread for edge-less topologies)."""
        n = self.n_nodes
        spread = {0, n // 4, n // 2, (3 * n) // 4}
        return tuple(sorted(node % n for node in spread))

    def transpose_of(self, node: int) -> int:
        """Destination of ``node`` under the transpose traffic permutation
        (coordinate swap where coordinates exist, index reversal else)."""
        return self.n_nodes - 1 - node

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.n_nodes} nodes>"


class _Grid2D(Topology):
    """Shared coordinate plumbing for width x height fabrics
    (row-major node ids; x grows east, y grows south)."""

    def __init__(self, width: int, height: int):
        if width < 1 or height < 1:
            raise ValueError(f"{self.name} dimensions must be positive")
        super().__init__(width * height)
        self.width = width
        self.height = height

    def coords(self, node: int) -> Tuple[int, int]:
        """Node id -> (x, y); x grows east, y grows south."""
        self._check_node(node)
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> Optional[int]:
        """(x, y) -> node id, or None outside the grid."""
        if 0 <= x < self.width and 0 <= y < self.height:
            return y * self.width + x
        return None

    def radix(self, node: int) -> int:
        return N_PORTS

    def neighbor_port(self, node: int, port: int) -> int:
        return OPPOSITE[port]

    def port_name(self, port: int) -> str:
        return PORT_NAMES.get(port, f"link{port}")

    def corner_nodes(self) -> Tuple[int, ...]:
        n, w = self.n_nodes, self.width
        return tuple(sorted({0, w - 1, n - w, n - 1}))

    def transpose_of(self, node: int) -> int:
        if self.width != self.height:
            return super().transpose_of(node)
        x, y = self.coords(node)
        transposed = self.node_at(y, x)
        assert transposed is not None
        return transposed


class Mesh2D(_Grid2D):
    """A ``width x height`` mesh (the paper's Table 2 fabric).

    Every router keeps the full 5-port layout; edge ports simply have no
    neighbour (``None``), which preserves the seed implementation's port
    numbering bit for bit.
    """

    name = "mesh"

    def __init__(self, width: int, height: int):
        super().__init__(width, height)
        for node in range(self.n_nodes):
            x, y = self.coords(node)
            self.neighbor.append(
                {
                    PORT_EAST: self.node_at(x + 1, y),
                    PORT_WEST: self.node_at(x - 1, y),
                    PORT_NORTH: self.node_at(x, y - 1),
                    PORT_SOUTH: self.node_at(x, y + 1),
                }
            )

    def hop_distance(self, src: int, dst: int) -> int:
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy)


#: Backward-compatible alias for the seed's mesh class.
Mesh = Mesh2D


class Torus2D(_Grid2D):
    """A ``width x height`` torus: the mesh plus wrap-around links.

    Both dimensions must be at least 2 so no wrap link is a self-loop.
    Deadlock freedom over the wrap links needs the dateline (escape-VC)
    routing from :mod:`repro.noc.routing`, not plain XY.
    """

    name = "torus"

    def __init__(self, width: int, height: int):
        if width < 2 or height < 2:
            raise ValueError("torus dimensions must be at least 2")
        super().__init__(width, height)
        for node in range(self.n_nodes):
            x, y = self.coords(node)
            self.neighbor.append(
                {
                    PORT_EAST: self.node_at((x + 1) % width, y),
                    PORT_WEST: self.node_at((x - 1) % width, y),
                    PORT_NORTH: self.node_at(x, (y - 1) % height),
                    PORT_SOUTH: self.node_at(x, (y + 1) % height),
                }
            )

    def hop_distance(self, src: int, dst: int) -> int:
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        ax, ay = abs(sx - dx), abs(sy - dy)
        return min(ax, self.width - ax) + min(ay, self.height - ay)


class Ring(Topology):
    """A bidirectional ring of ``n_nodes`` routers (radix 3).

    Port :data:`RING_CW` faces node ``i+1``, :data:`RING_CCW` faces
    ``i-1``; each direction is its own unidirectional ring, so deadlock
    avoidance only needs a dateline per direction (see
    :mod:`repro.noc.routing`).
    """

    name = "ring"

    def __init__(self, n_nodes: int):
        if n_nodes < 2:
            raise ValueError("ring needs at least 2 nodes")
        super().__init__(n_nodes)
        for node in range(n_nodes):
            self.neighbor.append(
                {
                    RING_CW: (node + 1) % n_nodes,
                    RING_CCW: (node - 1) % n_nodes,
                }
            )

    def radix(self, node: int) -> int:
        return 3

    def neighbor_port(self, node: int, port: int) -> int:
        # The CW output of node i lands on the CCW-facing side of i+1.
        return RING_CCW if port == RING_CW else RING_CW

    def port_name(self, port: int) -> str:
        return {PORT_LOCAL: "local", RING_CW: "cw", RING_CCW: "ccw"}.get(
            port, f"link{port}"
        )

    def hop_distance(self, src: int, dst: int) -> int:
        self._check_node(src)
        self._check_node(dst)
        d = abs(src - dst)
        return min(d, self.n_nodes - d)


class ConcentratedMesh2D(Topology):
    """A concentrated mesh: ``width x height`` hub routers, each serving a
    cluster of ``concentration`` terminals.

    Node ids: terminal ``node`` belongs to cluster ``node // c``; local
    index ``node % c == 0`` is the cluster hub (a full mesh router plus
    ``c - 1`` star links), the rest are radix-2 leaf routers whose only
    link port (``1``) is the uplink to their hub.  Routing descends the
    star, XY-routes over the hub mesh, then ascends — acyclic (tree +
    dimension order), so no escape VCs are needed.
    """

    name = "cmesh"

    def __init__(self, width: int, height: int, concentration: int = 4):
        if width < 1 or height < 1:
            raise ValueError("cmesh dimensions must be positive")
        if concentration < 1:
            raise ValueError("cmesh concentration must be at least 1")
        super().__init__(width * height * concentration)
        self.width = width
        self.height = height
        self.concentration = concentration
        self._hub_mesh = Mesh2D(width, height)
        c = concentration
        for node in range(self.n_nodes):
            cluster, local = divmod(node, c)
            if local == 0:  # hub: mesh ports + star ports
                ports: Dict[int, Optional[int]] = {}
                for port, nbr in self._hub_mesh.neighbor[cluster].items():
                    ports[port] = None if nbr is None else nbr * c
                for leaf in range(1, c):
                    ports[N_PORTS + leaf - 1] = cluster * c + leaf
                self.neighbor.append(ports)
            else:  # leaf: uplink only
                self.neighbor.append({1: cluster * c})

    # -- structure ----------------------------------------------------------
    def is_hub(self, node: int) -> bool:
        self._check_node(node)
        return node % self.concentration == 0

    def hub_of(self, node: int) -> int:
        self._check_node(node)
        return (node // self.concentration) * self.concentration

    def star_port(self, leaf: int) -> int:
        """The hub output port that faces ``leaf``."""
        local = leaf % self.concentration
        if local == 0:
            raise ValueError(f"node {leaf} is a hub, not a leaf")
        return N_PORTS + local - 1

    def radix(self, node: int) -> int:
        if self.is_hub(node):
            return N_PORTS + self.concentration - 1
        return 2

    def neighbor_port(self, node: int, port: int) -> int:
        if self.is_hub(node):
            if port in OPPOSITE:
                return OPPOSITE[port]
            return 1  # star link lands on the leaf's uplink port
        return self.star_port(node)  # leaf uplink lands on the hub's star port

    def port_name(self, port: int) -> str:
        if port in PORT_NAMES:
            return PORT_NAMES[port]
        if port >= N_PORTS:
            return f"star{port - N_PORTS + 1}"
        return f"link{port}"

    def hop_distance(self, src: int, dst: int) -> int:
        self._check_node(src)
        self._check_node(dst)
        if src == dst:
            return 0
        hops = self._hub_mesh.hop_distance(
            src // self.concentration, dst // self.concentration
        )
        if not self.is_hub(src):
            hops += 1
        if not self.is_hub(dst):
            hops += 1
        return hops

    def corner_nodes(self) -> Tuple[int, ...]:
        return tuple(
            cluster * self.concentration
            for cluster in self._hub_mesh.corner_nodes()
        )


#: Topology name -> constructor arguments drawn from a NocConfig.
TOPOLOGY_NAMES = ("mesh", "torus", "ring", "cmesh")


def build_topology(
    name: str, width: int, height: int, concentration: int = 4
) -> Topology:
    """Instantiate a topology from ``NocConfig``-style parameters.

    ``width``/``height`` shape the grid fabrics; the ring lays the same
    ``width * height`` node count out on a cycle; the cmesh multiplies
    the grid by ``concentration`` terminals per hub.
    """
    if name == "mesh":
        return Mesh2D(width, height)
    if name == "torus":
        return Torus2D(width, height)
    if name == "ring":
        return Ring(width * height)
    if name == "cmesh":
        return ConcentratedMesh2D(width, height, concentration)
    raise ValueError(
        f"unknown topology {name!r}; choose from {TOPOLOGY_NAMES}"
    )


def fabric_n_nodes(
    name: str, width: int, height: int, concentration: int = 4
) -> int:
    """Node count of :func:`build_topology` without building adjacency."""
    if name in ("mesh", "torus", "ring"):
        return width * height
    if name == "cmesh":
        return width * height * concentration
    raise ValueError(
        f"unknown topology {name!r}; choose from {TOPOLOGY_NAMES}"
    )
