"""Synthetic traffic drivers for NoC-only studies and tests.

These generate the classic open-loop patterns (uniform random, transpose,
hotspot) with Bernoulli injection, carrying real cache-line payloads drawn
from a value pool so that in-network compression has something to chew on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.noc.flit import Packet, PacketType
from repro.noc.network import Network
from repro.noc.topology import Topology
from repro.workloads.corpus import ValuePool
from repro.workloads.profiles import get_profile


def uniform_random(rng: random.Random, src: int, topology: Topology) -> int:
    """Uniformly random destination, excluding the source."""
    dst = rng.randrange(topology.n_nodes - 1)
    return dst if dst < src else dst + 1


def transpose(rng: random.Random, src: int, topology: Topology) -> int:
    """Transpose-permutation destination (worst-case for dimension-order
    routing on square grids; index reversal on grid-less topologies)."""
    dst = topology.transpose_of(src)
    if dst == src:
        return uniform_random(rng, src, topology)
    return dst


def hotspot(
    rng: random.Random, src: int, topology: Topology, hotspots=(0,), weight=0.5
) -> int:
    """Uniform traffic with a fraction directed at hotspot nodes."""
    if rng.random() < weight:
        dst = hotspots[rng.randrange(len(hotspots))]
        if dst != src:
            return dst
    return uniform_random(rng, src, topology)


@dataclass
class TrafficConfig:
    """Open-loop synthetic traffic parameters."""

    pattern: str = "uniform"
    injection_rate: float = 0.05  # packets / node / cycle
    data_fraction: float = 0.8  # fraction carrying a cache line
    seed: int = 1
    profile_name: str = "blackscholes"  # value pool for payloads
    compressible: bool = True
    decompress_at_dst: bool = True


class SyntheticTraffic:
    """Drives a :class:`Network` with open-loop synthetic traffic."""

    _PATTERNS: Dict[str, Callable] = {
        "uniform": uniform_random,
        "transpose": transpose,
        "hotspot": hotspot,
    }

    def __init__(self, network: Network, config: TrafficConfig):
        if not 0.0 < config.injection_rate <= 1.0:
            raise ValueError("injection_rate must be in (0, 1]")
        if config.pattern not in self._PATTERNS:
            raise KeyError(
                f"unknown pattern {config.pattern!r}; "
                f"choose from {sorted(self._PATTERNS)}"
            )
        self.network = network
        self.config = config
        self.rng = random.Random(config.seed)
        self.pool = ValuePool(get_profile(config.profile_name), seed=config.seed)
        self._pick_dst = self._PATTERNS[config.pattern]
        self.generated = 0
        self.delivered: List[Packet] = []
        network.set_delivery_handler(self._on_deliver)

    def _on_deliver(self, node: int, packet: Packet) -> None:
        self.delivered.append(packet)

    def step(self) -> None:
        """Inject per-node Bernoulli traffic, then tick the network."""
        topology = self.network.topology
        for src in range(topology.n_nodes):
            if self.rng.random() >= self.config.injection_rate:
                continue
            dst = self._pick_dst(self.rng, src, topology)
            if self.rng.random() < self.config.data_fraction:
                line = self.pool.line(self.rng.randrange(1 << 20))
                packet = Packet(
                    PacketType.RESPONSE,
                    src,
                    dst,
                    flit_bytes=self.network.config.flit_bytes,
                    line=line,
                    compressible=self.config.compressible,
                    decompress_at_dst=self.config.decompress_at_dst,
                )
            else:
                packet = Packet(PacketType.REQUEST, src, dst)
            self.network.send(packet)
            self.generated += 1
        self.network.tick()

    def run(self, cycles: int, drain: bool = True) -> None:
        """Run for ``cycles`` of injection, optionally draining afterwards."""
        for _ in range(cycles):
            self.step()
        if drain:
            self.network.run_until_quiescent()
