"""Event counters and latency accumulators for the NoC.

Every countable event feeds the Orion-style energy model
(:mod:`repro.energy.noc_energy`); latency accumulators feed the Fig. 5/6/8
performance metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class NetworkStats:
    """Aggregate NoC event counts for one simulation."""

    cycles: int = 0
    packets_injected: int = 0
    packets_ejected: int = 0
    flits_injected: int = 0
    flits_ejected: int = 0
    link_flits: int = 0
    buffer_writes: int = 0
    buffer_reads: int = 0
    crossbar_flits: int = 0
    va_grants: int = 0
    sa_grants: int = 0
    sa_losses: int = 0

    # DISCO / compression events
    compressions: int = 0
    decompressions: int = 0
    separate_compressions: int = 0
    aborted_jobs: int = 0
    incompressible: int = 0
    flits_saved: int = 0
    #: Flits re-added to buffers by in-network decompression (the inverse
    #: of ``flits_saved``; the invariant monitor's flit-conservation check
    #: balances the two against injected/ejected/squashed totals).
    flits_restored: int = 0
    ni_compressions: int = 0
    ni_decompressions: int = 0
    eject_decompress_stall_cycles: int = 0

    # Latency accumulators
    total_packet_latency: int = 0
    # Plain dicts (not defaultdicts) so results stay friendly to
    # ``dataclasses.asdict`` and pickling across the runner's pool.
    latency_by_type: Dict[str, int] = field(default_factory=dict)
    count_by_type: Dict[str, int] = field(default_factory=dict)

    def record_ejection(self, ptype: str, latency: int) -> None:
        self.packets_ejected += 1
        self.total_packet_latency += latency
        self.latency_by_type[ptype] = (
            self.latency_by_type.get(ptype, 0) + latency
        )
        self.count_by_type[ptype] = self.count_by_type.get(ptype, 0) + 1

    @property
    def avg_packet_latency(self) -> float:
        if self.packets_ejected == 0:
            return 0.0
        return self.total_packet_latency / self.packets_ejected

    def avg_latency_of(self, ptype: str) -> float:
        count = self.count_by_type.get(ptype, 0)
        if count == 0:
            return 0.0
        return self.latency_by_type[ptype] / count
