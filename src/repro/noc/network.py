"""The fabric network: routers + NIs, assembled on the simulation kernel.

The fabric shape comes from ``NocConfig.topology`` (mesh by default); the
network builds the topology object once, resolves the paired routing
algorithm from the registry, and hands both to its routers.

The network no longer hand-walks its routers each cycle — it registers
components on a :class:`repro.sim.SimKernel` in five ordered phases:

- ``net.frame`` — start-of-cycle housekeeping (ejection-token refill);
- ``net.arrivals`` — link arrivals land in their target VCs;
- ``net.routers`` — the 3-stage router pipelines;
- ``net.nis`` — injection streaming and pending ejection deliveries;
- ``net.delivery`` — same-tile (local) deliveries.

The kernel owns the global clock; a :class:`CmpSystem` passes its own
kernel in so cores, banks and the memory controller tick on the same clock
in phases appended after these.  ``Network.tick()`` remains as a
convenience that steps the whole kernel by one cycle.

Three pluggable hooks are configured by the CMP scheme layer:

- ``inject_transform(node, packet) -> extra cycles`` — NI-side work at
  injection (CNC's NI compressor);
- ``eject_transform(node, packet) -> extra cycles`` — NI-side work at
  ejection (CNC's NI decompressor; DISCO's residual decompression);
- ``packet_priority(packet) -> int`` — the §3.3-B scheduling policy.

A ``router_factory`` lets the DISCO scheme replace the baseline router with
:class:`repro.core.disco_router.DiscoRouter` without the network knowing.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.noc.config import NocConfig
from repro.noc.fabric_state import FabricState
from repro.noc.flit import Packet
from repro.noc.interface import NetworkInterface
from repro.noc.router import InputVC, Router
from repro.noc.reliability import InvariantMonitor, ReliabilityLayer
from repro.noc.stats import NetworkStats
from repro.sim import CallbackComponent, SimKernel
from repro.sim.stats import DegradedStats, RecoveredStats, TelemetryStats
from repro.telemetry.sampler import TimeSeriesSampler
from repro.telemetry.tracer import PacketTracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.controller import FaultController

RouterFactory = Callable[[int, NocConfig, "Network"], Router]
DeliveryHandler = Callable[[int, Packet], None]


def _default_inject(node: int, packet: Packet) -> int:
    return 0


def _default_eject(node: int, packet: Packet) -> int:
    return 0


def _default_priority(packet: Packet) -> int:
    return 1


def _copy_fields(obj) -> dict:
    """Shallow field copy of a stats object, dict-valued fields included,
    so an in-process snapshot never aliases the live accumulators."""
    return {
        key: dict(value) if isinstance(value, dict) else value
        for key, value in obj.__dict__.items()
    }


class ArrivalQueue:
    """Link arrivals scheduled for future cycles (a kernel component).

    Idleness contract: a min-heap over the due cycles backs ``next_wake``,
    so the queue sleeps between batches; ``schedule`` wakes it for the new
    due cycle.  When a batch lands, the target routers are woken in the
    same cycle (``net.routers`` sweeps after ``net.arrivals``).
    """

    __slots__ = ("network", "_due", "_due_heap")

    def __init__(self, network: "Network"):
        self.network = network
        self._due: Dict[int, List[Tuple[InputVC, Packet, bool, bool]]] = {}
        self._due_heap: List[int] = []

    def schedule(
        self,
        due: int,
        target_vc: InputVC,
        packet: Packet,
        is_head: bool,
        is_tail: bool,
    ) -> None:
        batch = self._due.get(due)
        if batch is None:
            batch = self._due[due] = []
            heapq.heappush(self._due_heap, due)
            self.network.kernel.wake(self, due)
        batch.append((target_vc, packet, is_head, is_tail))

    def has_work(self) -> bool:
        return bool(self._due)

    def pending(self) -> int:
        """Total flits still in flight on links."""
        return sum(len(batch) for batch in self._due.values())

    def in_flight_counts(self) -> Dict[InputVC, int]:
        """In-flight flit count per target VC (the invariant monitor
        checks these against each VC's ``incoming`` credit view)."""
        counts: Dict[InputVC, int] = {}
        for batch in self._due.values():
            for target_vc, _packet, _head, _tail in batch:
                counts[target_vc] = counts.get(target_vc, 0) + 1
        return counts

    def purge_packet(self, packet: Packet) -> int:
        """Remove every in-flight flit of ``packet`` (squash support).

        Decrements the target VCs' ``incoming`` credits so flow control
        stays conserved; returns the flit count removed.
        """
        removed = 0
        for due_cycle in list(self._due):
            batch = self._due[due_cycle]
            kept = []
            for item in batch:
                target_vc, arriving, _is_head, _is_tail = item
                if arriving is packet:
                    if target_vc.incoming > 0:
                        target_vc.incoming -= 1
                    removed += 1
                else:
                    kept.append(item)
            if len(kept) != len(batch):
                if kept:
                    self._due[due_cycle] = kept
                else:
                    del self._due[due_cycle]
        return removed

    def next_wake(self, cycle: int) -> Optional[int]:
        heap = self._due_heap
        due = self._due
        while heap and heap[0] not in due:
            heapq.heappop(heap)  # batch already delivered (or purged empty)
        return heap[0] if heap else None

    # -- checkpointing --------------------------------------------------------
    def state_dict(self) -> dict:
        """In-flight link flits, target VCs path-encoded.  The heap is
        captured verbatim (stale entries included) so a restored
        ``next_wake`` pops exactly what the original would have."""
        return {
            "version": 1,
            "due": {
                cycle: [
                    (
                        (vc.router.node, vc.port, vc.vc_index),
                        packet,
                        is_head,
                        is_tail,
                    )
                    for vc, packet, is_head, is_tail in batch
                ]
                for cycle, batch in self._due.items()
            },
            "due_heap": list(self._due_heap),
        }

    def load_state(self, state: dict) -> None:
        if state.get("version") != 1:
            raise ValueError(
                f"unsupported ArrivalQueue state version {state.get('version')!r}"
            )
        routers = self.network.routers
        self._due = {
            cycle: [
                (routers[node].inputs[port][vc_index], packet, is_head, is_tail)
                for (node, port, vc_index), packet, is_head, is_tail in batch
            ]
            for cycle, batch in state["due"].items()
        }
        self._due_heap = list(state["due_heap"])

    def tick(self, cycle: int) -> None:
        arrivals = self._due.pop(cycle, None)
        if not arrivals:
            return
        stats = self.network.stats
        faults = self.network.faults
        tracer = self.network.tracer
        wake = self.network.kernel.wake
        for target_vc, packet, is_head, is_tail in arrivals:
            target_vc.accept_flit(packet, is_head)
            wake(target_vc.router)
            stats.buffer_writes += 1
            if is_head:
                packet.hops_traversed += 1
                if tracer is not None:
                    # Lifecycle hook: head flit landed in a router VC.
                    tracer.on_hop(
                        cycle,
                        packet,
                        target_vc.router.node,
                        target_vc.port,
                        target_vc.vc_index,
                    )
            if faults is not None:
                # Link-traversal fault hook: payload corruption strikes a
                # flit as it lands in the downstream buffer.
                faults.on_link_flit(cycle, target_vc, packet, is_head)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ArrivalQueue({self.pending()} flits in flight)"


class LocalDeliveryQueue:
    """Same-tile deliveries waiting out their NI transform latency.

    Idleness contract: sleeps until the earliest ``ready`` cycle
    (``next_wake``); ``schedule`` wakes it for the new deadline.
    """

    __slots__ = ("network", "_pending")

    def __init__(self, network: "Network"):
        self.network = network
        self._pending: List[Tuple[int, Packet]] = []

    def schedule(self, ready: int, packet: Packet) -> None:
        self._pending.append((ready, packet))
        self.network.kernel.wake(self, ready)

    def has_work(self) -> bool:
        return bool(self._pending)

    def pending(self) -> int:
        return len(self._pending)

    def next_wake(self, cycle: int) -> Optional[int]:
        if not self._pending:
            return None
        return min(ready for ready, _packet in self._pending)

    def tick(self, cycle: int) -> None:
        remaining = []
        network = self.network
        for ready, packet in self._pending:
            if ready <= cycle:
                packet.ejected_cycle = cycle
                network.stats.record_ejection(
                    packet.ptype.value, cycle - packet.injected_cycle
                )
                if network.tracer is not None:
                    network.tracer.on_eject(cycle, packet, packet.dst)
                network.deliver(packet.dst, packet)
            else:
                remaining.append((ready, packet))
        self._pending = remaining

    # -- checkpointing --------------------------------------------------------
    def state_dict(self) -> dict:
        return {"version": 1, "pending": list(self._pending)}

    def load_state(self, state: dict) -> None:
        if state.get("version") != 1:
            raise ValueError(
                "unsupported LocalDeliveryQueue state version "
                f"{state.get('version')!r}"
            )
        self._pending = list(state["pending"])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LocalDeliveryQueue({len(self._pending)} pending)"


class Network:
    """A cycle-level NoC instance over a pluggable topology."""

    #: Fabrics with at most this many (src, dst) pairs get their whole
    #: route table precomputed at construction (a 64-node mesh = 4096
    #: pairs, well under a millisecond); bigger fabrics get the bounded
    #: demand cache instead so memory stays O(cap), not O(n²).
    ROUTE_PRECOMPUTE_MAX_PAIRS = 4096
    #: Entry cap for the demand-filled cache on large fabrics (FIFO
    #: eviction; ~64 nodes' worth of destination rows on a 1k-node mesh).
    ROUTE_CACHE_CAP = 65536

    def __init__(
        self,
        config: NocConfig,
        router_factory: Optional[RouterFactory] = None,
        kernel: Optional[SimKernel] = None,
    ):
        self.config = config
        self.topology = config.make_topology()
        self.mesh = self.topology  # legacy alias (pre-fabric callers)
        self.routing = config.make_routing()
        self._route_fn = self.routing.fn
        # Route memoization: decisions are pure functions of (topology,
        # node, dst), so small fabrics precompute every pair once at
        # construction and the cache never grows; large fabrics keep a
        # bounded demand-filled cache with FIFO eviction (the counter is a
        # plain attribute, deliberately outside every stat group).  Either
        # way the cache is pure derived state — excluded from checkpoints.
        self._route_cache: Dict[Tuple[int, int], Tuple[int, Optional[int]]] = {}
        self._route_cache_cap = 0  # 0 = fully precomputed, never evicts
        self._route_cache_evictions = 0
        n_nodes = self.topology.n_nodes
        if n_nodes * n_nodes <= self.ROUTE_PRECOMPUTE_MAX_PAIRS:
            route_fn = self._route_fn
            topology = self.topology
            self._route_cache = {
                (node, dst): route_fn(topology, node, dst)
                for node in range(n_nodes)
                for dst in range(n_nodes)
                if node != dst
            }
        else:
            self._route_cache_cap = self.ROUTE_CACHE_CAP
        self.stats = NetworkStats()
        self.kernel = kernel if kernel is not None else SimKernel()
        #: The struct-of-arrays dataplane state layer (must exist before
        #: the routers: their InputVC views bind to its arrays).
        self.fabric = FabricState(
            self.topology,
            config.vcs_per_port,
            config.vc_depth,
            config.ejection_bandwidth,
        )
        factory = router_factory or Router
        self.routers: List[Router] = [
            factory(node, config, self) for node in range(self.topology.n_nodes)
        ]
        self.nis: List[NetworkInterface] = [
            NetworkInterface(node, self) for node in range(self.topology.n_nodes)
        ]
        self.arrival_queue = ArrivalQueue(self)
        self.local_deliveries = LocalDeliveryQueue(self)
        # Ejection tokens live in the fabric layer (started full there);
        # the alias keeps every existing call site working.  The frame
        # step only refills nodes that actually spent tokens
        # (``_eject_spent``) instead of rewriting the array every cycle.
        self._eject_tokens = self.fabric.eject_tokens
        self._eject_spent: List[int] = []
        self._delivery_handler: Optional[DeliveryHandler] = None
        #: Fault-injection controller (:mod:`repro.faults`); ``None`` keeps
        #: every hook a cheap attribute test with zero behavioural impact.
        self.faults: Optional["FaultController"] = None
        #: Graceful-degradation counters — always registered as the
        #: ``degraded`` stat group so snapshots are layout-stable whether
        #: or not a fault plan is attached.
        self.degraded = DegradedStats()
        #: Recovered-fault counters (:mod:`repro.noc.reliability`).  The
        #: object always exists (cheap hook sites), but the ``recovered``
        #: stat group is only registered when the reliability layer or the
        #: invariant monitor is enabled — the golden default-mesh snapshot
        #: layout is unchanged otherwise.
        self.recovered = RecoveredStats()
        #: NI retransmission protocol (``config.retransmission``).
        self.reliability: Optional[ReliabilityLayer] = None
        #: Runtime invariant monitor (``config.invariant_interval > 0``).
        self.monitor: Optional[InvariantMonitor] = None
        #: Observability counters (:mod:`repro.telemetry`).  The object
        #: always exists, but the ``telemetry`` stat group is only
        #: registered when a telemetry knob is on — snapshot layout (and
        #: the golden digests) are unchanged otherwise.
        self.telemetry = TelemetryStats()
        #: Per-packet lifecycle tracer (``config.trace_packets``); ``None``
        #: keeps every hook a cheap attribute test, mirroring ``faults``.
        self.tracer: Optional[PacketTracer] = None
        #: Time-series stats sampler (``config.stats_interval > 0``).
        self.sampler: Optional[TimeSeriesSampler] = None
        # Scheme hooks (see module docstring).
        self.inject_transform: Callable[[int, Packet], int] = _default_inject
        self.eject_transform: Callable[[int, Packet], int] = _default_eject
        self.packet_priority: Callable[[Packet], int] = _default_priority
        self._register_components()

    def _register_components(self) -> None:
        kernel = self.kernel
        kernel.register(
            CallbackComponent(self._frame_start, label="net.frame"),
            phase="net.frame",
        )
        kernel.register(self.arrival_queue, phase="net.arrivals")
        for router in self.routers:
            kernel.register(router, phase="net.routers")
        #: Batch mode sweeps the router phase through one driver instead
        #: of per-component dispatch (:mod:`repro.noc.batch`); the routers
        #: stay registered so wake()/active-set bookkeeping is unchanged.
        self.batch_driver = None
        if kernel.mode == "batch":
            from repro.noc.batch import BatchFabricDriver

            self.batch_driver = BatchFabricDriver(self)
            kernel.set_phase_driver("net.routers", self.batch_driver)
        for ni in self.nis:
            kernel.register(ni, phase="net.nis")
        kernel.register(self.local_deliveries, phase="net.delivery")
        config = self.config
        if config.retransmission:
            self.reliability = ReliabilityLayer(self)
            kernel.register(self.reliability, phase="net.reliability")
        if config.invariant_interval > 0:
            self.monitor = InvariantMonitor(
                self,
                interval=config.invariant_interval,
                patience=config.invariant_patience,
                recover=config.invariant_recovery,
            )
            kernel.register(self.monitor, phase="net.monitor")
        kernel.stats.register("network", self._network_counters)
        kernel.stats.register("degraded", self.degraded.counters)
        if self.reliability is not None or self.monitor is not None:
            kernel.stats.register("recovered", self.recovered.counters)
        if config.telemetry_enabled:
            kernel.stats.register("telemetry", self.telemetry.counters)
            # Idle-efficiency counters (cycles_total / component_wakes /
            # wakes_skipped).  Gated with telemetry so the default snapshot
            # layout — and the golden digests — are unchanged.
            kernel.stats.register("kernel", kernel.kernel_counters)
        if config.trace_packets:
            self.tracer = PacketTracer(
                sample_interval=config.trace_sample_interval,
                event_cap=config.trace_event_cap,
                stats=self.telemetry,
            )
            kernel.annotations["telemetry.tracer"] = (
                f"1/{config.trace_sample_interval} packets, "
                f"cap {config.trace_event_cap} events"
            )
        if config.stats_interval > 0:
            self.sampler = TimeSeriesSampler(
                kernel,
                interval=config.stats_interval,
                capacity=config.stats_window_cap,
                stats=self.telemetry,
            )
            self.sampler.add_gauge("fabric_occupancy", self._fabric_occupancy)
            kernel.register(self.sampler, phase="telemetry.sample")
            kernel.annotations["telemetry.sampler"] = (
                f"every {config.stats_interval} cycles, "
                f"ring of {config.stats_window_cap} windows"
            )

    def _frame_start(self, cycle: int) -> None:
        self.stats.cycles = cycle
        spent = self._eject_spent
        if spent:
            bandwidth = self.config.ejection_bandwidth
            tokens = self._eject_tokens
            for node in spent:
                tokens[node] = bandwidth
            self._eject_spent = []
        if self.faults is not None:
            # Per-cycle fault hook: scheduled faults fire, random
            # credit/wedge faults are sampled, stolen credits resync.
            self.faults.on_cycle(cycle, self)

    def _fabric_occupancy(self) -> float:
        """Buffered + in-flight flits across every router VC (the default
        occupancy gauge of the telemetry sampler)."""
        return float(self.fabric.total_occupancy())

    def _network_counters(self) -> Dict[str, int]:
        """The NoC's contribution to the kernel's stats registry (legacy
        flat counter names, consumed by the energy model)."""
        stats = self.stats
        return {
            "cycles": self.kernel.cycle,
            "link_flits": stats.link_flits,
            "buffer_writes": stats.buffer_writes,
            "buffer_reads": stats.buffer_reads,
            "crossbar_flits": stats.crossbar_flits,
            "sa_grants": stats.sa_grants,
            "va_grants": stats.va_grants,
            "router_compressions": stats.compressions,
            "router_decompressions": stats.decompressions,
            "ni_compressions": stats.ni_compressions,
            "ni_decompressions": stats.ni_decompressions,
            "flits_injected": stats.flits_injected,
            "flits_ejected": stats.flits_ejected,
            "packets_injected": stats.packets_injected,
        }

    # -- clock ----------------------------------------------------------------
    @property
    def cycle(self) -> int:
        return self.kernel.cycle

    @cycle.setter
    def cycle(self, value: int) -> None:
        # The CMP fast-forward jumps the shared clock over provably idle
        # cycles; everything reading the clock goes through the kernel.
        self.kernel.cycle = value

    # -- wiring ---------------------------------------------------------------
    def set_delivery_handler(self, handler: DeliveryHandler) -> None:
        """Register the endpoint callback for fully-delivered packets."""
        self._delivery_handler = handler

    def attach_faults(self, controller: "FaultController") -> None:
        """Wire a fault-injection controller into the explicit hook points
        (injection, link arrivals, ejection, per-cycle sampling).  A
        zero-fault plan is guaranteed inert: the hooks only observe."""
        if self.faults is not None:
            raise RuntimeError("a fault controller is already attached")
        controller.bind(self)
        self.faults = controller

    # -- packet movement -------------------------------------------------------
    def route(self, node: int, dst: int):
        """Route decision ``(out_port, vc_class)`` at ``node`` toward ``dst``
        under the configured algorithm.

        Routing algorithms are deterministic pure functions of
        ``(topology, node, dst)`` (the :mod:`repro.noc.routing` contract),
        so decisions are memoized per pair.
        """
        key = (node, dst)
        decision = self._route_cache.get(key)
        if decision is None:
            decision = self._route_fn(self.topology, node, dst)
            cache = self._route_cache
            if self._route_cache_cap and len(cache) >= self._route_cache_cap:
                # FIFO eviction: dict preserves insertion order, so the
                # oldest entry is the first key.  Decisions are pure, so
                # evicting one only costs a recompute on next use.
                cache.pop(next(iter(cache)))
                self._route_cache_evictions += 1
            cache[key] = decision
        return decision

    def send(self, packet: Packet) -> None:
        """Inject a packet at its source node's NI."""
        if not 0 <= packet.src < self.topology.n_nodes:
            raise ValueError(f"bad source node {packet.src}")
        if not 0 <= packet.dst < self.topology.n_nodes:
            raise ValueError(f"bad destination node {packet.dst}")
        if self.reliability is not None:
            # Stamp seq + CRC and record the replay copy first, so the
            # integrity fingerprint below sees the protocol-complete packet.
            self.reliability.on_send(self.cycle, packet)
        if self.faults is not None:
            # Integrity hook: fingerprint the payload before the packet can
            # be touched by the network (or by an injected fault).
            self.faults.on_send(self.cycle, packet)
        if packet.src == packet.dst:
            # Local traffic never enters the mesh.  Both NI transforms still
            # apply (e.g. CNC compresses at injection and decompresses at
            # ejection even for same-tile transfers).
            packet.injected_cycle = self.cycle
            self.stats.packets_injected += 1
            if self.tracer is not None:
                self.tracer.on_inject(self.cycle, packet, packet.src)
            delay = 1 + self.inject_transform(packet.src, packet)
            delay += self.eject_transform(packet.dst, packet)
            self.local_deliveries.schedule(self.cycle + delay, packet)
            return
        self.nis[packet.src].inject(packet)

    def schedule_arrival(
        self,
        delay: int,
        target_vc: InputVC,
        packet: Packet,
        is_head: bool,
        is_tail: bool,
    ) -> None:
        self.arrival_queue.schedule(
            self.cycle + delay, target_vc, packet, is_head, is_tail
        )

    def can_eject(self, node: int) -> bool:
        return self._eject_tokens[node] > 0

    def eject_flit(self, node: int, packet: Packet, is_tail: bool) -> None:
        self._eject_tokens[node] -= 1
        self._eject_spent.append(node)
        self.stats.flits_ejected += 1
        if is_tail:
            self.nis[node].complete_ejection(packet)

    def deliver(self, node: int, packet: Packet) -> None:
        if self.reliability is not None and not self.reliability.on_deliver(
            self.cycle, node, packet
        ):
            # The reliability endpoint consumed it: an ack/NACK, a
            # suppressed duplicate, or a CRC-rejected delivery awaiting a
            # bit-exact retransmission.  Neither the integrity check nor
            # the endpoint handler ever sees a bad or repeated payload.
            return
        if self.faults is not None:
            # Integrity hook: verify the payload survived compress →
            # traverse → decompress byte-identically before the endpoint
            # consumes it.
            self.faults.on_deliver(self.cycle, node, packet)
        if self._delivery_handler is not None:
            self._delivery_handler(node, packet)

    # -- checkpointing --------------------------------------------------------
    def state_dict(self) -> dict:
        """Full fabric state for the snapshot protocol.

        Optional layers (reliability, monitor, faults, tracer, sampler) are
        captured only when attached; a restore under a different
        configuration raises instead of silently dropping state.  Shared
        stats objects (``stats``/``degraded``/``recovered``/``telemetry``)
        are saved as field dicts and copied back into the existing
        instances, which registered providers hold by reference.

        Version 2 (the FabricState refactor): the fabric's numeric plane
        travels as the ``fabric`` entry and is restored *last*, making it
        authoritative over anything the per-router VC snapshots wrote;
        eject tokens live inside it.  The route cache is pure derived
        state (decisions are deterministic functions of the static
        topology) and is deliberately absent.
        """
        return {
            "version": 2,
            "fabric": self.fabric.state_dict(),
            "routers": [router.state_dict() for router in self.routers],
            "nis": [ni.state_dict() for ni in self.nis],
            "arrivals": self.arrival_queue.state_dict(),
            "local_deliveries": self.local_deliveries.state_dict(),
            "eject_spent": list(self._eject_spent),
            "stats": _copy_fields(self.stats),
            "degraded": _copy_fields(self.degraded),
            "recovered": _copy_fields(self.recovered),
            "telemetry": _copy_fields(self.telemetry),
            "reliability": (
                None if self.reliability is None else self.reliability.state_dict()
            ),
            "monitor": None if self.monitor is None else self.monitor.state_dict(),
            "faults": None if self.faults is None else self.faults.state_dict(),
            "tracer": None if self.tracer is None else self.tracer.state_dict(),
            "sampler": None if self.sampler is None else self.sampler.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        if state.get("version") != 2:
            raise ValueError(
                f"unsupported Network state version {state.get('version')!r}"
            )
        for layer in ("reliability", "monitor", "faults", "tracer", "sampler"):
            saved = state[layer] is not None
            attached = getattr(self, layer) is not None
            if saved != attached:
                raise ValueError(
                    f"checkpoint {'has' if saved else 'lacks'} {layer} state "
                    "but the restored network "
                    f"{'lacks' if saved else 'has'} that layer attached"
                )
        for router, saved in zip(self.routers, state["routers"]):
            router.load_state(saved)
        for ni, saved in zip(self.nis, state["nis"]):
            ni.load_state(saved)
        self.arrival_queue.load_state(state["arrivals"])
        self.local_deliveries.load_state(state["local_deliveries"])
        # The fabric loads after the routers so its numeric plane is
        # authoritative (the VC views re-derived the same values; this
        # guarantees it bit-for-bit).  ``_eject_tokens`` aliases the
        # fabric's array, so the tokens restore through it.
        self.fabric.load_state(state["fabric"])
        self._eject_spent = list(state["eject_spent"])
        self.stats.__dict__.update(state["stats"])
        self.degraded.__dict__.update(state["degraded"])
        self.recovered.__dict__.update(state["recovered"])
        self.telemetry.__dict__.update(state["telemetry"])
        if self.reliability is not None:
            self.reliability.load_state(state["reliability"])
        if self.monitor is not None:
            self.monitor.load_state(state["monitor"])
        if self.faults is not None:
            self.faults.load_state(state["faults"])
        if self.tracer is not None:
            self.tracer.load_state(state["tracer"])
        if self.sampler is not None:
            self.sampler.load_state(state["sampler"])

    # -- the cycle loop ----------------------------------------------------------
    def tick(self) -> None:
        """Advance the simulation by one cycle (steps the whole kernel)."""
        self.kernel.step()

    def quiescent(self) -> bool:
        """True when nothing is buffered, queued or in flight."""
        if self.arrival_queue.has_work() or self.local_deliveries.has_work():
            return False
        if any(router.has_work() for router in self.routers):
            return False
        if self.reliability is not None and self.reliability.has_work():
            # Unacked replay entries still have deadlines pending: the
            # drain must keep ticking so a dropped packet retransmits
            # instead of stranding the run in a false quiescent state.
            return False
        return not any(ni.has_work() for ni in self.nis)

    def run_until_quiescent(self, max_cycles: int = 1_000_000) -> int:
        """Tick until idle; returns the cycle count.  For tests/examples."""
        start = self.cycle
        while not self.quiescent():
            self.tick()
            if self.cycle - start > max_cycles:
                raise RuntimeError(
                    "network failed to drain (deadlock?)\n"
                    + self.wedge_snapshot()
                )
        return self.cycle - start

    # -- wedge diagnostics ------------------------------------------------------
    def wedge_snapshot(self) -> str:
        """Where every buffered flit / queued packet is stuck right now.

        Attached to drain/watchdog failures so a deadlock can be triaged
        from the exception alone: per-router VC occupancy with the packets
        held, link flits still in flight, NI injection backlogs, and
        pending local deliveries.
        """
        lines = [f"--- wedge snapshot @ cycle {self.cycle} ---"]
        in_flight = self.arrival_queue.pending()
        lines.append(
            f"link flits in flight: {in_flight}; "
            f"local deliveries pending: {self.local_deliveries.pending()}"
        )
        for router in self.routers:
            busy = [
                vc
                for vc in router.all_vcs
                if vc.packet is not None or vc.flits_present or vc.incoming
            ]
            if not busy:
                continue
            buffered = sum(vc.flits_present for vc in busy)
            incoming = sum(vc.incoming for vc in busy)
            held = ", ".join(
                f"{self.topology.port_name(vc.port)}/vc{vc.vc_index}:"
                f"{vc.packet.ptype.name}"
                f"({vc.packet.src}->{vc.packet.dst},"
                f" {vc.flits_sent}/{vc.packet.size_flits} sent,"
                f" state={vc.state}"
                + (
                    f", wedged_until={vc.wedged_until}"
                    if vc.wedged_until > self.cycle
                    else ""
                )
                + (
                    f", credit_debt={vc.credit_debt}"
                    if vc.credit_debt
                    else ""
                )
                + ")"
                for vc in busy
                if vc.packet is not None
            )
            lines.append(
                f"router {router.node}: {buffered} flits buffered, "
                f"{incoming} incoming; {held or 'no packet bound'}"
            )
        for ni in self.nis:
            if ni.has_work():
                lines.append(f"NI {ni.node}: {ni.describe_backlog()}")
        if len(lines) == 2:
            lines.append("(no component holds state - clean quiescence)")
        return "\n".join(lines)
