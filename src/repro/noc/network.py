"""The mesh network: routers + NIs + the cycle loop.

The network owns the global cycle counter and three pluggable hooks the CMP
scheme layer configures:

- ``inject_transform(node, packet) -> extra cycles`` — NI-side work at
  injection (CNC's NI compressor);
- ``eject_transform(node, packet) -> extra cycles`` — NI-side work at
  ejection (CNC's NI decompressor; DISCO's residual decompression);
- ``packet_priority(packet) -> int`` — the §3.3-B scheduling policy.

A ``router_factory`` lets the DISCO scheme replace the baseline router with
:class:`repro.core.disco_router.DiscoRouter` without the network knowing.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.noc.config import NocConfig
from repro.noc.flit import Packet
from repro.noc.interface import NetworkInterface
from repro.noc.router import InputVC, Router
from repro.noc.stats import NetworkStats
from repro.noc.topology import Mesh

RouterFactory = Callable[[int, NocConfig, "Network"], Router]
DeliveryHandler = Callable[[int, Packet], None]


def _default_inject(node: int, packet: Packet) -> int:
    return 0


def _default_eject(node: int, packet: Packet) -> int:
    return 0


def _default_priority(packet: Packet) -> int:
    return 1


class Network:
    """A cycle-level mesh NoC instance."""

    def __init__(
        self,
        config: NocConfig,
        router_factory: Optional[RouterFactory] = None,
    ):
        self.config = config
        self.mesh = Mesh(config.width, config.height)
        self.stats = NetworkStats()
        self.cycle = 0
        factory = router_factory or Router
        self.routers: List[Router] = [
            factory(node, config, self) for node in range(self.mesh.n_nodes)
        ]
        self.nis: List[NetworkInterface] = [
            NetworkInterface(node, self) for node in range(self.mesh.n_nodes)
        ]
        self._arrivals: Dict[int, List[Tuple[InputVC, Packet, bool, bool]]] = {}
        self._local_deliveries: List[Tuple[int, Packet]] = []
        self._eject_tokens: List[int] = [0] * self.mesh.n_nodes
        self._delivery_handler: Optional[DeliveryHandler] = None
        # Scheme hooks (see module docstring).
        self.inject_transform: Callable[[int, Packet], int] = _default_inject
        self.eject_transform: Callable[[int, Packet], int] = _default_eject
        self.packet_priority: Callable[[Packet], int] = _default_priority

    # -- wiring ---------------------------------------------------------------
    def set_delivery_handler(self, handler: DeliveryHandler) -> None:
        """Register the endpoint callback for fully-delivered packets."""
        self._delivery_handler = handler

    # -- packet movement -------------------------------------------------------
    def send(self, packet: Packet) -> None:
        """Inject a packet at its source node's NI."""
        if not 0 <= packet.src < self.mesh.n_nodes:
            raise ValueError(f"bad source node {packet.src}")
        if not 0 <= packet.dst < self.mesh.n_nodes:
            raise ValueError(f"bad destination node {packet.dst}")
        if packet.src == packet.dst:
            # Local traffic never enters the mesh.  Both NI transforms still
            # apply (e.g. CNC compresses at injection and decompresses at
            # ejection even for same-tile transfers).
            packet.injected_cycle = self.cycle
            self.stats.packets_injected += 1
            delay = 1 + self.inject_transform(packet.src, packet)
            delay += self.eject_transform(packet.dst, packet)
            self._local_deliveries.append((self.cycle + delay, packet))
            return
        self.nis[packet.src].inject(packet)

    def schedule_arrival(
        self,
        delay: int,
        target_vc: InputVC,
        packet: Packet,
        is_head: bool,
        is_tail: bool,
    ) -> None:
        due = self.cycle + delay
        self._arrivals.setdefault(due, []).append(
            (target_vc, packet, is_head, is_tail)
        )

    def can_eject(self, node: int) -> bool:
        return self._eject_tokens[node] > 0

    def eject_flit(self, node: int, packet: Packet, is_tail: bool) -> None:
        self._eject_tokens[node] -= 1
        self.stats.flits_ejected += 1
        if is_tail:
            self.nis[node].complete_ejection(packet)

    def deliver(self, node: int, packet: Packet) -> None:
        if self._delivery_handler is not None:
            self._delivery_handler(node, packet)

    # -- the cycle loop ----------------------------------------------------------
    def tick(self) -> None:
        """Advance the network by one cycle."""
        self.cycle += 1
        self.stats.cycles = self.cycle
        for node in range(self.mesh.n_nodes):
            self._eject_tokens[node] = self.config.ejection_bandwidth
        arrivals = self._arrivals.pop(self.cycle, None)
        if arrivals:
            for target_vc, packet, is_head, is_tail in arrivals:
                target_vc.accept_flit(packet, is_head)
                self.stats.buffer_writes += 1
                if is_head:
                    packet.hops_traversed += 1
        for router in self.routers:
            if router.has_work():
                router.tick()
        for ni in self.nis:
            if ni.has_work():
                ni.tick()
        self._deliver_local()

    def _deliver_local(self) -> None:
        if not self._local_deliveries:
            return
        remaining = []
        for ready, packet in self._local_deliveries:
            if ready <= self.cycle:
                packet.ejected_cycle = self.cycle
                self.stats.record_ejection(
                    packet.ptype.value, self.cycle - packet.injected_cycle
                )
                self.deliver(packet.dst, packet)
            else:
                remaining.append((ready, packet))
        self._local_deliveries = remaining

    def quiescent(self) -> bool:
        """True when nothing is buffered, queued or in flight."""
        if self._arrivals or self._local_deliveries:
            return False
        if any(router.has_work() for router in self.routers):
            return False
        return not any(ni.has_work() for ni in self.nis)

    def run_until_quiescent(self, max_cycles: int = 1_000_000) -> int:
        """Tick until idle; returns the cycle count.  For tests/examples."""
        start = self.cycle
        while not self.quiescent():
            self.tick()
            if self.cycle - start > max_cycles:
                raise RuntimeError("network failed to drain (deadlock?)")
        return self.cycle - start
