"""End-to-end recovery: NI retransmission + the runtime invariant monitor.

The fault layer (:mod:`repro.faults`) can *detect* corruption, loss and
wedges; this module supplies the second half of the story — every detected
fault becomes a **recovered** delivery or an explicitly-accounted
degradation.  Two cooperating pieces, both off by default (the golden
Table 2 mesh carries neither):

**The NI retransmission protocol** (:class:`ReliabilityLayer`, enabled by
``NocConfig.retransmission``).  Every non-local packet is stamped with a
per-(src, dst, vnet) sequence number and a CRC-32 of its payload at
:meth:`Network.send`; the source NI keeps a pristine copy in a bounded
per-flow replay buffer.  The destination NI recomputes the CRC before the
endpoint may consume a delivery — a mismatch is rejected and NACKed, a
repeated sequence number is suppressed as a duplicate, and a clean first
delivery is acked.  Acks and NACKs are single-flit :class:`PacketType.ACK`
packets on the **response vnet**; they are terminal (consumed by the
reliability endpoint, never generating further traffic), so they cannot
close a protocol-deadlock cycle.  A replay entry that sees neither ack nor
NACK retransmits on a timeout with capped exponential backoff; a
retransmit storm is bounded by a per-flow in-flight cap and a per-packet
retry cap, after which the packet is abandoned to the integrity layer's
loss detection (a *detected* outcome, never a silent one).

**The runtime invariant monitor** (:class:`InvariantMonitor`, enabled by
``NocConfig.invariant_interval > 0``).  A kernel component that every N
cycles audits the fabric: per-VC credit conservation (the ``incoming``
counter of every VC must equal the link flits actually in flight toward
it), network-wide flit conservation (``injected − ejected − squashed ==
buffered + in-flight``), VC state-machine legality, and per-router forward
progress.  A violation raises a structured :class:`InvariantViolation`
carrying the existing wedge snapshot — unless ``invariant_recovery`` is
on, in which case a stalled VC is **squashed** (the victim packet's whole
wormhole chain is evicted, arrivals purged, reservations released, the
fault-injected wedge cleared) and the victim is requeued bit-exact through
the retransmission path.
"""

from __future__ import annotations

import heapq
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.noc.flit import Packet, PacketType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.noc.network import Network
    from repro.noc.router import InputVC

#: A reliability flow: (source node, destination node, vnet).
Flow = Tuple[int, int, int]


def payload_crc(packet: Packet) -> int:
    """CRC-32 of the packet's end-to-end payload (0-length for control)."""
    data = packet.line if packet.line is not None else b""
    return zlib.crc32(data) & 0xFFFFFFFF


class InvariantViolation(RuntimeError):
    """A runtime fabric invariant failed.

    Structured: ``kind`` names the broken invariant (``credit`` /
    ``conservation`` / ``vc-state`` / ``forward-progress``), ``detail``
    pins the site, and ``snapshot`` carries the same wedge snapshot the
    drain watchdog attaches, so the exception alone locates the fault.
    """

    def __init__(self, kind: str, detail: str, cycle: int, snapshot: str):
        super().__init__(
            f"invariant violation [{kind}] @ cycle {cycle}: {detail}\n{snapshot}"
        )
        self.kind = kind
        self.detail = detail
        self.cycle = cycle
        self.snapshot = snapshot


@dataclass
class ReplayEntry:
    """One unacked packet in the source replay buffer (pristine copy)."""

    flow: Flow
    seq: int
    pid: int
    ptype: PacketType
    line: Optional[bytes]
    flit_bytes: int
    compressible: bool
    decompress_at_dst: bool
    priority: int
    msg: object
    crc: int
    first_sent: int
    attempts: int = 0
    next_deadline: int = 0
    nacked: bool = False
    counted_inflight: bool = False


class ReliabilityLayer:
    """Sequence numbers + CRC + replay buffer + ack/NACK retransmission.

    One instance per :class:`Network` (registered as the ``net.reliability``
    kernel component).  It plays both protocol ends: the source side stamps
    and replays (:meth:`on_send`, :meth:`tick`), the destination side
    verifies, deduplicates and acks (:meth:`on_deliver`).
    """

    def __init__(self, network: "Network"):
        self.network = network
        self.config = network.config
        self.stats = network.recovered
        # Source side: per-flow sequence counters + replay buffers.
        self._next_seq: Dict[Flow, int] = {}
        self._entries: Dict[Flow, Dict[int, ReplayEntry]] = {}
        self._deadlines: List[Tuple[int, Flow, int]] = []  # heap
        self._retx_outstanding: Dict[Flow, int] = {}
        # Destination side: cumulative watermark + out-of-order set.
        self._delivered_upto: Dict[Flow, int] = {}
        self._delivered_ahead: Dict[Flow, Set[int]] = {}
        #: Packet ids delivered bit-exact via at least one retransmission —
        #: the fault reconciliation reads this to classify ``recovered``.
        self.recovered_pids: Set[int] = set()

    # -- kernel component protocol -------------------------------------------
    def has_work(self) -> bool:
        """True while any replay entry still awaits an ack.

        Consulted by :meth:`Network.quiescent`, so a drain keeps ticking
        until every retransmission deadline is resolved — a dropped packet
        cannot strand the network in a false quiescent state.
        """
        self._prune()
        return bool(self._deadlines)

    def next_wake(self, cycle: int) -> Optional[int]:
        """Idleness contract: sleep until the earliest live retransmission
        deadline (every heappush site also wakes the layer, so a deadline
        scheduled while asleep is never missed)."""
        self._prune()
        return self._deadlines[0][0] if self._deadlines else None

    def tick(self, cycle: int) -> None:
        """Fire every due retransmission deadline."""
        while self._deadlines and self._deadlines[0][0] <= cycle:
            deadline, flow, seq = heapq.heappop(self._deadlines)
            entry = self._entries.get(flow, {}).get(seq)
            if entry is None or entry.next_deadline != deadline:
                continue  # acked or superseded since it was scheduled
            if entry.counted_inflight:
                # The previous retransmission evidently did not deliver.
                entry.counted_inflight = False
                self._dec_outstanding(flow)
            if entry.attempts >= self.config.retx_max_retries:
                self._abandon(entry)
                continue
            if (
                self._retx_outstanding.get(flow, 0)
                >= self.config.retx_inflight_cap
            ):
                # Storm bound: wait one base timeout and try again.
                entry.next_deadline = cycle + self.config.retx_timeout
                heapq.heappush(
                    self._deadlines, (entry.next_deadline, flow, seq)
                )
                self.network.kernel.wake(self, entry.next_deadline)
                continue
            self._retransmit(entry, cycle)

    def _prune(self) -> None:
        """Drop stale heap heads (entries already acked or rescheduled)."""
        while self._deadlines:
            deadline, flow, seq = self._deadlines[0]
            entry = self._entries.get(flow, {}).get(seq)
            if entry is not None and entry.next_deadline == deadline:
                return
            heapq.heappop(self._deadlines)

    def _dec_outstanding(self, flow: Flow) -> None:
        count = self._retx_outstanding.get(flow, 0)
        if count <= 1:
            self._retx_outstanding.pop(flow, None)
        else:
            self._retx_outstanding[flow] = count - 1

    # -- source side ----------------------------------------------------------
    def on_send(self, cycle: int, packet: Packet) -> None:
        """Stamp seq + CRC and record a pristine replay copy (non-local
        traffic only; acks and same-tile transfers ride unprotected)."""
        if packet.ptype is PacketType.ACK or packet.src == packet.dst:
            return
        flow = (packet.src, packet.dst, packet.ptype.vnet)
        seq = self._next_seq.get(flow, 0)
        self._next_seq[flow] = seq + 1
        packet.seq = seq
        packet.crc = payload_crc(packet)
        entries = self._entries.setdefault(flow, {})
        if len(entries) >= self.config.retx_window:
            oldest = min(entries)
            evicted = entries.pop(oldest)
            if evicted.counted_inflight:
                self._dec_outstanding(flow)
            self.stats.replay_evictions += 1
        entry = ReplayEntry(
            flow=flow,
            seq=seq,
            pid=packet.pid,
            ptype=packet.ptype,
            line=packet.line,
            flit_bytes=packet.flit_bytes,
            compressible=packet.compressible,
            decompress_at_dst=packet.decompress_at_dst,
            priority=packet.priority,
            msg=packet.msg,
            crc=packet.crc,
            first_sent=cycle,
            next_deadline=cycle + self.config.retx_timeout,
        )
        entries[seq] = entry
        heapq.heappush(self._deadlines, (entry.next_deadline, flow, seq))
        self.network.kernel.wake(self, entry.next_deadline)

    def _retransmit(self, entry: ReplayEntry, cycle: int) -> None:
        """Re-inject a pristine clone of an unacked packet at its source NI."""
        flow = entry.flow
        clone = Packet(
            entry.ptype,
            flow[0],
            flow[1],
            flit_bytes=entry.flit_bytes,
            line=entry.line,
            compressible=entry.compressible,
            decompress_at_dst=entry.decompress_at_dst,
            priority=entry.priority,
            msg=entry.msg,
        )
        # The clone *is* the original as far as end-to-end identity goes:
        # same pid (integrity fingerprints are keyed by it), same seq (the
        # destination's duplicate suppression is keyed by it).
        clone.pid = entry.pid
        clone.seq = entry.seq
        clone.crc = entry.crc
        entry.attempts += 1
        clone.retransmissions = entry.attempts
        entry.counted_inflight = True
        self._retx_outstanding[flow] = self._retx_outstanding.get(flow, 0) + 1
        backoff = min(1 << entry.attempts, self.config.retx_backoff_cap)
        entry.next_deadline = cycle + self.config.retx_timeout * backoff
        heapq.heappush(self._deadlines, (entry.next_deadline, flow, entry.seq))
        self.network.kernel.wake(self, entry.next_deadline)
        self.stats.retransmissions += 1
        if self.network.tracer is not None:
            # Lifecycle hook: recorded before the inject so the retx marker
            # precedes the clone's inject event in the trace.
            self.network.tracer.on_retransmit(cycle, clone, flow[0])
        self.network.nis[flow[0]].inject(clone)

    def _abandon(self, entry: ReplayEntry) -> None:
        """Retry cap reached: stop replaying; the integrity layer's
        ``finalize`` will flag the packet as lost (detected, not silent)."""
        flow_entries = self._entries.get(entry.flow)
        if flow_entries is not None:
            flow_entries.pop(entry.seq, None)
            if not flow_entries:
                self._entries.pop(entry.flow, None)
        if entry.counted_inflight:
            self._dec_outstanding(entry.flow)
        self.stats.retries_exhausted += 1

    def request_retransmit(self, packet: Packet, cycle: int) -> bool:
        """Immediately replay a squashed victim (invariant-monitor path).

        Returns False when the packet is not replay-protected (evicted
        entry, unstamped packet) — the caller then leaves it to the
        integrity layer's loss detection.
        """
        if packet.seq < 0:
            return False
        flow = (packet.src, packet.dst, packet.ptype.vnet)
        entry = self._entries.get(flow, {}).get(packet.seq)
        if entry is None:
            return False
        if entry.attempts >= self.config.retx_max_retries:
            self._abandon(entry)
            return False
        if entry.counted_inflight:
            entry.counted_inflight = False
            self._dec_outstanding(flow)
        self._retransmit(entry, cycle)
        return True

    # -- destination side ------------------------------------------------------
    def on_deliver(self, cycle: int, node: int, packet: Packet) -> bool:
        """Protocol endpoint at the destination NI.

        Returns True when the delivery should continue to the integrity
        check and the endpoint handler; False when the reliability layer
        consumed it (ack/NACK processing, duplicate suppression, or a CRC
        rejection awaiting re-delivery).
        """
        if packet.ptype is PacketType.ACK:
            self._on_ack(packet)
            return False
        if packet.seq < 0:
            return True  # unprotected (local or pre-attach) traffic
        flow = (packet.src, packet.dst, packet.ptype.vnet)
        if payload_crc(packet) != packet.crc:
            self.stats.crc_rejections += 1
            if self.network.tracer is not None:
                self.network.tracer.on_crc_reject(cycle, packet, node)
            entry = self._entries.get(flow, {}).get(packet.seq)
            if entry is not None:
                entry.nacked = True
            self._send_ack("nack", flow, packet.seq)
            return False
        if self._already_delivered(flow, packet.seq):
            self.stats.duplicates_dropped += 1
            if self.network.tracer is not None:
                self.network.tracer.on_duplicate(cycle, packet, node)
            # Re-ack: the earlier ack may itself have been lost.
            self._send_ack("ack", flow, packet.seq)
            return False
        self._mark_delivered(flow, packet.seq)
        entry = self._entries.get(flow, {}).get(packet.seq)
        if packet.retransmissions > 0:
            # Bit-exact re-delivery after at least one replay: recovered.
            self.stats.recovered_packets += 1
            first = entry.first_sent if entry is not None else packet.injected_cycle
            self.stats.recovery_latency_cycles += max(0, cycle - first)
            self.recovered_pids.add(packet.pid)
        self._send_ack("ack", flow, packet.seq)
        return True

    def _already_delivered(self, flow: Flow, seq: int) -> bool:
        if seq <= self._delivered_upto.get(flow, -1):
            return True
        return seq in self._delivered_ahead.get(flow, ())

    def _mark_delivered(self, flow: Flow, seq: int) -> None:
        ahead = self._delivered_ahead.setdefault(flow, set())
        ahead.add(seq)
        upto = self._delivered_upto.get(flow, -1)
        while upto + 1 in ahead:
            upto += 1
            ahead.discard(upto)
        self._delivered_upto[flow] = upto
        if not ahead:
            self._delivered_ahead.pop(flow, None)

    def _send_ack(self, kind: str, flow: Flow, seq: int) -> None:
        """Inject a single-flit ack/NACK back toward the flow's source.

        Travels on the response vnet (terminal traffic — deadlock-safe)
        and bypasses ``Network.send`` so the integrity checker never
        fingerprints it: an ack is protocol machinery, not a payload.
        """
        ack = Packet(PacketType.ACK, flow[1], flow[0], msg=(kind, flow, seq))
        if kind == "ack":
            watermark = self._delivered_upto.get(flow, -1)
            ack.msg = (kind, flow, seq, watermark)
            self.stats.acks_sent += 1
        else:
            self.stats.nacks_sent += 1
        self.network.nis[flow[1]].inject(ack)

    def _on_ack(self, packet: Packet) -> None:
        """Back at the source: clear replay state or replay immediately."""
        msg = packet.msg
        if not isinstance(msg, tuple) or len(msg) < 3:
            return  # malformed protocol packet: ignore, timeouts cover us
        kind, flow = msg[0], msg[1]
        entries = self._entries.get(flow)
        if kind == "ack":
            seq, watermark = msg[2], msg[3] if len(msg) > 3 else -1
            if entries is None:
                return
            acked = [s for s in entries if s <= watermark or s == seq]
            for s in acked:
                entry = entries.pop(s)
                if entry.counted_inflight:
                    self._dec_outstanding(flow)
            if not entries:
                self._entries.pop(flow, None)
        elif kind == "nack":
            seq = msg[2]
            entry = entries.get(seq) if entries is not None else None
            if entry is None:
                return
            entry.nacked = True
            if entry.counted_inflight:
                entry.counted_inflight = False
                self._dec_outstanding(flow)
            if entry.attempts >= self.config.retx_max_retries:
                self._abandon(entry)
            elif (
                self._retx_outstanding.get(flow, 0)
                < self.config.retx_inflight_cap
            ):
                self._retransmit(entry, self.network.cycle)
            # else: the pending timeout deadline retries later.

    # -- checkpointing --------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Both protocol ends: sequence counters, replay buffers + deadline
        heap (source) and delivery watermarks (destination).

        :class:`ReplayEntry` objects travel live — they are pure data, and
        the system-level single-pickle envelope preserves any sharing with
        in-flight packet ``msg`` payloads.
        """
        return {
            "version": 1,
            "next_seq": dict(self._next_seq),
            "entries": {
                flow: dict(entries) for flow, entries in self._entries.items()
            },
            "deadlines": list(self._deadlines),
            "retx_outstanding": dict(self._retx_outstanding),
            "delivered_upto": dict(self._delivered_upto),
            "delivered_ahead": {
                flow: set(ahead)
                for flow, ahead in self._delivered_ahead.items()
            },
            "recovered_pids": set(self.recovered_pids),
        }

    def load_state(self, state: Dict[str, object]) -> None:
        if state.get("version") != 1:
            raise ValueError(
                "unsupported ReliabilityLayer state version "
                f"{state.get('version')!r}"
            )
        self._next_seq = dict(state["next_seq"])
        self._entries = {
            flow: dict(entries)
            for flow, entries in state["entries"].items()
        }
        self._deadlines = list(state["deadlines"])
        heapq.heapify(self._deadlines)
        self._retx_outstanding = dict(state["retx_outstanding"])
        self._delivered_upto = dict(state["delivered_upto"])
        self._delivered_ahead = {
            flow: set(ahead)
            for flow, ahead in state["delivered_ahead"].items()
        }
        self.recovered_pids = set(state["recovered_pids"])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        pending = sum(len(e) for e in self._entries.values())
        return f"ReliabilityLayer({pending} unacked entries)"


# --------------------------------------------------------------------------
# squash: evict a packet's whole wormhole chain from the fabric
# --------------------------------------------------------------------------


def squash_packet(network: "Network", packet: Packet) -> int:
    """Remove every trace of ``packet`` from the fabric; returns the flit
    count removed (buffered + in flight) for conservation accounting.

    Order matters: in-flight arrivals are purged first (decrementing the
    target VCs' ``incoming`` credits), then the source NI's queue/stream
    state, then every VC in the packet's wormhole chain is force-released
    (which also drops downstream reservations and clears wedges).
    """
    removed = network.arrival_queue.purge_packet(packet)
    network.nis[packet.src].cancel_packet(packet)
    for router in network.routers:
        for vc in router.all_vcs:
            if vc.packet is packet:
                removed += vc.force_release()
    return removed


# --------------------------------------------------------------------------
# the runtime invariant monitor
# --------------------------------------------------------------------------


class InvariantMonitor:
    """Periodic fabric audit (kernel component, ``net.monitor`` phase).

    Every ``interval`` cycles it checks credit conservation per VC, global
    flit conservation, VC state legality, and per-VC forward progress.
    ``recover=True`` turns a forward-progress violation into a squash +
    retransmission-path requeue instead of an :class:`InvariantViolation`.
    """

    def __init__(
        self,
        network: "Network",
        interval: int,
        patience: int,
        recover: bool = False,
    ):
        self.network = network
        self.interval = max(1, interval)
        self.patience = max(1, patience)
        self.recover = recover
        self.checks_run = 0
        self.violations_raised = 0
        # (node, port, vc_index) -> (pid, flits_sent, flits_received, stalls)
        self._progress: Dict[Tuple[int, int, int], Tuple[int, int, int, int]] = {}

    # -- kernel component protocol -------------------------------------------
    def has_work(self) -> bool:
        return True  # the tick itself is one modulo when off-interval

    def next_wake(self, cycle: int) -> int:
        """Idleness contract: timed wakeup at the next audit boundary."""
        return cycle + self.interval - cycle % self.interval

    def tick(self, cycle: int) -> None:
        if cycle % self.interval:
            return
        self.checks_run += 1
        self._check_credit_conservation(cycle)
        self._check_flit_conservation(cycle)
        self._check_vc_states(cycle)
        self._check_forward_progress(cycle)

    def _violate(self, kind: str, detail: str, cycle: int) -> None:
        self.violations_raised += 1
        raise InvariantViolation(
            kind, detail, cycle, self.network.wedge_snapshot()
        )

    # -- the four checks -------------------------------------------------------
    def _check_credit_conservation(self, cycle: int) -> None:
        """Every VC's ``incoming`` must equal the link flits actually in
        flight toward it (the sender-visible credit view is derived from
        it, so a skew here silently corrupts flow control)."""
        in_flight = self.network.arrival_queue.in_flight_counts()
        for router in self.network.routers:
            for vc in router.all_vcs:
                expected = in_flight.get(vc, 0)
                if vc.incoming != expected:
                    self._violate(
                        "credit",
                        f"router {router.node} port {vc.port} vc "
                        f"{vc.vc_index}: incoming={vc.incoming} but "
                        f"{expected} flits in flight",
                        cycle,
                    )

    def _check_flit_conservation(self, cycle: int) -> None:
        """injected − ejected − squashed − compressed + restored must equal
        buffered + in flight + engine-staged.

        In-network compression removes buffered flits (``flits_saved``) and
        decompression re-adds them (``flits_restored``); a streaming
        compression additionally parks consumed flits in the engine's
        staging registers mid-job, so those count as staged, not lost.
        """
        network = self.network
        buffered = 0
        staged = 0
        for router in network.routers:
            for vc in router.all_vcs:
                buffered += vc.flits_present
                job = vc.engine_job
                if job is not None and getattr(job, "session", None) is not None:
                    staged += getattr(job, "consumed", 0)
        in_flight = network.arrival_queue.pending()
        stats = network.stats
        lhs = (
            stats.flits_injected
            - stats.flits_ejected
            - network.recovered.flits_squashed
            - stats.flits_saved
            + stats.flits_restored
        )
        if lhs != buffered + in_flight + staged:
            self._violate(
                "conservation",
                f"{stats.flits_injected} injected - {stats.flits_ejected} "
                f"ejected - {network.recovered.flits_squashed} squashed - "
                f"{stats.flits_saved} compressed + {stats.flits_restored} "
                f"restored != {buffered} buffered + {in_flight} in flight "
                f"+ {staged} staged",
                cycle,
            )

    def _check_vc_states(self, cycle: int) -> None:
        from repro.noc.router import VC_ACTIVE, VC_IDLE

        for router in self.network.routers:
            for vc in router.all_vcs:
                site = (
                    f"router {router.node} port {vc.port} vc {vc.vc_index}"
                )
                if not VC_IDLE <= vc.state <= VC_ACTIVE:
                    self._violate(
                        "vc-state", f"{site}: unknown state {vc.state}", cycle
                    )
                if vc.packet is None:
                    if vc.state != VC_IDLE or vc.flits_present:
                        self._violate(
                            "vc-state",
                            f"{site}: no packet but state={vc.state} "
                            f"buf={vc.flits_present}",
                            cycle,
                        )
                    continue
                if vc.state == VC_IDLE:
                    self._violate(
                        "vc-state", f"{site}: packet bound while IDLE", cycle
                    )
                if vc.engine_job is not None:
                    # A (de)compression engine transiently owns this VC's
                    # flit bookkeeping (streamed flits sit in its staging
                    # registers); the counts re-converge at job completion.
                    continue
                if vc.flits_sent + vc.flits_present != vc.flits_received:
                    self._violate(
                        "vc-state",
                        f"{site}: sent {vc.flits_sent} + buffered "
                        f"{vc.flits_present} != received {vc.flits_received}",
                        cycle,
                    )
                if vc.flits_received > vc.packet.size_flits:
                    self._violate(
                        "vc-state",
                        f"{site}: received {vc.flits_received} flits of a "
                        f"{vc.packet.size_flits}-flit packet",
                        cycle,
                    )
                if vc.state == VC_ACTIVE and vc.out_port < 0:
                    self._violate(
                        "vc-state", f"{site}: ACTIVE without an out port",
                        cycle,
                    )

    def _check_forward_progress(self, cycle: int) -> None:
        """A VC holding the same packet with zero flit movement across
        ``patience`` consecutive checks is stalled: recover or raise."""
        seen = set()
        stalled: List["InputVC"] = []
        for router in self.network.routers:
            for vc in router.all_vcs:
                if vc.packet is None:
                    continue
                key = (router.node, vc.port, vc.vc_index)
                seen.add(key)
                mark = (vc.packet.pid, vc.flits_sent, vc.flits_received)
                prev = self._progress.get(key)
                stalls = (
                    prev[3] + 1
                    if prev is not None and prev[:3] == mark
                    else 0
                )
                self._progress[key] = (*mark, stalls)
                if stalls >= self.patience:
                    stalled.append(vc)
        for key in [k for k in self._progress if k not in seen]:
            del self._progress[key]
        for vc in stalled:
            packet = vc.packet
            if packet is None:
                continue  # a squash this pass already released it
            if not self.recover:
                self._violate(
                    "forward-progress",
                    f"router {vc.router.node} port {vc.port} vc "
                    f"{vc.vc_index}: packet #{packet.pid} "
                    f"({packet.src}->{packet.dst}) made no progress over "
                    f"{self.patience + 1} checks "
                    f"({self.interval * (self.patience + 1)} cycles)",
                    cycle,
                )
            self._recover(vc, packet, cycle)

    def _recover(self, vc: "InputVC", packet: Packet, cycle: int) -> None:
        """Squash the victim's wormhole chain and requeue it bit-exact."""
        network = self.network
        removed = squash_packet(network, packet)
        network.recovered.flits_squashed += removed
        network.recovered.invariant_recoveries += 1
        layer = network.reliability
        if layer is not None:
            # Not replay-protected (evicted / unstamped / an ack): the
            # squash still frees the fabric; a lost payload is flagged by
            # the integrity layer at finalize.
            layer.request_retransmit(packet, cycle)
        # Forget progress history for the released chain.
        self._progress = {
            key: mark
            for key, mark in self._progress.items()
            if self._vc_at(key).packet is not None
        }

    def _vc_at(self, key: Tuple[int, int, int]) -> "InputVC":
        node, port, vc_index = key
        return self.network.routers[node].inputs[port][vc_index]

    # -- checkpointing --------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        return {
            "version": 1,
            "checks_run": self.checks_run,
            "violations_raised": self.violations_raised,
            "progress": dict(self._progress),
        }

    def load_state(self, state: Dict[str, object]) -> None:
        if state.get("version") != 1:
            raise ValueError(
                "unsupported InvariantMonitor state version "
                f"{state.get('version')!r}"
            )
        self.checks_run = state["checks_run"]
        self.violations_raised = state["violations_raised"]
        self._progress = dict(state["progress"])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"InvariantMonitor(every {self.interval} cycles, "
            f"{self.checks_run} checks run)"
        )
