"""Packets and flit accounting.

Buffers track flit *counts* rather than per-flit objects (DESIGN.md §4):
a packet knows its current size in flits and routers move one flit per
cycle per granted crossbar port.  The packet object itself carries the real
cache-line payload plus its compressed form, so in-network (de)compression
changes ``size_flits`` — and therefore buffer occupancy, credits and
serialization latency — exactly as hardware would.
"""

from __future__ import annotations

import enum
from typing import Any, Optional

from repro.compression.base import CompressedLine

#: Virtual-network classes (§3.3-C packet types map onto these).
VNET_REQUEST = 0  # requests + coherence control (single-flit packets)
VNET_RESPONSE = 1  # data-carrying responses / writebacks


class _PidCounter:
    """Monotonic packet-id source with a peekable watermark.

    ``itertools.count`` cannot report its next value without drawing it,
    which a checkpoint must never do (drawing would advance the stream).
    This counter exposes :attr:`value` so :func:`pid_watermark` /
    :func:`ensure_pid_floor` can capture and restore the allocation
    point without perturbing it.
    """

    __slots__ = ("value",)

    def __init__(self, start: int = 0):
        self.value = start

    def __next__(self) -> int:
        value = self.value
        self.value = value + 1
        return value


_packet_ids = _PidCounter()


def pid_watermark() -> int:
    """The next pid that would be allocated (checkpoint capture)."""
    return _packet_ids.value


def ensure_pid_floor(floor: int) -> None:
    """Raise the pid allocation point to at least ``floor``.

    Called on checkpoint restore so packets created after the restore can
    never collide with pids carried by restored in-flight packets (the
    tracer's decision map, the integrity ledger and the reliability
    layer's recovered set are all keyed by pid).  Never lowers the
    counter: a process that restores several systems keeps all of them
    collision-free.
    """
    if _packet_ids.value < floor:
        _packet_ids.value = floor


class PacketType(enum.Enum):
    """The three packet classes of a cache-coherent CMP (§3.3-C), plus the
    single-flit ``ACK`` used by the NI retransmission protocol
    (:mod:`repro.noc.reliability`).  Acks are *terminal* — they are consumed
    by the destination NI's reliability endpoint and never generate further
    traffic — so they may safely share the response vnet without creating a
    protocol-deadlock cycle."""

    REQUEST = "request"
    RESPONSE = "response"
    COHERENCE = "coherence"
    ACK = "ack"

    @property
    def vnet(self) -> int:
        if self in (PacketType.RESPONSE, PacketType.ACK):
            return VNET_RESPONSE
        return VNET_REQUEST


class Packet:
    """One NoC packet: a head flit plus zero or more payload flits.

    Control packets (requests, coherence) are a single head flit.  Response
    packets carry a cache line: uncompressed they are ``1 + line/flit``
    flits (1+8 for 64-byte lines on 64-bit flits); compressed they shrink
    to ``1 + ceil(compressed_bytes / flit_bytes)``.

    ``compressible`` marks packets DISCO may compress (§3.3-C: response
    packets only); ``decompress_at_dst`` marks packets whose destination
    needs the uncompressed form (cores / the memory controller), i.e. the
    decompression candidates of Eq. (2).
    """

    __slots__ = (
        "pid",
        "ptype",
        "src",
        "dst",
        "line",
        "compressed",
        "is_compressed",
        "compressible",
        "poisoned",
        "decompress_at_dst",
        "flit_bytes",
        "size_flits",
        "priority",
        "msg",
        "injected_cycle",
        "ejected_cycle",
        "queued_cycles",
        "compressed_at_hop",
        "decompressed_at_hop",
        "hops_traversed",
        "seq",
        "crc",
        "retransmissions",
    )

    def __init__(
        self,
        ptype: PacketType,
        src: int,
        dst: int,
        flit_bytes: int = 8,
        line: Optional[bytes] = None,
        compressed: Optional[CompressedLine] = None,
        is_compressed: bool = False,
        compressible: bool = False,
        decompress_at_dst: bool = False,
        priority: int = 0,
        msg: Any = None,
    ):
        self.pid = next(_packet_ids)
        self.ptype = ptype
        self.src = src
        self.dst = dst
        self.flit_bytes = flit_bytes
        self.line = line
        self.compressed = compressed
        self.is_compressed = is_compressed
        self.compressible = compressible
        #: Set by a compression-engine fault: the packet's engine output is
        #: untrusted, so it travels on the uncompressed fallback path and
        #: the DISCO arbitrator never reconsiders it (graceful degradation).
        self.poisoned = False
        self.decompress_at_dst = decompress_at_dst
        self.priority = priority
        self.msg = msg
        self.injected_cycle = -1
        self.ejected_cycle = -1
        self.queued_cycles = 0
        self.compressed_at_hop = -1
        self.decompressed_at_hop = -1
        self.hops_traversed = 0
        #: Per-(src, dst, vnet) sequence number stamped by the reliability
        #: layer at send (-1 when retransmission is off or traffic is local).
        self.seq = -1
        #: CRC-32 of the payload at send time (None when unprotected); the
        #: destination NI recomputes it before accepting a delivery.
        self.crc: Optional[int] = None
        #: How many times the reliability layer re-sent this packet.
        self.retransmissions = 0
        if is_compressed and compressed is None:
            raise ValueError("is_compressed requires a compressed payload")
        self.size_flits = self._current_size()

    # -- sizing ------------------------------------------------------------
    def _current_size(self) -> int:
        if self.line is None and self.compressed is None:
            return 1  # control packet: head flit only
        if self.is_compressed:
            assert self.compressed is not None
            return 1 + self.compressed.flit_count(self.flit_bytes)
        assert self.line is not None
        return 1 + (len(self.line) + self.flit_bytes - 1) // self.flit_bytes

    @property
    def carries_data(self) -> bool:
        return self.line is not None or self.compressed is not None

    def uncompressed_size(self) -> int:
        """Flit count this packet would have in uncompressed form."""
        if not self.carries_data:
            return 1
        assert self.line is not None
        return 1 + (len(self.line) + self.flit_bytes - 1) // self.flit_bytes

    # -- state changes (performed by compressor engines / NIs) -------------
    def apply_compression(self, compressed: CompressedLine) -> int:
        """Switch the wire form to compressed; returns flits saved."""
        if self.is_compressed:
            raise ValueError("packet is already compressed")
        if not self.carries_data:
            raise ValueError("control packets cannot be compressed")
        before = self.size_flits
        self.compressed = compressed
        self.is_compressed = True
        self.size_flits = self._current_size()
        return before - self.size_flits

    def apply_decompression(self) -> int:
        """Switch the wire form back to uncompressed; returns flits added.

        The original line must be attached (the simulator keeps it so that
        payload equality checks stay cheap); real hardware would produce it
        from the decompressor.
        """
        if not self.is_compressed:
            raise ValueError("packet is not compressed")
        if self.line is None:
            raise ValueError("packet has no uncompressed line attached")
        before = self.size_flits
        self.is_compressed = False
        self.size_flits = self._current_size()
        return self.size_flits - before

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        form = "C" if self.is_compressed else "U"
        return (
            f"<Packet #{self.pid} {self.ptype.value} {self.src}->{self.dst} "
            f"{self.size_flits}f {form}>"
        )
