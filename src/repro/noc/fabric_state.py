"""Fabric-owned struct-of-arrays state for the NoC dataplane.

Every mutable numeric field the routers, input VCs and ejection flow
control used to keep as per-object attributes lives here instead, in
preallocated flat arrays indexed by a global *VC id*::

    vid = vc_base[node] + port * vcs_per_port + vc_index

The layout is the Siegl/GPU bufferless-NoC idea (arXiv:1508.03235)
applied to this simulator: router state swept as arrays rather than
object-at-a-time.  Two access planes share the same memory:

- **scalar plane** — ``array.array('q')`` buffers.  Indexing them from
  Python is about as fast as a ``__slots__`` attribute read, so the
  event-driven per-router path keeps its speed; :class:`InputVC`
  (:mod:`repro.noc.router`) becomes a typed *view* whose properties
  read/write these buffers, keeping every existing call site working.
- **vector plane** — zero-copy ``numpy.frombuffer`` views over the very
  same buffers (:meth:`FabricState.vectors`), used by the batched
  kernel mode (:mod:`repro.noc.batch`) to run SA/ST candidate selection
  for *all* routers in a handful of array passes per cycle.  numpy is
  optional (the ``fast`` extra); without it the batch driver falls back
  to a fused scalar sweep over the same arrays.

Object-valued state (the bound :class:`~repro.noc.flit.Packet`, the
DISCO engine job) stays in parallel Python lists — packets are live
objects that must keep identity through checkpoints.

Encodings (all fields are signed 64-bit):

==================  =====================================================
``state``           VC pipeline state (``VC_IDLE``/``ROUTING``/``VA``/``ACTIVE``)
``out_port``        RC decision; ``-1`` = none
``out_vc_class``    dateline escape class; ``NO_CLASS`` (-1) = unconstrained
``out_vc``          downstream VC id; ``NO_VC`` (-1) = none
``reserved``        0/1 flag
``wedged_until``    fault wedge deadline; ``-1`` = never wedged
``eject_tokens``    per-*node* ejection flow-control credits
==================  =====================================================

The arrays are fixed-size for the life of the fabric (topologies never
grow mid-run), which is what makes the numpy views safe: an
``array.array`` buffer only moves on resize, and we never resize.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional

try:  # pragma: no cover - exercised by the no-numpy CI leg
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

HAS_NUMPY = _np is not None

#: Sentinel encodings for the Optional fields.
NO_PORT = -1
NO_CLASS = -1
NO_VC = -1

#: The per-VC mutable numeric fields, in checkpoint order.
VC_FIELDS = (
    "state",
    "flits_present",
    "flits_received",
    "flits_sent",
    "incoming",
    "reserved",
    "out_port",
    "out_vc_class",
    "out_vc",
    "wait_cycles",
    "credit_debt",
    "wedged_until",
)

#: Fields initialised to -1 rather than 0.
_MINUS_ONE_FIELDS = frozenset(("out_port", "out_vc_class", "out_vc", "wedged_until"))


class FabricVectors:
    """Zero-copy numpy views over a :class:`FabricState`'s buffers.

    Built once and cached — ``numpy.frombuffer`` shares memory with the
    ``array.array`` plane, so scalar writes are instantly visible here
    and vectorized writes are instantly visible to the scalar plane.
    """

    __slots__ = VC_FIELDS + ("eject_tokens", "vc_node", "vc_port", "depth")

    def __init__(self, fs: "FabricState"):
        assert _np is not None
        for name in VC_FIELDS:
            setattr(self, name, _np.frombuffer(getattr(fs, name), dtype=_np.int64))
        self.eject_tokens = _np.frombuffer(fs.eject_tokens, dtype=_np.int64)
        self.vc_node = _np.frombuffer(fs.vc_node, dtype=_np.int64)
        self.vc_port = _np.frombuffer(fs.vc_port, dtype=_np.int64)
        self.depth = fs.depth


class FabricState:
    """Preallocated struct-of-arrays state for one fabric instance."""

    def __init__(self, topology, vcs_per_port: int, vc_depth: int,
                 ejection_bandwidth: int):
        self.topology = topology
        self.vcs_per_port = vcs_per_port
        #: Uniform VC buffer depth (structural, not per-VC state).
        self.depth = vc_depth
        n_nodes = topology.n_nodes
        base: List[int] = []
        total = 0
        for node in range(n_nodes):
            base.append(total)
            total += topology.radix(node) * vcs_per_port
        #: ``vid`` of (node, port 0, vc 0) — plain list for fast indexing.
        self.vc_base = base
        self.n_vcs = total
        self.n_nodes = n_nodes

        zeros = bytes(8 * total)
        minus_ones = array("q", [-1]) * total
        for name in VC_FIELDS:
            if name in _MINUS_ONE_FIELDS:
                setattr(self, name, array("q", minus_ones))
            else:
                setattr(self, name, array("q", zeros))

        # Static reverse maps (vid -> node / port / vc index).
        vc_node = array("q", zeros)
        vc_port = array("q", zeros)
        vc_index = array("q", zeros)
        for node in range(n_nodes):
            radix = topology.radix(node)
            vid = base[node]
            for port in range(radix):
                for vc in range(vcs_per_port):
                    vc_node[vid] = node
                    vc_port[vid] = port
                    vc_index[vid] = vc
                    vid += 1
        self.vc_node = vc_node
        self.vc_port = vc_port
        self.vc_index = vc_index

        #: Ejection flow-control credits, one per node (start full).
        self.eject_tokens = array("q", [ejection_bandwidth] * n_nodes)

        # Object plane: live Python references, parallel to the arrays.
        self.packet: List[Optional[object]] = [None] * total
        self.engine_job: List[Optional[object]] = [None] * total
        #: ``vid -> InputVC`` view objects, filled in by the routers at
        #: construction so ``out_vc`` ids can resolve back to views.
        self.views: List[Optional[object]] = [None] * total

        self._vectors: Optional[FabricVectors] = None

    # -- addressing ----------------------------------------------------------
    def vid(self, node: int, port: int, vc_index: int) -> int:
        """Flat VC id of (node, port, vc)."""
        return self.vc_base[node] + port * self.vcs_per_port + vc_index

    def view(self, vid: int):
        """The :class:`~repro.noc.router.InputVC` view of a VC id."""
        return self.views[vid]

    # -- vector plane --------------------------------------------------------
    def vectors(self) -> FabricVectors:
        """The cached numpy view bundle (requires the ``fast`` extra)."""
        if self._vectors is None:
            if _np is None:
                raise RuntimeError(
                    "numpy is not installed; install the 'fast' extra "
                    "(pip install repro[fast]) for vectorized sweeps"
                )
            self._vectors = FabricVectors(self)
        return self._vectors

    # -- whole-fabric queries ------------------------------------------------
    def total_occupancy(self) -> int:
        """Buffered + in-flight flits across every VC (telemetry gauge)."""
        if self._vectors is not None:
            vec = self._vectors
            return int(vec.flits_present.sum() + vec.incoming.sum())
        return sum(self.flits_present) + sum(self.incoming)

    # -- checkpointing -------------------------------------------------------
    def state_dict(self) -> dict:
        """The authoritative numeric plane, field by field.

        Packets and engine jobs are deliberately absent: they are live
        objects owned by the VC views / the DISCO engine and travel
        through the system's single-pickle envelope alongside this.
        """
        state: Dict[str, object] = {"version": 1}
        for name in VC_FIELDS:
            state[name] = list(getattr(self, name))
        state["eject_tokens"] = list(self.eject_tokens)
        return state

    def load_state(self, state: dict) -> None:
        if state.get("version") != 1:
            raise ValueError(
                f"unsupported FabricState version {state.get('version')!r}"
            )
        for name in VC_FIELDS:
            saved = state[name]
            target = getattr(self, name)
            if len(saved) != len(target):
                raise ValueError(
                    f"FabricState field {name!r} has {len(saved)} entries; "
                    f"this fabric has {len(target)} VCs"
                )
            target[:] = array("q", saved)
        tokens = state["eject_tokens"]
        if len(tokens) != len(self.eject_tokens):
            raise ValueError(
                f"FabricState has {len(tokens)} eject-token entries; "
                f"this fabric has {len(self.eject_tokens)} nodes"
            )
        self.eject_tokens[:] = array("q", tokens)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FabricState({self.n_nodes} nodes, {self.n_vcs} VCs, "
            f"numpy={'on' if self._vectors is not None else 'lazy'})"
        )
