"""Cycle-level Network-on-Chip substrate (the BookSim substitution).

A fabric of 3-stage virtual-channel routers with credit-based wormhole
flow control (virtual cut-through and store-and-forward are also supported,
§3.3-A of the paper).  The fabric shape is pluggable — mesh (the Table 2
default), torus, ring, concentrated mesh — each paired with a
deterministic deadlock-free routing algorithm from the registry.  Packets
carry real cache-line payloads so in-network compression operates on
actual bytes.

Main entry points:

- :class:`repro.noc.network.Network` — builds the fabric, owns the cycle loop;
- :class:`repro.noc.flit.Packet` — the unit of transfer;
- :class:`repro.noc.config.NocConfig` — structural parameters (Table 2);
- :mod:`repro.noc.topology` — the Topology protocol and implementations;
- :mod:`repro.noc.routing` — the routing registry;
- :mod:`repro.noc.traffic` — synthetic traffic drivers for NoC-only studies.
"""

from repro.noc.config import NocConfig, FlowControl
from repro.noc.flit import Packet, PacketType, VNET_REQUEST, VNET_RESPONSE
from repro.noc.topology import (
    ConcentratedMesh2D,
    Mesh,
    Mesh2D,
    PORT_LOCAL,
    PORT_NAMES,
    Ring,
    Topology,
    Torus2D,
    build_topology,
)
from repro.noc.routing import (
    DEFAULT_ROUTING,
    ROUTING_REGISTRY,
    RoutingAlgorithm,
    resolve_routing,
    xy_hops,
    xy_route,
)
from repro.noc.network import Network
from repro.noc.reliability import (
    InvariantMonitor,
    InvariantViolation,
    ReliabilityLayer,
    payload_crc,
    squash_packet,
)
from repro.noc.stats import NetworkStats

__all__ = [
    "NocConfig",
    "FlowControl",
    "Packet",
    "PacketType",
    "VNET_REQUEST",
    "VNET_RESPONSE",
    "Topology",
    "Mesh",
    "Mesh2D",
    "Torus2D",
    "Ring",
    "ConcentratedMesh2D",
    "build_topology",
    "PORT_LOCAL",
    "PORT_NAMES",
    "RoutingAlgorithm",
    "ROUTING_REGISTRY",
    "DEFAULT_ROUTING",
    "resolve_routing",
    "xy_route",
    "xy_hops",
    "Network",
    "NetworkStats",
    "ReliabilityLayer",
    "InvariantMonitor",
    "InvariantViolation",
    "payload_crc",
    "squash_packet",
]
