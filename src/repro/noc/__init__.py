"""Cycle-level Network-on-Chip substrate (the BookSim substitution).

A 2-D mesh of 3-stage virtual-channel routers with credit-based wormhole
flow control (virtual cut-through and store-and-forward are also supported,
§3.3-A of the paper).  Packets carry real cache-line payloads so in-network
compression operates on actual bytes.

Main entry points:

- :class:`repro.noc.network.Network` — builds the mesh, owns the cycle loop;
- :class:`repro.noc.flit.Packet` — the unit of transfer;
- :class:`repro.noc.config.NocConfig` — structural parameters (Table 2);
- :mod:`repro.noc.traffic` — synthetic traffic drivers for NoC-only studies.
"""

from repro.noc.config import NocConfig, FlowControl
from repro.noc.flit import Packet, PacketType, VNET_REQUEST, VNET_RESPONSE
from repro.noc.topology import Mesh, PORT_LOCAL, PORT_NAMES
from repro.noc.routing import xy_route, xy_hops
from repro.noc.network import Network
from repro.noc.stats import NetworkStats

__all__ = [
    "NocConfig",
    "FlowControl",
    "Packet",
    "PacketType",
    "VNET_REQUEST",
    "VNET_RESPONSE",
    "Mesh",
    "PORT_LOCAL",
    "PORT_NAMES",
    "xy_route",
    "xy_hops",
    "Network",
    "NetworkStats",
]
