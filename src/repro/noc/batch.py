"""The batched dataplane sweep (``REPRO_KERNEL_MODE=batch``).

In batch mode the network installs a :class:`BatchFabricDriver` as the
``net.routers`` phase driver: instead of the kernel visiting each active
router through ``has_work()``/``tick()`` dispatch, the driver sweeps the
whole phase in one call.  Its fast path partitions *every* eligible
router's VCs into their pipeline stages (SA / VA / RC) in a handful of
vectorized array passes over the fabric's struct-of-arrays layer
(:mod:`repro.noc.fabric_state`), then runs the stage logic router by
router.

Bit-exactness constrains what can be vectorized.  Same-cycle VC-allocation
effects are visible across routers (router *n*'s VA sees reservations and
releases router *m* < *n* made this cycle), and ejection side effects
(NI delivery → CMP response → packet-id allocation) must happen in the
order the scalar sweep produces — so stage *processing* stays fused per
router in ascending node order, exactly the scalar schedule.  What the
array passes replace is the per-router partition scan and the per-router
dispatch, which is legal because no router's processing can change
another router's stage partition within the same cycle (arrivals land at
least one link latency later; reservations don't alter pipeline state).

Fallback rules — a router is served by the scalar ``tick()`` instead of
the fast path whenever correctness instrumentation could observe the
difference:

- the router overrides hooks (``DiscoRouter``: compression-engine
  occupancy, SA-loser and first-flit hooks) — detected by exact type;
- a packet tracer, fault controller, reliability layer or invariant
  monitor is attached to the network (their hook points fire inside the
  scalar stage code), or ``can_eject`` is overridden/monkey-patched.

The network-level conditions force the whole sweep into fallback; the
type condition falls back per router, so a hybrid fabric (some DISCO
routers, some plain) still batches the plain ones.  Either way the
observable simulation is bit-identical to event mode — the digest-matrix
tests pin this for all five golden schemes.

Without numpy (the ``fast`` optional extra), or below
``REPRO_BATCH_VECTOR_MIN`` active VCs (default 256; set 0 to force
vectorization, large to disable), the driver degrades to the same fused
sweep with scalar partitioning — still one call per phase, no numpy
required.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, List, Tuple

from repro.noc.fabric_state import HAS_NUMPY
from repro.noc.router import Router, VC_ACTIVE, VC_ROUTING, VC_VA

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.noc.network import Network

#: Minimum active-router VC count before the numpy partition pays for
#: itself; below it the fused scalar partition is used (array ops carry
#: a fixed ~µs overhead that only amortizes across enough lanes).
DEFAULT_VECTOR_MIN = 256


def _vector_min() -> int:
    raw = os.environ.get("REPRO_BATCH_VECTOR_MIN", "")
    try:
        return int(raw)
    except ValueError:
        return DEFAULT_VECTOR_MIN


class BatchFabricDriver:
    """Phase driver sweeping all active routers through the fabric arrays."""

    #: Stable label for kernel tracing/profiling of the driven phase.
    label = "net.routers.batch"

    def __init__(self, network: "Network"):
        self.network = network
        self.fs = network.fabric
        self.vector_min = _vector_min()
        self._use_numpy = HAS_NUMPY
        self._vec = None
        self._mask = None

    def _ensure_vectors(self) -> bool:
        if self._vec is None:
            if not self._use_numpy:
                return False
            import numpy as np

            self._vec = self.fs.vectors()
            self._mask = np.zeros(self.fs.n_vcs, dtype=bool)
        return True

    def _network_fallback(self) -> bool:
        """True when an attached layer's hook points must fire inside the
        scalar stage code for every router this sweep."""
        network = self.network
        if (
            network.tracer is not None
            or network.faults is not None
            or network.reliability is not None
            or network.monitor is not None
        ):
            return True
        # A subclassed or monkey-patched ejection policy must be consulted
        # per VC; the stock token check is the only one the fast path
        # understands.
        from repro.noc.network import Network

        return getattr(network.can_eject, "__func__", None) is not Network.can_eject

    # -- the sweep -----------------------------------------------------------
    def __call__(self, cycle: int, regs: List) -> Tuple[int, int]:
        kernel = self.network.kernel
        if self._network_fallback():
            ticked = skipped = 0
            for reg in regs:
                router = reg.component
                if router.has_work():
                    router.tick(cycle)
                    ticked += 1
                else:
                    skipped += 1
            kernel.batch_fallback_ticks += ticked
            return ticked, skipped

        # Split eligible (exact-type, hook-free) routers from the rest.
        fast: List[Router] = []
        slow: List[Router] = []
        n_fast_vcs = 0
        for reg in regs:
            router = reg.component
            if type(router) is Router:
                fast.append(router)
                n_fast_vcs += router._vid_hi - router._vid_lo
            else:
                slow.append(router)

        if (
            fast
            and n_fast_vcs >= self.vector_min
            and self._ensure_vectors()
        ):
            ticked, skipped = self._sweep_vectorized(fast, slow, cycle)
        else:
            ticked, skipped = self._sweep_scalar(fast, slow, cycle)
        return ticked, skipped

    def _sweep_scalar(
        self, fast: List[Router], slow: List[Router], cycle: int
    ) -> Tuple[int, int]:
        """Fused sweep without numpy: per-router partition over the bound
        lists, merged with the fallback routers in node order."""
        kernel = self.network.kernel
        ticked = skipped = 0
        fast_ticks = fallback_ticks = 0
        # Merge the two class lists back into ascending node order — the
        # scalar schedule every cross-router interaction assumes.
        fi = si = 0
        while fi < len(fast) or si < len(slow):
            if si >= len(slow) or (
                fi < len(fast) and fast[fi].node < slow[si].node
            ):
                router = fast[fi]
                fi += 1
                is_fast = True
            else:
                router = slow[si]
                si += 1
                is_fast = False
            if router.has_work():
                router.tick(cycle)
                ticked += 1
                if is_fast:
                    fast_ticks += 1
                else:
                    fallback_ticks += 1
            else:
                skipped += 1
        kernel.batch_fast_ticks += fast_ticks
        kernel.batch_fallback_ticks += fallback_ticks
        return ticked, skipped

    def _sweep_vectorized(
        self, fast: List[Router], slow: List[Router], cycle: int
    ) -> Tuple[int, int]:
        """Partition every fast router's VCs into SA/VA/RC with array
        passes, then process routers in ascending node order."""
        import numpy as np

        fs = self.fs
        vec = self._vec
        mask = self._mask
        spans = [(router._vid_lo, router._vid_hi) for router in fast]
        for lo, hi in spans:
            mask[lo:hi] = True
        states = vec.state
        # One pass per stage over the whole fabric; ascending-vid output
        # order *is* (node, port, vc) scan order, so the per-router slices
        # below reproduce the bound-list iteration order exactly.
        sa_ids = np.nonzero(mask & (states == VC_ACTIVE) & (vec.flits_present > 0))[0]
        va_ids = np.nonzero(mask & (states == VC_VA))[0]
        rc_ids = np.nonzero(mask & (states == VC_ROUTING))[0]
        for lo, hi in spans:
            mask[lo:hi] = False
        sa_list = sa_ids.tolist()
        va_list = va_ids.tolist()
        rc_list = rc_ids.tolist()

        kernel = self.network.kernel
        views = fs.views
        ticked = skipped = 0
        fast_ticks = fallback_ticks = 0
        si = vi = ri = 0
        n_sa, n_va, n_rc = len(sa_list), len(va_list), len(rc_list)
        # Merge fast (stage-sliced) and slow (scalar tick) routers back
        # into ascending node order.
        fi = li = 0
        while fi < len(fast) or li < len(slow):
            if li >= len(slow) or (
                fi < len(fast) and fast[fi].node < slow[li].node
            ):
                router = fast[fi]
                fi += 1
                hi = router._vid_hi
                sa = None
                while si < n_sa and sa_list[si] < hi:
                    if sa is None:
                        sa = [views[sa_list[si]]]
                    else:
                        sa.append(views[sa_list[si]])
                    si += 1
                va = None
                while vi < n_va and va_list[vi] < hi:
                    if va is None:
                        va = [views[va_list[vi]]]
                    else:
                        va.append(views[va_list[vi]])
                    vi += 1
                rc = None
                while ri < n_rc and rc_list[ri] < hi:
                    if rc is None:
                        rc = [views[rc_list[ri]]]
                    else:
                        rc.append(views[rc_list[ri]])
                    ri += 1
                if sa is None and va is None and rc is None:
                    # Reserved/incoming-only routers: the scalar visit
                    # would tick and do nothing; count it as gated.
                    skipped += 1
                    continue
                if sa is not None:
                    router._switch_allocation(sa)
                if va is not None:
                    router._vc_allocation(va)
                if rc is not None:
                    router._route_computation(rc)
                ticked += 1
                fast_ticks += 1
            else:
                router = slow[li]
                li += 1
                if router.has_work():
                    router.tick(cycle)
                    ticked += 1
                    fallback_ticks += 1
                else:
                    skipped += 1
        kernel.batch_fast_ticks += fast_ticks
        kernel.batch_fallback_ticks += fallback_ticks
        return ticked, skipped

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        regime = "vectorized" if self._use_numpy else "fused-scalar"
        return f"BatchFabricDriver({regime}, vector_min={self.vector_min})"
