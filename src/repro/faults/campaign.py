"""Fault campaigns: drive a DISCO mesh under a fault plan and audit it.

:func:`run_fault_campaign` builds the same DISCO configuration the
integration tests exercise (DISCO routers + priority scheduling + NI
residual decompression), attaches a :class:`FaultController` in
collect-violations mode, runs synthetic traffic, then reconciles every
injected fault into a detected / degraded / silent outcome.

The contract under test is **zero silent outcomes**: every fault either
surfaces through the integrity layer / a watchdog (detected) or is
absorbed by a graceful-degradation path (degraded).  A nonzero ``silent``
count is a pipeline bug, and the report carries the replay capsules to
chase it.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.compression.registry import get_timing
from repro.core import DiscoConfig, disco_priority, make_disco_router_factory
from repro.faults.controller import (
    OUTCOME_DEGRADED,
    OUTCOME_DETECTED,
    OUTCOME_RECOVERED,
    OUTCOME_SILENT,
    FaultController,
    FaultEvent,
)
from repro.faults.integrity import IntegrityViolation
from repro.faults.plan import FaultPlan
from repro.noc.config import NocConfig
from repro.noc.network import Network
from repro.noc.traffic import SyntheticTraffic, TrafficConfig


@dataclass(frozen=True)
class CampaignSpec:
    """Workload side of a fault campaign (the fault side is the plan)."""

    width: int = 4
    height: int = 4
    cycles: int = 1500  #: injection window length
    injection_rate: float = 0.06
    pattern: str = "uniform"
    traffic_seed: int = 1
    profile_name: str = "blackscholes"
    #: Cycles the post-injection drain may take before the wedge watchdog
    #: declares the network stuck (small so permanent wedges fail fast).
    drain_limit: int = 20_000
    #: Fabric shape ("mesh", "torus", "ring", "cmesh"); non-mesh fabrics
    #: get the escape VCs their default routing needs.
    topology: str = "mesh"
    #: Turn on the end-to-end recovery layer (:mod:`repro.noc.reliability`):
    #: NI retransmission plus the invariant monitor in squash-and-requeue
    #: mode, so corrupted/dropped/wedged packets are re-delivered bit-exact
    #: and reconcile as ``recovered`` instead of merely detected.
    retransmission: bool = False

    def noc_config(self) -> NocConfig:
        """The fabric configuration this campaign runs on."""
        from repro.noc.routing import resolve_routing

        vcs = 2 if resolve_routing(self.topology).needs_escape_vcs else 1
        reliability = {}
        if self.retransmission:
            reliability = dict(
                retransmission=True,
                # Check every 64 cycles with 6 stalled checks of patience:
                # a permanently wedged chain is squashed and requeued well
                # inside the drain limit, while the plan's transient wedges
                # (and ordinary congestion) release long before.
                invariant_interval=64,
                invariant_patience=6,
                invariant_recovery=True,
            )
        return NocConfig(
            width=self.width,
            height=self.height,
            topology=self.topology,
            vcs_per_vnet=vcs,
            **reliability,
        )

    def describe(self) -> str:
        return (
            f"{self.width}x{self.height} disco {self.topology}, "
            f"{self.pattern} traffic @ {self.injection_rate}/node/cycle for "
            f"{self.cycles} cycles, traffic seed {self.traffic_seed}"
            + (", retransmission on" if self.retransmission else "")
        )


@dataclass
class CampaignReport:
    """Outcome audit of one fault campaign."""

    spec: CampaignSpec
    plan: FaultPlan
    cycles_run: int
    packets_sent: int
    packets_delivered: int
    faults_injected: int
    by_kind: Dict[str, int]
    detected: int
    degraded: int
    recovered: int
    silent: int
    silent_events: List[FaultEvent]
    violations: List[IntegrityViolation]
    degraded_stats: Dict[str, int]
    recovered_stats: Dict[str, int]
    #: Payloads that never reached their destination ("lost" violations);
    #: zero whenever retransmission is on and no retry cap was exhausted.
    lost_payloads: int
    watchdog: Optional[str] = None  #: wedge snapshot when the drain stuck
    events: List[FaultEvent] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no fault slipped through unnoticed."""
        return self.silent == 0

    def summary(self) -> str:
        lines = [
            f"fault campaign: {self.spec.describe()}",
            f"plan seed {self.plan.seed}: {self.faults_injected} faults "
            + ", ".join(
                f"{kind}={count}" for kind, count in sorted(self.by_kind.items())
            ),
            f"traffic: {self.packets_sent} sent, "
            f"{self.packets_delivered} delivered over {self.cycles_run} cycles",
            f"outcomes: detected={self.detected} degraded={self.degraded} "
            f"recovered={self.recovered} silent={self.silent}",
            "degradation: "
            + ", ".join(
                f"{name}={value}"
                for name, value in sorted(self.degraded_stats.items())
            ),
            f"integrity violations: {len(self.violations)} "
            f"({self.lost_payloads} lost payloads)",
        ]
        if self.spec.retransmission:
            lines.append(
                "recovery: "
                + ", ".join(
                    f"{name}={value}"
                    for name, value in sorted(self.recovered_stats.items())
                )
            )
        if self.watchdog:
            lines.append("watchdog fired:")
            lines.append(self.watchdog)
        for event in self.silent_events:
            lines.append(f"SILENT: {event.describe()}")
        return "\n".join(lines)


def build_campaign_network(spec: CampaignSpec) -> Network:
    """A DISCO fabric wired exactly like the integration tests use it:
    DISCO routers, §3.3-B priority scheduling, and NI residual
    decompression for compressed packets that reach their endpoint."""
    network = Network(
        spec.noc_config(),
        router_factory=make_disco_router_factory(DiscoConfig()),
    )
    network.packet_priority = disco_priority
    decomp = get_timing("delta").decompression_cycles

    def eject(node: int, packet) -> int:
        if packet.is_compressed and packet.decompress_at_dst:
            packet.apply_decompression()
            network.stats.ni_decompressions += 1
            return decomp
        return 0

    network.eject_transform = eject
    return network


def run_fault_campaign(
    spec: CampaignSpec, plan: FaultPlan
) -> CampaignReport:
    """Run one campaign and classify every injected fault's outcome."""
    # An open-ended plan would keep wedging the network while it drains;
    # the campaign's injection window is the traffic window.
    if plan.end_cycle is None:
        plan = dataclasses.replace(plan, end_cycle=spec.cycles)
    network = build_campaign_network(spec)
    controller = FaultController(plan, raise_on_violation=False)
    controller.checker.spec = spec.describe()
    network.attach_faults(controller)
    traffic = SyntheticTraffic(
        network,
        TrafficConfig(
            pattern=spec.pattern,
            injection_rate=spec.injection_rate,
            seed=spec.traffic_seed,
            profile_name=spec.profile_name,
        ),
    )
    watchdog: Optional[str] = None
    traffic.run(spec.cycles, drain=False)
    try:
        network.run_until_quiescent(max_cycles=spec.drain_limit)
    except RuntimeError as exc:
        # The drain watchdog tripped — a permanently wedged VC (or a true
        # deadlock).  The wedge snapshot rides along in the report.
        watchdog = str(exc)
    counts = controller.reconcile(network.cycle, watchdog_fired=watchdog is not None)
    return CampaignReport(
        spec=spec,
        plan=plan,
        cycles_run=network.cycle,
        packets_sent=traffic.generated,
        packets_delivered=len(traffic.delivered),
        faults_injected=controller.faults_injected,
        by_kind=dict(controller.by_kind),
        detected=counts[OUTCOME_DETECTED],
        degraded=counts[OUTCOME_DEGRADED],
        recovered=counts[OUTCOME_RECOVERED],
        silent=counts[OUTCOME_SILENT],
        silent_events=controller.silent_events(),
        violations=list(controller.checker.violations),
        degraded_stats=network.degraded.counters(),
        recovered_stats=network.recovered.counters(),
        lost_payloads=sum(
            1 for v in controller.checker.violations if v.reason == "lost"
        ),
        watchdog=watchdog,
        events=list(controller.events),
    )


def run_campaign_payload(payload: Dict) -> Dict:
    """Service-job entry point: one JSON payload in, one JSON summary out.

    The campaign service (:mod:`repro.service`) schedules fault campaigns
    through the same process pool as simulation specs, so the unit of
    work must be a picklable module-level callable over plain data.  The
    payload carries two optional sub-dicts, ``spec`` (CampaignSpec
    fields) and ``plan`` (FaultPlan fields); unknown fields raise
    ``TypeError`` from the dataclass constructors, surfacing to the
    submitting client as a failed unit rather than a mis-parsed campaign.
    """
    spec_fields = dict(payload.get("spec") or {})
    plan_fields = dict(payload.get("plan") or {})
    spec = CampaignSpec(**spec_fields)
    plan = FaultPlan(**plan_fields)
    report = run_fault_campaign(spec, plan)
    return {
        "kind": "fault_campaign",
        "describe": spec.describe(),
        "plan_seed": report.plan.seed,
        "clean": report.clean,
        "cycles_run": report.cycles_run,
        "packets_sent": report.packets_sent,
        "packets_delivered": report.packets_delivered,
        "faults_injected": report.faults_injected,
        "by_kind": dict(report.by_kind),
        "detected": report.detected,
        "degraded": report.degraded,
        "recovered": report.recovered,
        "silent": report.silent,
        "lost_payloads": report.lost_payloads,
        "watchdog_fired": report.watchdog is not None,
    }
