"""Deterministic, seedable fault plans.

A :class:`FaultPlan` is a pure description — *what* faults to inject, at
which rates, over which cycle window — with no mutable state, so the same
plan object can drive many campaigns.  All randomness lives in the
:class:`~repro.faults.controller.FaultController`'s private
``random.Random(plan.seed)``: given the same (plan, network, traffic) the
fault sequence is bit-reproducible, which is what makes an
:class:`~repro.faults.integrity.IntegrityError` replay capsule actionable.

Five fault kinds (the sabotage modes the old ``test_failure_modes`` suite
applied by monkeypatching, now first-class):

==============  ============================================================
``payload``      a flit's payload bytes are corrupted on link traversal
``credit``       credits at a router input port are destroyed for a while
``engine``       a compression engine stalls or bit-flips (flavors
                 ``stall`` / ``bitflip``)
``drop``         a packet is dropped at the source NI before queueing
``wedge``        a busy VC refuses to send (transiently or forever)
==============  ============================================================

Rates are probabilities per *opportunity*: ``payload_rate`` per payload
flit landing on a link, ``drop_rate`` per packet injected at an NI,
``credit_rate`` / ``wedge_rate`` per router per cycle, and the two engine
rates per engine job.  ``scheduled`` pins individual faults to exact
cycles/sites for targeted tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

#: The five injectable fault kinds.
FAULT_KINDS = ("payload", "credit", "engine", "drop", "wedge")

#: ``duration`` value meaning "never release" (permanent wedge).
PERMANENT = 0


@dataclass(frozen=True)
class ScheduledFault:
    """One fault pinned to an exact cycle (and optionally an exact site).

    ``node`` targets a router (``credit`` / ``wedge`` / ``engine``) or an
    NI (``drop``); ``None`` lets the controller pick deterministically from
    its RNG.  ``duration`` overrides the plan default for ``credit`` /
    ``wedge`` (``PERMANENT`` wedges forever).  ``flavor`` selects the
    engine fault flavor (``stall`` or ``bitflip``).
    """

    cycle: int
    kind: str
    node: Optional[int] = None
    duration: Optional[int] = None
    flavor: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if self.kind == "engine" and self.flavor not in (None, "stall", "bitflip"):
            raise ValueError(f"unknown engine flavor {self.flavor!r}")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic fault-injection schedule."""

    seed: int = 0
    #: P(corrupt) per payload flit arriving over a link.
    payload_rate: float = 0.0
    #: P(drop) per packet injected at an NI.
    drop_rate: float = 0.0
    #: P(steal credits) per router per cycle.
    credit_rate: float = 0.0
    #: P(wedge a busy VC) per router per cycle.
    wedge_rate: float = 0.0
    #: P(stall) / P(bit-flip) per engine job, drawn once at the job's
    #: ready boundary.
    engine_stall_rate: float = 0.0
    engine_bitflip_rate: float = 0.0
    #: Credits destroyed per credit fault and cycles until they resync.
    credit_loss: int = 2
    credit_duration: int = 64
    #: Cycles a rate-sampled wedge holds its VC (scheduled wedges may pass
    #: ``PERMANENT`` to hold forever).
    wedge_duration: int = 64
    #: Extra engine-busy cycles per stall fault.
    stall_cycles: int = 16
    #: Injection window; faults fire only in ``[start_cycle, end_cycle)``
    #: (``None`` = no upper bound).  Scheduled faults ignore the window.
    start_cycle: int = 0
    end_cycle: Optional[int] = None
    #: Hard cap on injected faults (``None`` = unlimited).
    max_faults: Optional[int] = None
    #: Faults pinned to exact cycles (targeted tests, replay).
    scheduled: Tuple[ScheduledFault, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for name in (
            "payload_rate",
            "drop_rate",
            "credit_rate",
            "wedge_rate",
            "engine_stall_rate",
            "engine_bitflip_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.engine_stall_rate + self.engine_bitflip_rate > 1.0:
            raise ValueError("engine stall + bitflip rates exceed 1.0")
        if self.credit_loss < 1 or self.credit_duration < 1:
            raise ValueError("credit_loss and credit_duration must be >= 1")
        if self.wedge_duration < 1:
            raise ValueError(
                "wedge_duration must be >= 1 (use ScheduledFault with "
                "duration=PERMANENT for a permanent wedge)"
            )
        if self.stall_cycles < 1:
            raise ValueError("stall_cycles must be >= 1")

    def is_zero(self) -> bool:
        """True when the plan can never inject anything (the inert plan a
        bit-identity check attaches)."""
        return (
            self.payload_rate == 0.0
            and self.drop_rate == 0.0
            and self.credit_rate == 0.0
            and self.wedge_rate == 0.0
            and self.engine_stall_rate == 0.0
            and self.engine_bitflip_rate == 0.0
            and not self.scheduled
        )

    def in_window(self, cycle: int) -> bool:
        if cycle < self.start_cycle:
            return False
        return self.end_cycle is None or cycle < self.end_cycle
