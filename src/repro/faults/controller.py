"""The fault controller: deterministic injection + outcome accounting.

One :class:`FaultController` binds to one :class:`~repro.noc.network.Network`
via :meth:`Network.attach_faults` and is driven entirely through the
explicit hook points the network exposes — there is no monkeypatching:

===============================  =========================================
hook (caller)                     fault kinds served
===============================  =========================================
``on_cycle`` (net.frame)          credit theft, VC wedges, scheduled
                                  faults, credit resync / wedge recovery
``on_send`` (Network.send)        integrity fingerprinting
``on_link_flit`` (ArrivalQueue)   payload corruption on link traversal
``drop_at_ni`` (NI.inject)        packet drops at the source NI
``engine_action`` (engine tick)   compression-engine stalls / bit-flips
``on_deliver`` (Network.deliver)  integrity verification
===============================  =========================================

All randomness comes from one private ``random.Random(plan.seed)``, so a
(plan, network, traffic) triple replays bit-identically.  A zero-fault
plan draws nothing and mutates nothing — attaching it leaves the
simulation bit-identical to running without a controller at all.

Every injected fault is recorded as a :class:`FaultEvent`; after the run
:meth:`reconcile` assigns each event an outcome:

- ``detected`` — the integrity layer flagged corruption or loss, or a
  watchdog tripped on the wedge the fault created;
- ``degraded`` — the system absorbed the fault gracefully (uncompressed
  fallback, credit resync, wedge recovery, shadow-packet stall cover, or
  a corruption that ended up masked end-to-end);
- ``silent`` — neither of the above.  A correct pipeline produces zero.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.faults.integrity import (
    IntegrityChecker,
    IntegrityError,
)
from repro.faults.plan import PERMANENT, FaultPlan, ScheduledFault
from repro.noc.flit import Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.engine import EngineJob
    from repro.noc.network import Network
    from repro.noc.router import InputVC

#: ``wedged_until`` value used for permanent wedges (never reached).
_FOREVER = 1 << 60

OUTCOME_DETECTED = "detected"
OUTCOME_DEGRADED = "degraded"
OUTCOME_RECOVERED = "recovered"
OUTCOME_SILENT = "silent"


@dataclass
class FaultEvent:
    """One injected fault and (after :meth:`reconcile`) its outcome."""

    cycle: int
    kind: str  #: one of :data:`repro.faults.plan.FAULT_KINDS`
    node: int  #: router/NI the fault struck
    pid: int = -1  #: packet id, when the fault targeted a packet
    flavor: str = ""  #: engine: ``stall``/``bitflip``; wedge: ``permanent``
    detail: str = ""
    outcome: str = ""  #: filled in by reconcile()

    def describe(self) -> str:
        bits = [f"@{self.cycle} {self.kind}"]
        if self.flavor:
            bits.append(f"[{self.flavor}]")
        bits.append(f"node {self.node}")
        if self.pid >= 0:
            bits.append(f"packet #{self.pid}")
        if self.detail:
            bits.append(f"({self.detail})")
        if self.outcome:
            bits.append(f"-> {self.outcome}")
        return " ".join(bits)


class FaultController:
    """Injects a :class:`FaultPlan` into a bound network (see module doc)."""

    def __init__(self, plan: FaultPlan, raise_on_violation: bool = True):
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.network: Optional["Network"] = None
        self.checker = IntegrityChecker(seed=plan.seed)
        #: Raise :class:`IntegrityError` at the first bad delivery (default);
        #: campaigns set this False to collect every violation instead.
        self.raise_on_violation = raise_on_violation
        self.events: List[FaultEvent] = []
        self.by_kind: Dict[str, int] = {}
        # Scheduled-fault machinery.
        self._scheduled_at: Dict[int, List[ScheduledFault]] = {}
        for fault in plan.scheduled:
            self._scheduled_at.setdefault(fault.cycle, []).append(fault)
        self._armed_engine: List[ScheduledFault] = []
        self._armed_drops: List[ScheduledFault] = []
        self._armed_payload: List[ScheduledFault] = []
        # Recovery bookkeeping.
        self._credit_restores: Dict[int, List[Tuple["InputVC", int]]] = {}
        self._wedge_releases: Dict[int, List["InputVC"]] = {}
        self._permanent_wedges: List[Tuple[FaultEvent, "InputVC"]] = []
        self._reconciled = False

    # -- wiring ---------------------------------------------------------------
    def bind(self, network: "Network") -> None:
        if self.network is not None:
            raise RuntimeError("controller is already bound to a network")
        self.network = network

    @property
    def faults_injected(self) -> int:
        return len(self.events)

    def _budget_left(self) -> bool:
        cap = self.plan.max_faults
        return cap is None or len(self.events) < cap

    def _record(self, event: FaultEvent) -> FaultEvent:
        self.events.append(event)
        self.by_kind[event.kind] = self.by_kind.get(event.kind, 0) + 1
        return event

    # -- per-cycle hook (net.frame phase) ------------------------------------
    def on_cycle(self, cycle: int, network: "Network") -> None:
        degraded = network.degraded
        restores = self._credit_restores.pop(cycle, None)
        if restores:
            for vc, amount in restores:
                vc.credit_debt = max(0, vc.credit_debt - amount)
                degraded.credit_resyncs += 1
        released = self._wedge_releases.pop(cycle, None)
        if released:
            degraded.wedge_recoveries += len(released)
        for fault in self._scheduled_at.pop(cycle, ()):
            self._fire_scheduled(cycle, fault)
        if not self.plan.in_window(cycle):
            return
        plan = self.plan
        if plan.credit_rate > 0.0:
            for router in network.routers:
                if self._budget_left() and self.rng.random() < plan.credit_rate:
                    self._inject_credit(cycle, router)
        if plan.wedge_rate > 0.0:
            for router in network.routers:
                if self._budget_left() and self.rng.random() < plan.wedge_rate:
                    self._inject_wedge(cycle, router)

    def _fire_scheduled(self, cycle: int, fault: ScheduledFault) -> None:
        network = self.network
        assert network is not None
        if fault.kind == "credit":
            router = self._pick_router(fault.node)
            self._inject_credit(cycle, router, fault.duration)
        elif fault.kind == "wedge":
            router = self._pick_router(fault.node)
            self._inject_wedge(cycle, router, fault.duration)
        elif fault.kind == "engine":
            self._armed_engine.append(fault)
        elif fault.kind == "drop":
            self._armed_drops.append(fault)
        elif fault.kind == "payload":
            self._armed_payload.append(fault)

    def _pick_router(self, node: Optional[int]):
        network = self.network
        assert network is not None
        if node is not None:
            return network.routers[node]
        return network.routers[self.rng.randrange(len(network.routers))]

    # -- credit loss ----------------------------------------------------------
    def _inject_credit(
        self, cycle: int, router, duration: Optional[int] = None
    ) -> None:
        plan = self.plan
        vc = router.all_vcs[self.rng.randrange(len(router.all_vcs))]
        amount = plan.credit_loss
        vc.credit_debt += amount
        restore_at = cycle + (duration if duration else plan.credit_duration)
        self._credit_restores.setdefault(restore_at, []).append((vc, amount))
        self._record(
            FaultEvent(
                cycle,
                "credit",
                router.node,
                detail=(
                    f"port{vc.port}/vc{vc.vc_index} -{amount} credits "
                    f"until cycle {restore_at}"
                ),
            )
        )

    # -- VC wedge -------------------------------------------------------------
    def _inject_wedge(
        self, cycle: int, router, duration: Optional[int] = None
    ) -> None:
        # Wedge a VC that actually holds an unsent packet; a wedge on an
        # idle VC would be a silent no-op and inflate the fault count.
        candidates = [
            vc
            for vc in router.all_vcs
            if vc.packet is not None
            and vc.flits_sent < vc.packet.size_flits
            and vc.wedged_until <= cycle
        ]
        if not candidates:
            return
        vc = candidates[self.rng.randrange(len(candidates))]
        permanent = duration == PERMANENT
        hold = duration if duration else self.plan.wedge_duration
        until = _FOREVER if permanent else cycle + hold
        vc.wedged_until = until
        event = self._record(
            FaultEvent(
                cycle,
                "wedge",
                router.node,
                pid=vc.packet.pid,
                flavor="permanent" if permanent else "",
                detail=(
                    f"port{vc.port}/vc{vc.vc_index} held "
                    + ("forever" if permanent else f"until cycle {until}")
                ),
            )
        )
        if permanent:
            self._permanent_wedges.append((event, vc))
        else:
            self._wedge_releases.setdefault(until, []).append(vc)

    # -- integrity fingerprinting / verification -------------------------------
    def on_send(self, cycle: int, packet: Packet) -> None:
        self.checker.record(cycle, packet)

    def on_deliver(self, cycle: int, node: int, packet: Packet) -> None:
        violation = self.checker.verify(cycle, node, packet)
        if violation is not None and self.raise_on_violation:
            raise IntegrityError(violation)

    # -- payload corruption on link traversal ----------------------------------
    def on_link_flit(
        self, cycle: int, target_vc: "InputVC", packet: Packet, is_head: bool
    ) -> None:
        if is_head or packet.line is None:
            return  # head flits carry routing state, not payload bytes
        node = target_vc.router.node
        for i, fault in enumerate(self._armed_payload):
            if fault.node is None or fault.node == node:
                del self._armed_payload[i]
                self._corrupt(cycle, node, packet)
                return
        plan = self.plan
        if plan.payload_rate <= 0.0 or not plan.in_window(cycle):
            return
        if not self._budget_left():
            return
        if self.rng.random() < plan.payload_rate:
            self._corrupt(cycle, node, packet)

    def _corrupt(self, cycle: int, node: int, packet: Packet) -> None:
        line = packet.line
        assert line is not None
        index = self.rng.randrange(len(line))
        mask = self.rng.randrange(1, 256)
        packet.line = (
            line[:index] + bytes([line[index] ^ mask]) + line[index + 1 :]
        )
        self._record(
            FaultEvent(
                cycle,
                "payload",
                node,
                pid=packet.pid,
                detail=f"byte {index} ^= {mask:#04x}",
            )
        )

    # -- NI packet drop ---------------------------------------------------------
    def drop_at_ni(self, cycle: int, node: int, packet: Packet) -> bool:
        """True when the NI must silently discard this packet."""
        for i, fault in enumerate(self._armed_drops):
            if fault.node is None or fault.node == node:
                del self._armed_drops[i]
                return self._drop(cycle, node, packet)
        plan = self.plan
        if plan.drop_rate <= 0.0 or not plan.in_window(cycle):
            return False
        if not self._budget_left():
            return False
        if self.rng.random() < plan.drop_rate:
            return self._drop(cycle, node, packet)
        return False

    def _drop(self, cycle: int, node: int, packet: Packet) -> bool:
        network = self.network
        assert network is not None
        network.degraded.packets_dropped += 1
        self._record(
            FaultEvent(cycle, "drop", node, pid=packet.pid)
        )
        return True

    # -- compression-engine faults ----------------------------------------------
    def engine_action(
        self, cycle: int, node: int, job: "EngineJob"
    ) -> Optional[str]:
        """Drawn once per engine job at its ready boundary.

        Returns ``"stall"`` (the engine sits idle for ``plan.stall_cycles``
        more cycles — absorbed by shadow-packet scheduling), ``"bitflip"``
        (the engine output is untrusted; the packet is poisoned onto the
        uncompressed fallback path), or ``None``.
        """
        for i, fault in enumerate(self._armed_engine):
            if fault.node is None or fault.node == node:
                del self._armed_engine[i]
                flavor = fault.flavor or "bitflip"
                return self._engine_fault(cycle, node, job, flavor)
        plan = self.plan
        total = plan.engine_stall_rate + plan.engine_bitflip_rate
        if total <= 0.0 or not plan.in_window(cycle):
            return None
        if not self._budget_left():
            return None
        draw = self.rng.random()
        if draw < plan.engine_stall_rate:
            return self._engine_fault(cycle, node, job, "stall")
        if draw < total:
            return self._engine_fault(cycle, node, job, "bitflip")
        return None

    def _engine_fault(
        self, cycle: int, node: int, job: "EngineJob", flavor: str
    ) -> str:
        network = self.network
        assert network is not None
        if flavor == "stall":
            network.degraded.engine_stalls_absorbed += 1
        self._record(
            FaultEvent(
                cycle,
                "engine",
                node,
                pid=job.packet.pid if job.packet is not None else -1,
                flavor=flavor,
                detail=f"{job.mode} job",
            )
        )
        return flavor

    # -- checkpointing ------------------------------------------------------------
    def _vc_path(self, vc: "InputVC") -> Tuple[int, int, int]:
        return (vc.router.node, vc.port, vc.vc_index)

    def _vc_at(self, path: Tuple[int, int, int]) -> "InputVC":
        network = self.network
        assert network is not None
        node, port, vc_index = path
        return network.routers[node].inputs[port][vc_index]

    def state_dict(self) -> Dict[str, object]:
        """Injection RNG stream, event ledger, and armed/recovery queues.

        Live component references (the wedged/credit-starved VCs) are
        path-encoded as ``(node, port, vc)``; :class:`FaultEvent` records
        travel live, and permanent wedges are stored as indexes into the
        event list so :meth:`reconcile`'s identity matching survives the
        round trip.
        """
        event_index = {id(event): i for i, event in enumerate(self.events)}
        return {
            "version": 1,
            "rng": self.rng.getstate(),
            "checker": self.checker.state_dict(),
            "events": list(self.events),
            "by_kind": dict(self.by_kind),
            "scheduled_at": {
                cycle: list(faults)
                for cycle, faults in self._scheduled_at.items()
            },
            "armed_engine": list(self._armed_engine),
            "armed_drops": list(self._armed_drops),
            "armed_payload": list(self._armed_payload),
            "credit_restores": {
                cycle: [(self._vc_path(vc), amount) for vc, amount in entries]
                for cycle, entries in self._credit_restores.items()
            },
            "wedge_releases": {
                cycle: [self._vc_path(vc) for vc in vcs]
                for cycle, vcs in self._wedge_releases.items()
            },
            "permanent_wedges": [
                (event_index[id(event)], self._vc_path(vc))
                for event, vc in self._permanent_wedges
            ],
            "reconciled": self._reconciled,
        }

    def load_state(self, state: Dict[str, object]) -> None:
        if state.get("version") != 1:
            raise ValueError(
                "unsupported FaultController state version "
                f"{state.get('version')!r}"
            )
        if self.network is None:
            raise RuntimeError(
                "bind the controller to a network before loading state"
            )
        self.rng.setstate(state["rng"])
        self.checker.load_state(state["checker"])
        self.events = list(state["events"])
        self.by_kind = dict(state["by_kind"])
        self._scheduled_at = {
            cycle: list(faults)
            for cycle, faults in state["scheduled_at"].items()
        }
        self._armed_engine = list(state["armed_engine"])
        self._armed_drops = list(state["armed_drops"])
        self._armed_payload = list(state["armed_payload"])
        self._credit_restores = {
            cycle: [(self._vc_at(path), amount) for path, amount in entries]
            for cycle, entries in state["credit_restores"].items()
        }
        self._wedge_releases = {
            cycle: [self._vc_at(path) for path in paths]
            for cycle, paths in state["wedge_releases"].items()
        }
        self._permanent_wedges = [
            (self.events[index], self._vc_at(path))
            for index, path in state["permanent_wedges"]
        ]
        self._reconciled = state["reconciled"]

    # -- end-of-run outcome assignment -------------------------------------------
    def reconcile(
        self, final_cycle: int, watchdog_fired: bool = False
    ) -> Dict[str, int]:
        """Finalize the integrity ledger and classify every fault event.

        Idempotent.  Returns ``{"detected": n, "degraded": n,
        "recovered": n, "silent": n}``; a correct pipeline yields
        ``silent == 0``.

        With the reliability layer enabled a fault whose victim packet was
        re-delivered bit-exact through a retransmission is classified
        ``recovered`` — strictly better than detected (nothing was lost)
        and checked before the other outcomes.
        """
        if not self._reconciled:
            self._reconciled = True
            self.checker.finalize(final_cycle)
            corrupt = {
                v.pid for v in self.checker.violations if v.reason == "corrupt"
            }
            lost = {
                v.pid for v in self.checker.violations if v.reason == "lost"
            }
            flagged = corrupt | lost
            recovered = set()
            if (
                self.network is not None
                and self.network.reliability is not None
            ):
                recovered = self.network.reliability.recovered_pids
            permanent = {id(event): vc for event, vc in self._permanent_wedges}
            for event in self.events:
                if event.kind in ("payload", "engine", "drop"):
                    # Loss and corruption both surface through the checker;
                    # an engine bit-flip or a masked corruption that
                    # delivered a byte-identical line degraded gracefully.
                    if event.pid in recovered:
                        event.outcome = OUTCOME_RECOVERED
                    elif event.pid in flagged:
                        event.outcome = OUTCOME_DETECTED
                    else:
                        event.outcome = OUTCOME_DEGRADED
                elif event.kind == "credit":
                    event.outcome = OUTCOME_DEGRADED  # resync restores flow
                elif event.kind == "wedge":
                    vc = permanent.get(id(event))
                    if vc is None:
                        event.outcome = OUTCOME_DEGRADED  # timed release
                    elif event.pid in recovered:
                        # The invariant monitor squashed the wedged chain
                        # and the retransmission path re-delivered it.
                        event.outcome = OUTCOME_RECOVERED
                    elif watchdog_fired or event.pid in flagged:
                        event.outcome = OUTCOME_DETECTED
                    elif vc.packet is None and vc.flits_present == 0:
                        # The wedged packet left before the wedge landed
                        # (it released that same cycle) — harmless.
                        event.outcome = OUTCOME_DEGRADED
                    else:
                        event.outcome = OUTCOME_SILENT
                else:  # pragma: no cover - FAULT_KINDS is closed
                    event.outcome = OUTCOME_SILENT
        counts = {
            OUTCOME_DETECTED: 0,
            OUTCOME_DEGRADED: 0,
            OUTCOME_RECOVERED: 0,
            OUTCOME_SILENT: 0,
        }
        for event in self.events:
            counts[event.outcome] += 1
        return counts

    def silent_events(self) -> List[FaultEvent]:
        return [e for e in self.events if e.outcome == OUTCOME_SILENT]
