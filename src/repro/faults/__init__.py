"""Fault injection, end-to-end integrity checking, graceful degradation.

See DESIGN.md §"Failure modes & degradation".  Quick start::

    from repro.faults import CampaignSpec, FaultPlan, run_fault_campaign

    report = run_fault_campaign(
        CampaignSpec(cycles=1500, injection_rate=0.06),
        FaultPlan(seed=3, payload_rate=0.004, drop_rate=0.02,
                  credit_rate=0.004, wedge_rate=0.002,
                  engine_stall_rate=0.1, engine_bitflip_rate=0.1),
    )
    assert report.clean          # zero silent outcomes
    print(report.summary())
"""

from repro.faults.campaign import (
    CampaignReport,
    CampaignSpec,
    build_campaign_network,
    run_fault_campaign,
)
from repro.faults.controller import (
    OUTCOME_DEGRADED,
    OUTCOME_DETECTED,
    OUTCOME_RECOVERED,
    OUTCOME_SILENT,
    FaultController,
    FaultEvent,
)
from repro.faults.integrity import (
    IntegrityChecker,
    IntegrityError,
    IntegrityViolation,
    ReplayCapsule,
    payload_digest,
)
from repro.faults.plan import FAULT_KINDS, PERMANENT, FaultPlan, ScheduledFault

__all__ = [
    "CampaignReport",
    "CampaignSpec",
    "FAULT_KINDS",
    "FaultController",
    "FaultEvent",
    "FaultPlan",
    "IntegrityChecker",
    "IntegrityError",
    "IntegrityViolation",
    "OUTCOME_DEGRADED",
    "OUTCOME_DETECTED",
    "OUTCOME_RECOVERED",
    "OUTCOME_SILENT",
    "PERMANENT",
    "ReplayCapsule",
    "ScheduledFault",
    "build_campaign_network",
    "payload_digest",
    "run_fault_campaign",
]
