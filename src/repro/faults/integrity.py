"""End-to-end payload integrity checking.

The :class:`IntegrityChecker` fingerprints every payload at the moment a
packet enters :meth:`Network.send` — before any NI transform, router
engine, or injected fault can touch it — and verifies the fingerprint at
delivery, after whatever (de)compression chain the scheme applied.  Any
byte that compression, the wire, or a fault flipped surfaces as a
mismatch; packets that never arrive surface at :meth:`finalize` as losses.

A violation carries a :class:`ReplayCapsule`: everything needed to rerun
the exact simulation that produced it (fault plan spec + seed) plus the
packet's route and per-hop compression history, so a corruption report is
a reproduction recipe rather than a shrug.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.noc.flit import Packet

#: Fingerprint fed for control packets (no payload to hash).
_CONTROL_SENTINEL = b"\x00control-packet\x00"


def payload_digest(packet: Packet) -> bytes:
    """Fingerprint of the packet's end-to-end payload contents."""
    data = packet.line if packet.line is not None else _CONTROL_SENTINEL
    return hashlib.sha256(data).digest()


@dataclass(frozen=True)
class ReplayCapsule:
    """Everything needed to replay the run that produced a violation."""

    spec: str  #: human-readable campaign/plan description
    seed: int  #: fault-plan seed (drives the whole fault sequence)
    pid: int  #: packet id within the run
    src: int
    dst: int
    injected_cycle: int  #: cycle the fingerprint was taken (Network.send)
    detected_cycle: int  #: cycle the mismatch/loss was established
    hops_traversed: int
    compressed_at_hop: int  #: -1 if never router-compressed
    decompressed_at_hop: int  #: -1 if never router-decompressed
    is_compressed: bool  #: wire form at detection time
    poisoned: bool  #: engine fault marked it for the fallback path
    size_flits: int
    seq: int = -1  #: reliability-layer sequence number (-1: unprotected)
    retransmissions: int = 0  #: replay attempts observed at detection time

    def describe(self) -> str:
        hops = []
        if self.compressed_at_hop >= 0:
            hops.append(f"compressed@hop{self.compressed_at_hop}")
        if self.decompressed_at_hop >= 0:
            hops.append(f"decompressed@hop{self.decompressed_at_hop}")
        if self.poisoned:
            hops.append("poisoned")
        if self.seq >= 0:
            hops.append(
                f"seq {self.seq}, {self.retransmissions} retransmissions"
            )
        state = ", ".join(hops) if hops else "never touched an engine"
        return (
            f"packet #{self.pid} {self.src}->{self.dst} "
            f"(injected @{self.injected_cycle}, "
            f"detected @{self.detected_cycle}, "
            f"{self.hops_traversed} hops, {self.size_flits} flits, "
            f"{'compressed' if self.is_compressed else 'raw'} on wire; "
            f"{state}) under spec [{self.spec}] seed {self.seed}"
        )


@dataclass(frozen=True)
class IntegrityViolation:
    """One detected end-to-end failure (corruption or loss)."""

    reason: str  #: ``"corrupt"`` | ``"lost"`` | ``"untracked"``
    pid: int
    capsule: ReplayCapsule

    def describe(self) -> str:
        return f"{self.reason}: {self.capsule.describe()}"


class IntegrityError(RuntimeError):
    """A payload failed end-to-end verification.

    ``capsule`` (also reachable as ``violation.capsule``) pins down the
    run: replaying the same spec + seed reproduces the corruption
    deterministically.
    """

    def __init__(self, violation: IntegrityViolation):
        super().__init__(f"end-to-end integrity violation — {violation.describe()}")
        self.violation = violation
        self.capsule = violation.capsule


@dataclass
class _TrackedPacket:
    digest: bytes
    injected_cycle: int
    src: int
    dst: int
    seq: int = -1


@dataclass
class IntegrityChecker:
    """Fingerprint-at-send / verify-at-delivery bookkeeping."""

    spec: str = ""  #: stamped into every capsule
    seed: int = 0
    verified: int = 0  #: deliveries whose payload matched
    mismatches: int = 0
    lost: int = 0
    violations: List[IntegrityViolation] = field(default_factory=list)
    _tracked: Dict[int, _TrackedPacket] = field(default_factory=dict)

    # -- the two hook entry points ------------------------------------------
    def record(self, cycle: int, packet: Packet) -> None:
        """Fingerprint a packet as it enters the network."""
        self._tracked[packet.pid] = _TrackedPacket(
            payload_digest(packet), cycle, packet.src, packet.dst, packet.seq
        )

    def verify(
        self, cycle: int, node: int, packet: Packet
    ) -> Optional[IntegrityViolation]:
        """Check a delivered packet; returns the violation if it failed."""
        entry = self._tracked.pop(packet.pid, None)
        if entry is None:
            # Delivery of a packet record() never saw — a harness bug, but
            # report it through the same channel rather than crash.
            violation = IntegrityViolation(
                "untracked", packet.pid, self._capsule(cycle, packet)
            )
            self.violations.append(violation)
            return violation
        if payload_digest(packet) == entry.digest:
            self.verified += 1
            return None
        self.mismatches += 1
        violation = IntegrityViolation(
            "corrupt", packet.pid, self._capsule(cycle, packet)
        )
        self.violations.append(violation)
        return violation

    # -- end-of-run reconciliation ------------------------------------------
    def outstanding(self) -> Dict[int, "_TrackedPacket"]:
        """Packets fingerprinted but never delivered (so far)."""
        return dict(self._tracked)

    def finalize(self, cycle: int) -> List[IntegrityViolation]:
        """Turn every still-outstanding packet into a ``lost`` violation.

        Dropped packets, packets stuck behind a permanent wedge, and
        packets in flight when a watchdog fired all land here — loss is a
        *detected* outcome, never a silent one.  Returns the new
        violations.
        """
        new: List[IntegrityViolation] = []
        for pid, entry in sorted(self._tracked.items()):
            capsule = ReplayCapsule(
                spec=self.spec,
                seed=self.seed,
                pid=pid,
                src=entry.src,
                dst=entry.dst,
                injected_cycle=entry.injected_cycle,
                detected_cycle=cycle,
                hops_traversed=-1,  # unknown: the packet never arrived
                compressed_at_hop=-1,
                decompressed_at_hop=-1,
                is_compressed=False,
                poisoned=False,
                size_flits=-1,
                seq=entry.seq,
            )
            violation = IntegrityViolation("lost", pid, capsule)
            new.append(violation)
        self._tracked.clear()
        self.lost += len(new)
        self.violations.extend(new)
        return new

    # -- checkpointing --------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """The full ledger: counters, violations, and in-flight tracking."""
        return {
            "version": 1,
            "verified": self.verified,
            "mismatches": self.mismatches,
            "lost": self.lost,
            "violations": list(self.violations),
            "tracked": dict(self._tracked),
        }

    def load_state(self, state: Dict[str, object]) -> None:
        if state.get("version") != 1:
            raise ValueError(
                "unsupported IntegrityChecker state version "
                f"{state.get('version')!r}"
            )
        self.verified = state["verified"]
        self.mismatches = state["mismatches"]
        self.lost = state["lost"]
        self.violations = list(state["violations"])
        self._tracked = dict(state["tracked"])

    # -- helpers -------------------------------------------------------------
    def _capsule(self, cycle: int, packet: Packet) -> ReplayCapsule:
        return ReplayCapsule(
            spec=self.spec,
            seed=self.seed,
            pid=packet.pid,
            src=packet.src,
            dst=packet.dst,
            injected_cycle=packet.injected_cycle,
            detected_cycle=cycle,
            hops_traversed=packet.hops_traversed,
            compressed_at_hop=packet.compressed_at_hop,
            decompressed_at_hop=packet.decompressed_at_hop,
            is_compressed=packet.is_compressed,
            poisoned=packet.poisoned,
            size_flits=packet.size_flits,
            seq=packet.seq,
            retransmissions=packet.retransmissions,
        )
