"""Structured simulation statistics: named, mergeable counter groups.

The registry does not own counters — the substrate objects keep their
cheap dataclass counters (``NetworkStats``, ``BankStats``...) and register
a *provider* per group: a callable returning ``{counter_name: value}``.
Sampling all providers yields a :class:`CounterSnapshot`, an immutable
grouped view that supports:

- ``flat()`` — the single-namespace dict the energy model consumes
  (legacy counter names are preserved by the providers);
- ``delta(base)`` — post-warmup (steady-state) windows: final snapshot
  minus the snapshot taken at the warmup boundary;
- ``merge(other)`` — counter-wise sums, for aggregating across runs
  (e.g. summing per-mesh DISCO decompression counts in Fig. 8).

Snapshots are plain picklable data, so they travel through the parallel
runner's process pool and the on-disk result cache unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, Mapping, Tuple

Provider = Callable[[], Dict[str, float]]


@dataclass
class DegradedStats:
    """Graceful-degradation counters (the ``degraded`` stat group).

    Populated by the fault layer (:mod:`repro.faults`) when a fault plan is
    attached to a network; identically zero otherwise.  The group is always
    registered, so attaching a *zero-fault* plan leaves every snapshot
    bit-identical to a run without the faults layer.
    """

    #: Packets a compressor fault forced onto the uncompressed (or
    #: NI-decompressed) fallback path instead of corrupting in flight.
    degraded_transmissions: int = 0
    #: Packets marked ``poisoned`` by an engine bit-flip fault.
    poisoned_packets: int = 0
    #: Engine jobs whose injected stall was absorbed by the shadow-packet
    #: design (the packet stayed schedulable while the engine idled).
    engine_stalls_absorbed: int = 0
    #: Credits stolen by a fault and later restored by the resync timeout.
    credit_resyncs: int = 0
    #: Transient VC wedges that released before the drain watchdog fired.
    wedge_recoveries: int = 0
    #: Packets dropped at an NI by an injected fault (detected at drain by
    #: the end-to-end integrity reconciliation).
    packets_dropped: int = 0

    def counters(self) -> Dict[str, int]:
        """Registry-provider view of the group."""
        return {
            "degraded_transmissions": self.degraded_transmissions,
            "poisoned_packets": self.poisoned_packets,
            "engine_stalls_absorbed": self.engine_stalls_absorbed,
            "credit_resyncs": self.credit_resyncs,
            "wedge_recoveries": self.wedge_recoveries,
            "packets_dropped": self.packets_dropped,
        }


@dataclass
class RecoveredStats:
    """Recovered-fault counters (the ``recovered`` stat group).

    Populated by the reliability layer (:mod:`repro.noc.reliability`).
    Unlike ``degraded``, the group is only registered when retransmission
    or the invariant monitor is enabled — the default fabric carries no
    reliability machinery, so the golden default-mesh snapshots keep their
    pre-reliability layout bit-identically.
    """

    #: Data/control packets re-sent by the source NI replay buffer
    #: (timeout-, NACK-, or invariant-recovery-driven).
    retransmissions: int = 0
    #: Deliveries suppressed at the destination as already-seen sequence
    #: numbers (a retransmitted copy raced the original).
    duplicates_dropped: int = 0
    #: Deliveries rejected at the destination because the payload CRC no
    #: longer matched the send-time CRC (corruption caught before the
    #: endpoint could consume it; a NACK triggers re-delivery).
    crc_rejections: int = 0
    #: Cumulative acks injected by destination NIs.
    acks_sent: int = 0
    #: NACKs injected in response to CRC rejections.
    nacks_sent: int = 0
    #: Packets eventually delivered bit-exact *after* at least one
    #: retransmission or CRC rejection.
    recovered_packets: int = 0
    #: Sum over recovered packets of (delivery cycle - first send cycle);
    #: divide by ``recovered_packets`` for the mean recovery latency.
    recovery_latency_cycles: int = 0
    #: Wedged/stalled VCs squashed by the invariant monitor with their
    #: victim packet requeued through the retransmission path.
    invariant_recoveries: int = 0
    #: Buffered/in-flight flits removed from the fabric by a squash (the
    #: invariant monitor's flit-conservation check accounts for these).
    flits_squashed: int = 0
    #: Replay-buffer entries evicted by the per-flow window bound before
    #: an ack arrived (those packets are no longer recoverable).
    replay_evictions: int = 0
    #: Packets abandoned after the retry cap (left to the integrity
    #: layer's loss detection — a detected outcome, never silent).
    retries_exhausted: int = 0

    def counters(self) -> Dict[str, int]:
        """Registry-provider view of the group."""
        return {
            "retransmissions": self.retransmissions,
            "duplicates_dropped": self.duplicates_dropped,
            "crc_rejections": self.crc_rejections,
            "acks_sent": self.acks_sent,
            "nacks_sent": self.nacks_sent,
            "recovered_packets": self.recovered_packets,
            "recovery_latency_cycles": self.recovery_latency_cycles,
            "invariant_recoveries": self.invariant_recoveries,
            "flits_squashed": self.flits_squashed,
            "replay_evictions": self.replay_evictions,
            "retries_exhausted": self.retries_exhausted,
        }


@dataclass
class TelemetryStats:
    """Observability-layer counters (the ``telemetry`` stat group).

    Populated by :mod:`repro.telemetry` when the sampler or packet tracer
    is attached to a network.  Like ``recovered``, the group is only
    registered when a telemetry knob is on — the golden default-mesh
    snapshot layout is unchanged otherwise, and the group is excluded
    from on/off invariance comparisons (it *describes* the telemetry,
    it is not part of the simulated behaviour).
    """

    #: Time-series windows captured by the sampler (including ones later
    #: evicted from the bounded ring buffer).
    windows_sampled: int = 0
    #: Windows evicted from the ring buffer by the capacity bound.
    windows_evicted: int = 0
    #: Packets selected for lifecycle tracing at the sampling rate.
    packets_traced: int = 0
    #: Lifecycle events recorded by the tracer.
    trace_events: int = 0
    #: Events discarded after the hard event cap was reached.
    trace_events_dropped: int = 0

    def counters(self) -> Dict[str, int]:
        """Registry-provider view of the group."""
        return {
            "windows_sampled": self.windows_sampled,
            "windows_evicted": self.windows_evicted,
            "packets_traced": self.packets_traced,
            "trace_events": self.trace_events,
            "trace_events_dropped": self.trace_events_dropped,
        }


class CounterSnapshot(Mapping[str, Dict[str, float]]):
    """An immutable sample of every registered counter group."""

    __slots__ = ("_groups",)

    def __init__(
        self, groups: Mapping[str, Mapping[str, float]] = ()
    ) -> None:
        self._groups: Dict[str, Dict[str, float]] = {
            name: dict(counters) for name, counters in dict(groups).items()
        }

    # -- mapping protocol ---------------------------------------------------
    def __getitem__(self, group: str) -> Dict[str, float]:
        return self._groups[group]

    def __iter__(self) -> Iterator[str]:
        return iter(self._groups)

    def __len__(self) -> int:
        return len(self._groups)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CounterSnapshot):
            return self._groups == other._groups
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CounterSnapshot({self._groups!r})"

    # -- views --------------------------------------------------------------
    def flat(self) -> Dict[str, float]:
        """All counters in one namespace.

        Counter names are globally unique by convention (providers keep the
        historical flat names); a collision raises so it cannot silently
        shadow a counter.
        """
        out: Dict[str, float] = {}
        for group, counters in self._groups.items():
            for key, value in counters.items():
                if key in out:
                    raise ValueError(
                        f"counter name {key!r} (group {group!r}) collides "
                        "with another group"
                    )
                out[key] = value
        return out

    def get_counter(self, key: str, default: float = 0) -> float:
        """Look a flat counter name up across all groups."""
        for counters in self._groups.values():
            if key in counters:
                return counters[key]
        return default

    def to_dict(self) -> Dict[str, Dict[str, float]]:
        return {name: dict(counters) for name, counters in self._groups.items()}

    # -- algebra ------------------------------------------------------------
    def delta(self, base: "CounterSnapshot") -> "CounterSnapshot":
        """This snapshot minus ``base`` (missing base counters count as 0).

        The steady-state window of a run: ``final.delta(warmup_boundary)``.
        """
        out: Dict[str, Dict[str, float]] = {}
        for group, counters in self._groups.items():
            base_group = base._groups.get(group, {})
            out[group] = {
                key: value - base_group.get(key, 0)
                for key, value in counters.items()
            }
        return CounterSnapshot(out)

    def merge(self, other: "CounterSnapshot") -> "CounterSnapshot":
        """Counter-wise sum (groups/counters union)."""
        out: Dict[str, Dict[str, float]] = self.to_dict()
        for group, counters in other._groups.items():
            mine = out.setdefault(group, {})
            for key, value in counters.items():
                mine[key] = mine.get(key, 0) + value
        return CounterSnapshot(out)

    # -- pickling (explicit, because of __slots__) --------------------------
    def __getstate__(self) -> Dict[str, Dict[str, float]]:
        return self._groups

    def __setstate__(self, state: Dict[str, Dict[str, float]]) -> None:
        self._groups = state


def merge_snapshots(snapshots: Iterable[CounterSnapshot]) -> CounterSnapshot:
    """Sum an iterable of snapshots (empty iterable -> empty snapshot)."""
    merged = CounterSnapshot()
    for snapshot in snapshots:
        merged = merged.merge(snapshot)
    return merged


class StatsRegistry:
    """Named counter groups, each backed by a provider callable."""

    def __init__(self) -> None:
        self._providers: Dict[str, Provider] = {}

    def register(self, group: str, provider: Provider) -> None:
        """Add a counter group; group names must be unique."""
        if group in self._providers:
            raise ValueError(f"stats group {group!r} already registered")
        self._providers[group] = provider

    def unregister(self, group: str) -> None:
        self._providers.pop(group, None)

    def groups(self) -> Tuple[str, ...]:
        return tuple(self._providers)

    def __contains__(self, group: str) -> bool:
        return group in self._providers

    def snapshot(self) -> CounterSnapshot:
        """Sample every provider into one immutable snapshot."""
        return CounterSnapshot(
            {name: provider() for name, provider in self._providers.items()}
        )
