"""The simulation kernel: one clock, phase-ordered components, one loop.

A :class:`SimKernel` owns the global cycle counter and an ordered list of
*phases*; each phase holds the components ticked during it.  ``step()``
advances the clock by one and ticks every active component phase by phase
— the stage ordering the hand-written loops used to encode positionally
(network frame setup → arrival delivery → routers → NIs → local delivery
→ CMP events → tiles) becomes explicit, named, and extensible: a subsystem
joins the simulation by registering components, not by editing the loop.

Instrumentation is opt-in and zero-cost when off: ``enable_timing()``
accumulates wall-clock per phase — and, with ``per_component=True``, per
component label — for profiling the simulator itself (never visible to
the simulation), and ``set_tracer()`` streams ``(cycle, phase,
component)`` tick events to a callback, which is how a wedged simulation
can be replayed component-by-component.  Subsystems that attach extra
observability (the telemetry layer's sampler/tracer) record a one-line
state note in :attr:`SimKernel.annotations` so ``describe()`` can report
it without the kernel knowing about them.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.component import Component
from repro.sim.stats import StatsRegistry

Tracer = Callable[[int, str, Component], None]


def component_label(component: Component) -> str:
    """Stable profiling label for a component.

    Prefers an explicit ``label`` attribute (``CallbackComponent``),
    falling back to the class name — so all 16 routers of a mesh
    aggregate into one hot-path entry instead of 16 singletons.
    """
    label = getattr(component, "label", None)
    if label:
        return str(label)
    return type(component).__name__


class Phase:
    """One named stage of the per-cycle loop."""

    __slots__ = ("name", "components")

    def __init__(self, name: str):
        self.name = name
        self.components: List[Component] = []

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Phase({self.name!r}, {len(self.components)} components)"


class SimKernel:
    """Global clock + phase-ordered component schedule + stats registry."""

    def __init__(self) -> None:
        self.cycle = 0
        self.stats = StatsRegistry()
        self._phases: List[Phase] = []
        self._phase_by_name: Dict[str, Phase] = {}
        #: Registered but never ticked (reactive state-holders); they count
        #: for idle detection and wedge snapshots only.
        self._passive: List[Tuple[str, Component]] = []
        self._timing = False
        self._component_timing = False
        self._tracer: Optional[Tracer] = None
        self.phase_seconds: Dict[str, float] = {}
        self.phase_ticks: Dict[str, int] = {}
        #: ``(phase, component label) -> seconds/ticks`` accumulated when
        #: ``enable_timing(per_component=True)`` is on.
        self.component_seconds: Dict[Tuple[str, str], float] = {}
        self.component_ticks: Dict[Tuple[str, str], int] = {}
        #: Free-form state notes from attached subsystems (telemetry
        #: sampler/tracer...); rendered by :meth:`describe`.
        self.annotations: Dict[str, str] = {}

    # -- registration -------------------------------------------------------
    def add_phase(self, name: str, *, before: Optional[str] = None) -> Phase:
        """Append a phase (or insert it before an existing one).

        Re-adding an existing name returns the existing phase, so
        independent subsystems can share a phase by agreeing on its name.
        """
        existing = self._phase_by_name.get(name)
        if existing is not None:
            return existing
        phase = Phase(name)
        if before is not None:
            anchor = self._phase_by_name.get(before)
            if anchor is None:
                raise KeyError(f"no phase named {before!r}")
            self._phases.insert(self._phases.index(anchor), phase)
        else:
            self._phases.append(phase)
        self._phase_by_name[name] = phase
        return phase

    def register(
        self, component: Component, phase: str = "main", *, tick: bool = True
    ) -> None:
        """Add a component to a phase (creating the phase at the end of the
        current order if needed).  ``tick=False`` registers a passive
        component: tracked for diagnostics, never ticked."""
        if not tick:
            self._passive.append((phase, component))
            return
        self.add_phase(phase).components.append(component)

    def phases(self) -> Tuple[str, ...]:
        return tuple(phase.name for phase in self._phases)

    def components(self, phase: Optional[str] = None) -> List[Component]:
        if phase is not None:
            return list(self._phase_by_name[phase].components)
        return [c for p in self._phases for c in p.components]

    # -- instrumentation ----------------------------------------------------
    def enable_timing(
        self, enabled: bool = True, per_component: bool = False
    ) -> None:
        """Accumulate wall-clock seconds + tick counts per phase.

        ``per_component=True`` additionally attributes time to each
        component label within its phase (the :class:`RunProfiler` input —
        costs one extra ``perf_counter`` pair per tick, so leave it off
        unless profiling).  Profiling of the simulator, not the
        simulation: it cannot change simulated behaviour, only report
        where host time goes.
        """
        self._timing = enabled
        self._component_timing = enabled and per_component

    @property
    def timing_enabled(self) -> bool:
        return self._timing

    @property
    def component_timing_enabled(self) -> bool:
        return self._component_timing

    def set_tracer(self, tracer: Optional[Tracer]) -> None:
        """Stream every component tick as ``(cycle, phase, component)``."""
        self._tracer = tracer

    # -- the loop -----------------------------------------------------------
    def step(self) -> int:
        """Advance one cycle; returns the new cycle number."""
        self.cycle += 1
        cycle = self.cycle
        if self._timing or self._tracer is not None:
            return self._step_instrumented(cycle)
        for phase in self._phases:
            for component in phase.components:
                if component.has_work():
                    component.tick(cycle)
        return cycle

    def _step_instrumented(self, cycle: int) -> int:
        tracer = self._tracer
        per_component = self._component_timing
        for phase in self._phases:
            start = time.perf_counter() if self._timing else 0.0
            ticked = 0
            for component in phase.components:
                if component.has_work():
                    if tracer is not None:
                        tracer(cycle, phase.name, component)
                    if per_component:
                        t0 = time.perf_counter()
                        component.tick(cycle)
                        key = (phase.name, component_label(component))
                        self.component_seconds[key] = self.component_seconds.get(
                            key, 0.0
                        ) + (time.perf_counter() - t0)
                        self.component_ticks[key] = (
                            self.component_ticks.get(key, 0) + 1
                        )
                    else:
                        component.tick(cycle)
                    ticked += 1
            if self._timing:
                name = phase.name
                self.phase_seconds[name] = self.phase_seconds.get(
                    name, 0.0
                ) + (time.perf_counter() - start)
                self.phase_ticks[name] = self.phase_ticks.get(name, 0) + ticked
        return cycle

    def run(
        self,
        until: Callable[[], bool],
        max_cycles: Optional[int] = None,
    ) -> int:
        """Step until ``until()`` is True; returns cycles stepped.

        Raises :class:`RuntimeError` after ``max_cycles`` steps without the
        predicate holding (the caller attaches its own wedge diagnostics).
        """
        start = self.cycle
        while not until():
            self.step()
            if max_cycles is not None and self.cycle - start > max_cycles:
                raise RuntimeError(
                    f"kernel exceeded {max_cycles} cycles without reaching "
                    "the stop condition"
                )
        return self.cycle - start

    # -- diagnostics --------------------------------------------------------
    def idle(self) -> bool:
        """True when no component (active or passive) reports work."""
        return not self.busy_components()

    def busy_components(self) -> List[Tuple[str, Component]]:
        """Every component currently reporting work, with its phase name.

        Ordering is deterministic: active components in schedule order
        (phase order, then registration order within the phase), followed
        by passive components sorted by phase name (registration order
        within a name) — so wedge reports diff cleanly across runs.
        """
        busy = [
            (phase.name, component)
            for phase in self._phases
            for component in phase.components
            if component.has_work()
        ]
        busy.extend(
            (phase, component)
            for phase, component in sorted(
                self._passive, key=lambda item: item[0]
            )
            if component.has_work()
        )
        return busy

    def describe(self) -> str:
        """A schedule + instrumentation summary (debug aid).

        One line per phase (component/busy counts), one per passive phase,
        plus the instrumentation state (timing/tracer) and any subsystem
        :attr:`annotations` (e.g. the telemetry sampler's window setting).
        """
        lines = [f"cycle {self.cycle}"]
        lines.append(
            "  instrumentation: timing="
            + ("on" if self._timing else "off")
            + (
                " (per-component)"
                if self._component_timing
                else ""
            )
            + ", tracer="
            + ("set" if self._tracer is not None else "none")
        )
        for key in sorted(self.annotations):
            lines.append(f"  {key}: {self.annotations[key]}")
        for phase in self._phases:
            lines.append(
                f"  {phase.name}: {len(phase.components)} components, "
                f"{sum(1 for c in phase.components if c.has_work())} busy"
            )
        passive_phases: Dict[str, List[Component]] = {}
        for phase_name, component in self._passive:
            passive_phases.setdefault(phase_name, []).append(component)
        for phase_name in sorted(passive_phases):
            components = passive_phases[phase_name]
            busy = sum(1 for c in components if c.has_work())
            lines.append(
                f"  {phase_name} (passive): {len(components)} tracked, "
                f"{busy} busy"
            )
        return "\n".join(lines)
